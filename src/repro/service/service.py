"""The long-lived admission service: request/response over a session.

:class:`AdmissionService` turns the :class:`~repro.session.
AdmissionSession` kernel into a *server-shaped* object: events arrive
one request at a time from outside the process (stdin, a socket, a
test driver), every applied event is first written to an append-only
JSON-lines **admission journal** (:class:`~repro.io.JournalWriter`),
and a killed service **warm-restarts** from that journal — replaying
the journaled events into a fresh session reconstructs the exact
ledger/metrics state, so resuming and finishing a trace produces
metrics identical to an uninterrupted run (timing fields aside; replay
decisions are deterministic).

Request/response API (JSON-safe dicts, see :meth:`AdmissionService.
handle`):

========  ============================================================
op        meaning
========  ============================================================
admit     an arrival: ``{"op": "admit", "demand": 3, "time": 1.5}``
release   a departure: ``{"op": "release", "demand": 3, "time": 9.0}``
tick      a clock edge (batching policies may flush)
submit    a raw trace-schema event: ``{"op": "submit", "event": {...}}``
query     one demand's admission status
stats     live counters (events, accepted, profit, utilization, ...)
snapshot  the currently-admitted set as a solution document
close     final flush + verify; responds with the full metrics record
========  ============================================================

With ``shards > 1`` the service runs the **sharded coordinator
backend**: the policy is bound to the exact global coordinator view of
a :class:`~repro.sharding.ledger.ShardedLedger` (so every registered
policy works unmodified, priced against true global load), and every
admission / eviction / release of a cut-interior demand is mirrored
into its shard's ledger — the per-shard occupancy views the sharded
deployment story needs, verified alongside the coordinator at close.
"""

from __future__ import annotations

from ..io import (
    JournalWriter,
    event_from_dict,
    read_journal,
    solution_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from ..online.events import Arrival, Departure, EventTrace, Tick
from ..online.policies import make_policy
from ..session.kernel import AdmissionSession, Decision, ReplayResult

__all__ = ["AdmissionService"]


class AdmissionService:
    """A journaled, resumable admission session behind a request API.

    Parameters
    ----------
    trace:
        The :class:`~repro.online.events.EventTrace` whose frozen demand
        population the service admits over.  The service does *not*
        consume the trace's events — they arrive as requests — but the
        population, and the provenance echoed into results, come from
        here (and ``resume`` finishes a partially-served trace's
        remaining events from it).
    policy:
        Registry policy name; ``params`` are its constructor keywords.
    journal_path:
        Write-ahead journal location; ``None`` disables journaling
        (no warm restart, useful for benchmarks).
    shards / shard_by:
        ``shards > 1`` selects the sharded coordinator backend.
    sync:
        ``fsync`` the journal after every record (power-loss
        durability; plain flushing already survives a process kill).
    """

    def __init__(self, trace: EventTrace, policy: str = "greedy-threshold",
                 params: dict | None = None, *,
                 journal_path: str | None = None,
                 shards: int = 1, shard_by: str = "subtree",
                 sync: bool = False):
        self.trace = trace
        self.policy_name = policy
        self.params = dict(params or {})
        self.shards = int(shards)
        self.shard_by = shard_by
        policy_obj = make_policy(policy, **self.params)
        self.sharded = None
        self._local_iids: dict[int, dict[int, int]] = {}
        if self.shards > 1:
            from ..sharding.ledger import ShardedLedger
            from ..sharding.planner import ShardPlanner

            plan = ShardPlanner(shard_by).plan(trace.problem, self.shards)
            self.sharded = ShardedLedger(trace.problem, plan)
            self.session = AdmissionSession(
                trace.problem, policy_obj,
                ledger=self.sharded.coordinator, trace_meta=trace.meta,
            )
        else:
            self.session = AdmissionSession(trace.problem, policy_obj,
                                            trace_meta=trace.meta)
        #: Events applied so far (== journal body length when journaling).
        self.position = 0
        # Stream-validity bookkeeping, mirroring EventTrace's invariants:
        # requests come from outside the process, so the service (not the
        # kernel) is the layer that must reject duplicate arrivals and
        # departures of absent demands with an error *response* instead
        # of a half-applied event.
        self._arrived: set[int] = set()
        self._departed: set[int] = set()
        self._last_time = 0.0
        self.result: ReplayResult | None = None
        self.journal: JournalWriter | None = None
        if journal_path is not None:
            self.journal = JournalWriter(journal_path, self._header(),
                                         sync=sync)

    def _header(self) -> dict:
        """The self-contained journal header (rebuilds this service)."""
        return {
            "policy": self.policy_name,
            "params": dict(self.params),
            "shards": self.shards,
            "shard_by": self.shard_by,
            "trace": trace_to_dict(self.trace),
        }

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def _validate(self, ev) -> None:
        m = self.trace.problem.num_demands
        if isinstance(ev, (Arrival, Departure)):
            if not (0 <= ev.demand_id < m):
                raise ValueError(
                    f"unknown demand {ev.demand_id} (population has {m})"
                )
        if isinstance(ev, Arrival):
            if ev.demand_id in self._arrived:
                raise ValueError(f"demand {ev.demand_id} already arrived")
        elif isinstance(ev, Departure):
            if ev.demand_id not in self._arrived:
                raise ValueError(
                    f"demand {ev.demand_id} departs before arriving"
                )
            if ev.demand_id in self._departed:
                raise ValueError(f"demand {ev.demand_id} already departed")

    def submit_event(self, ev) -> Decision:
        """Validate, journal (write-ahead), then apply one event."""
        self._validate(ev)
        if self.journal is not None:
            self.journal.append(ev)
        return self._apply(ev)

    def _apply(self, ev) -> Decision:
        """Apply an already-journaled (or recovered) event."""
        decision = self.session.submit(ev)
        if isinstance(ev, Arrival):
            self._arrived.add(ev.demand_id)
        elif isinstance(ev, Departure):
            self._departed.add(ev.demand_id)
        self._last_time = max(self._last_time, ev.time)
        self._mirror(decision)
        self.position += 1
        return decision

    # ------------------------------------------------------------------
    # Sharded-backend mirroring
    # ------------------------------------------------------------------

    def _local_iid(self, s: int, gid: int) -> int:
        """Shard ``s``'s local instance id of global instance ``gid``."""
        if s not in self._local_iids:
            self._local_iids[s] = {
                g: l for l, g in enumerate(self.sharded.plan.instance_map(s))
            }
        return self._local_iids[s][gid]

    def _mirror(self, decision: Decision) -> None:
        """Mirror coordinator mutations into the per-shard ledgers.

        The coordinator decided; shard ledgers only track their local
        occupancy.  Shard loads are always ≤ the coordinator's on the
        same edges, so every mirrored admission is feasible by
        construction.  Evictions precede admissions (a preemption frees
        the route before the newcomer lands).
        """
        if self.sharded is None:
            return
        plan = self.sharded.plan
        for d, _gid in decision.evicted:
            if plan.is_boundary(d):
                continue
            s = plan.shard_of(d)
            led = self.sharded.shard_ledger(s)
            local = self.sharded.local_demand_id(s, d)
            if led.is_admitted(local):
                led.evict(local)
        for d, gid in decision.admitted:
            if plan.is_boundary(d):
                continue
            s = plan.shard_of(d)
            self.sharded.shard_ledger(s).admit(self._local_iid(s, gid))
        if decision.kind == "departure" and decision.demand_id is not None:
            d = decision.demand_id
            if not plan.is_boundary(d):
                s = plan.shard_of(d)
                led = self.sharded.shard_ledger(s)
                local = self.sharded.local_demand_id(s, d)
                if led.is_admitted(local):
                    led.release(local)

    # ------------------------------------------------------------------
    # The request/response API
    # ------------------------------------------------------------------

    def _event_of(self, req: dict):
        op = req["op"]
        if op == "submit":
            return event_from_dict(req["event"])
        time = float(req.get("time", self._last_time))
        if op == "admit":
            return Arrival(time, int(req["demand"]))
        if op == "release":
            return Departure(time, int(req["demand"]))
        if op == "tick":
            return Tick(time)
        raise ValueError(f"op {op!r} carries no event")

    def handle(self, req: dict) -> dict:
        """Serve one request dict; always returns a response dict.

        Domain errors (unknown demands, duplicate arrivals, bad ops,
        submitting after close) come back as ``{"ok": false, "error":
        ...}`` responses — the service never half-applies a request.
        """
        op = req.get("op")
        try:
            if op in ("submit", "admit", "release", "tick"):
                decision = self.submit_event(self._event_of(req))
                return {"ok": True, "op": op,
                        "decision": decision.to_dict()}
            if op == "query":
                return {"ok": True, "op": op,
                        **self.query(int(req["demand"]))}
            if op == "stats":
                return {"ok": True, "op": op, "stats": self.stats()}
            if op == "snapshot":
                return {"ok": True, "op": op,
                        "solution": solution_to_dict(self.session.solution())}
            if op == "close":
                result = self.close(verify=bool(req.get("verify", True)))
                return {"ok": True, "op": op,
                        "metrics": result.metrics.to_dict(),
                        "policy_stats": result.policy_stats}
            raise ValueError(
                f"unknown op {op!r}; want admit/release/tick/submit/"
                "query/stats/snapshot/close"
            )
        except (KeyError, ValueError, TypeError, RuntimeError) as exc:
            return {"ok": False, "op": op, "error": str(exc)}

    def query(self, demand_id: int) -> dict:
        """One demand's admission status on the authoritative ledger."""
        ledger = self.session.ledger
        if not (0 <= demand_id < self.trace.problem.num_demands):
            raise ValueError(f"unknown demand {demand_id}")
        return {
            "demand": demand_id,
            "admitted": ledger.is_admitted(demand_id),
            "instance": ledger.admitted_instance(demand_id),
            "was_admitted": ledger.was_admitted(demand_id),
            "was_evicted": ledger.was_evicted(demand_id),
        }

    def stats(self) -> dict:
        """Live counters, plus per-shard occupancy in sharded mode."""
        doc = self.session.snapshot()
        doc["position"] = self.position
        doc["policy"] = self.policy_name
        doc["journaled"] = self.journal is not None
        if self.sharded is not None:
            rows = []
            for s in range(self.sharded.plan.n_shards):
                led = self.sharded.shard_ledger(s)
                rows.append({
                    "shard": s,
                    "admitted": led.num_admitted,
                    "utilization": led.utilization(),
                })
            doc["shards"] = rows
            doc["boundary_admitted"] = sum(
                1 for d, _ in self.session.ledger.admitted_items()
                if self.sharded.plan.is_boundary(d)
            )
        return doc

    def close(self, *, verify: bool = True) -> ReplayResult:
        """Final flush + verification; closes the journal too."""
        self.result = self.session.close(verify=verify)
        if verify and self.sharded is not None:
            for led in self.sharded._shard_ledgers:
                if led is not None:
                    led.verify()
        if self.journal is not None:
            self.journal.close()
        return self.result

    # ------------------------------------------------------------------
    # Warm restart
    # ------------------------------------------------------------------

    @classmethod
    def resume(cls, journal_path: str, *,
               sync: bool = False) -> "AdmissionService":
        """Rebuild a service from its journal and reattach to it.

        The journaled events are re-applied to a fresh session (replay
        is deterministic, so the rebuilt ledger/metrics state is exactly
        the killed service's); a torn final journal line is dropped and
        the file truncated past it, and new events append to the same
        journal.  ``service.position`` tells how far the stream got.
        """
        header, events, good_bytes = read_journal(journal_path)
        trace = trace_from_dict(header["trace"])
        svc = cls(
            trace, header["policy"], header.get("params") or {},
            journal_path=None,
            shards=int(header.get("shards", 1)),
            shard_by=header.get("shard_by", "subtree"),
        )
        for ev in events:
            svc._apply(ev)
        svc.journal = JournalWriter(journal_path, sync=sync,
                                    start_at=good_bytes)
        return svc

    def run_remaining(self, *, verify: bool = True) -> ReplayResult:
        """Finish the trace: submit every not-yet-applied trace event.

        Valid when the service's request stream is (a prefix of) the
        trace's own event sequence — the ``repro serve``/``repro
        resume`` workflow — since ``position`` then indexes the first
        outstanding trace event.  Returns the final
        :class:`~repro.session.kernel.ReplayResult`, which matches an
        uninterrupted replay of the whole trace exactly (timing fields
        aside).
        """
        for ev in self.trace.events[self.position:]:
            self.submit_event(ev)
        return self.close(verify=verify)
