"""Distributed (80+ε)-approximation for arbitrary heights on
tree-networks (Section 6, Theorem 6.3).

The height regime splits the demands:

* **wide** (``h > 1/2``): two overlapping wide instances can never
  coexist, so the unit-height algorithm (Theorem 5.3) applies verbatim —
  a (7+ε)-approximation against the wide-only optimum ``Opt₁``.
* **narrow** (``h ≤ 1/2``): the engine runs the Section 6.1 raising rule
  (``δ = slack/(1+2h|π|²)``, β bumped by ``2|π|δ``) with the stage
  schedule ``ξ = 73/(73+hmin)``; Lemma 6.1 with ``∆ = 6`` and
  ``λ = 1-ε`` gives a (73+ε)-approximation against ``Opt₂``.

The combiner keeps, per tree-network, the higher-profit of the two
per-network schedules; since ``Opt ≤ Opt₁ + Opt₂`` and the combined
profit is ``max(p(S₁), p(S₂))``-per-network, the result is an
(80+ε)-approximation overall.
"""

from __future__ import annotations

from typing import Literal

from ..core.instance import TreeProblem
from ..core.solution import Solution
from .compile import compile_tree
from .framework import EngineConfig, TwoPhaseEngine
from .registry import register
from .tree_unit import solve_tree_unit

__all__ = ["solve_tree_arbitrary", "solve_tree_narrow", "combine_by_network"]


@register(
    "tree-narrow",
    family="tree",
    description="narrow-only (73+ε) tree algorithm (Lemma 6.2)",
    accepts=("epsilon", "hmin", "mis", "seed"),
)
def solve_tree_narrow(
    problem: TreeProblem,
    *,
    epsilon: float = 0.1,
    hmin: float | None = None,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
) -> Solution:
    """The narrow-only algorithm (Lemma 6.2): (73+ε)-approximation.

    ``hmin`` defaults to the smallest narrow height in the instance (the
    paper assumes it is known to all processors).  Demands with
    ``h > 1/2`` are ignored here — use :func:`solve_tree_arbitrary` for
    the full pipeline.
    """
    narrow_heights = [a.height for a in problem.demands if a.narrow]
    if not narrow_heights:
        return Solution(selected=[], stats={"algorithm": "tree-narrow(73+eps)",
                                            "empty": True})
    if hmin is None:
        hmin = min(narrow_heights)
    inp = compile_tree(problem, instance_filter=lambda d: d.narrow)
    cfg = EngineConfig(
        rule="narrow",
        epsilon=epsilon,
        hmin=hmin,
        mis=mis,
        seed=seed,
        capacity_phase2=True,
    )
    selected, stats = TwoPhaseEngine(inp, cfg).run()
    guarantee = (2 * stats.delta**2 + 1) / max(stats.realized_lambda, 1e-12)
    return Solution(
        selected=selected,
        stats={
            "algorithm": "tree-narrow(73+eps)",
            "epsilon": epsilon,
            "hmin": hmin,
            "delta": stats.delta,
            "epochs": stats.epochs,
            "stages": stats.stages,
            "steps": stats.steps,
            "mis_rounds": stats.mis_rounds,
            "total_rounds": stats.total_rounds,
            "max_steps_in_a_stage": stats.max_steps_in_a_stage,
            "realized_lambda": stats.realized_lambda,
            "dual_objective": stats.dual_objective,
            "opt_upper_bound": stats.opt_upper_bound,
            "approx_guarantee": guarantee,
        },
    )


def combine_by_network(s1: Solution, s2: Solution, label: str) -> Solution:
    """Theorem 6.3's combiner: per network, keep the richer schedule.

    Assumes the two solutions select from disjoint demand populations
    (wide vs narrow), so the union per network is one-instance-per-demand
    automatically.
    """
    by1, by2 = s1.by_network(), s2.by_network()
    selected: list = []
    for q in set(by1) | set(by2):
        cand1 = by1.get(q, [])
        cand2 = by2.get(q, [])
        p1 = sum(d.profit for d in cand1)
        p2 = sum(d.profit for d in cand2)
        selected.extend(cand1 if p1 >= p2 else cand2)
    return Solution(
        selected=selected,
        stats={
            "algorithm": label,
            "wide": s1.stats,
            "narrow": s2.stats,
            "total_rounds": (
                s1.stats.get("total_rounds", 0) + s2.stats.get("total_rounds", 0)
            ),
        },
    )


@register(
    "tree-arbitrary",
    family="tree",
    description="arbitrary-height (80+ε) tree algorithm (Thm 6.3)",
    accepts=("epsilon", "hmin", "mis", "seed"),
)
def solve_tree_arbitrary(
    problem: TreeProblem,
    *,
    epsilon: float = 0.1,
    hmin: float | None = None,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
) -> Solution:
    """Solve the arbitrary-height tree problem (Theorem 6.3): (80+ε).

    Runs the wide population through the unit-height algorithm and the
    narrow population through the Section 6.1 engine, then combines
    per-network.
    """
    wide = solve_tree_unit(
        problem,
        epsilon=epsilon,
        mis=mis,
        seed=seed,
        instance_filter=lambda d: not d.narrow,
    )
    wide.stats["algorithm"] = "tree-wide-as-unit(7+eps)"
    narrow = solve_tree_narrow(
        problem, epsilon=epsilon, hmin=hmin, mis=mis, seed=seed
    )
    return combine_by_network(wide, narrow, "tree-arbitrary(80+eps)")
