"""Online admission-control throughput benchmark.

Replays seeded Poisson traces of 10k and 100k events (2k in smoke mode)
through each admission policy — non-preemptive and preemptive alike —
and records events/second, per-event latency percentiles, acceptance,
realized profit, and for the preemptive policies eviction counts,
forfeited profit and penalty-adjusted profit.  Results are written as
JSON (``BENCH_online.json``) so later changes can track the online hot
path the way ``BENCH_hotpath.json`` tracks the offline one.

The batch-resolve policy runs with the ``greedy`` registry solver at a
1024-arrival cadence — the exact solver is an offline benchmark, not a
throughput policy.  Verification of the final admitted set stays ON:
feasibility checking is part of the work a production admission layer
cannot skip.

A second table tracks the **service layer**: the same trace is pushed
through :class:`~repro.service.AdmissionService` one request/response
round trip at a time — once without a journal and once journaling every
event to a temp file — and compared against the in-process replay, so
the dict-protocol and write-ahead-journal overheads are tracked
explicitly.

A third table tracks the **sharded admission engine**: one Poisson
tree trace with a targeted boundary fraction (the shard-aware
``boundary_fraction`` workload knob) is replayed through
:class:`~repro.sharding.ShardedDriver` at 1/2/4 shards, recording the
boundary (cut-crossing) fraction and throughput two ways — single-host
wall clock, and the *critical path* (slowest shard replay plus the
serialized absorb hand-off and boundary phase), which is the rate an
N-worker deployment sustains and converges to wall clock on an N-core
host.  The headline
``events_per_sec`` of a sharded row is the critical-path rate.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_online.py [--smoke] [-o OUT]
"""

from __future__ import annotations

import argparse
import json
import sys

POLICIES = [
    ("greedy-threshold", {}),
    ("dual-gated", {}),
    ("batch-resolve", {"solver": "greedy", "resolve_every": 1024}),
    ("preempt-density", {"factor": 1.2}),
    ("preempt-dual-gated", {"penalty": 0.1}),
]


def run_online_bench(smoke: bool = False, out_path: str | None = None) -> dict:
    """Run every policy over every trace size; return the report dict."""
    from repro.online import generate_trace, make_policy, replay

    sizes = [2_000] if smoke else [10_000, 100_000]
    report: dict = {"smoke": smoke, "cases": {}}
    for events in sizes:
        trace = generate_trace(
            "line", events=events, process="poisson", seed=0,
            departure_prob=0.35,
            # Scale the timeline with the stream so the benchmark keeps
            # exercising admissions, not just saturated-reject probes.
            workload={"n_slots": max(512, events // 8)},
        )
        case: dict = {
            "events": len(trace.events),
            "arrivals": trace.num_arrivals,
            "departures": trace.num_departures,
            "instances": len(trace.problem.instances()),
            "policies": {},
        }
        for name, kwargs in POLICIES:
            result = replay(trace, make_policy(name, **kwargs))
            m = result.metrics
            case["policies"][name] = {
                "events_per_sec": m.events_per_sec,
                "elapsed_s": m.elapsed_s,
                "accepted": m.accepted,
                "acceptance_ratio": m.acceptance_ratio,
                "realized_profit": m.realized_profit,
                "evictions": m.evictions,
                "forfeited_profit": m.forfeited_profit,
                "penalty_paid": m.penalty_paid,
                "penalty_adjusted_profit": m.penalty_adjusted_profit,
                "latency_p50_us": m.latency_p50_us,
                "latency_p99_us": m.latency_p99_us,
            }
        report["cases"][str(events)] = case
    report["service"] = run_service_bench(smoke=smoke)
    report["sharding"] = run_sharding_bench(smoke=smoke)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
    return report


def run_service_bench(smoke: bool = False) -> dict:
    """Sustained request/response throughput vs in-process replay.

    Every event crosses the service's dict protocol (``{"op":
    "submit", ...}`` in, a decision document out); the journaled run
    additionally write-ahead-logs each event to a temp file.  The
    ``overhead`` ratios are (in-process rate) / (service rate) — how
    much the request/response framing and the journal cost on top of
    the raw kernel.
    """
    import os
    import tempfile

    from repro.io import event_to_dict
    from repro.online import generate_trace, make_policy, replay
    from repro.service import AdmissionService

    events = 2_000 if smoke else 20_000
    trace = generate_trace(
        "line", events=events, process="poisson", seed=0,
        departure_prob=0.35, workload={"n_slots": max(512, events // 8)},
    )
    base = replay(trace, make_policy("greedy-threshold"))
    requests = [{"op": "submit", "event": event_to_dict(ev)}
                for ev in trace.events]
    out: dict = {
        "events": len(trace.events),
        "policy": "greedy-threshold",
        "in_process_events_per_sec": base.metrics.events_per_sec,
        "rows": [],
    }
    with tempfile.TemporaryDirectory() as tmp:
        for label, journal in (("service", None),
                               ("service+journal",
                                os.path.join(tmp, "bench.journal"))):
            svc = AdmissionService(trace, "greedy-threshold",
                                   journal_path=journal)
            for req in requests:
                resp = svc.handle(req)
                assert resp["ok"], resp
            result = svc.close()
            rate = result.metrics.events_per_sec
            out["rows"].append({
                "mode": label,
                "events_per_sec": rate,
                "overhead": (base.metrics.events_per_sec / rate
                             if rate > 0 else None),
                "accepted": result.metrics.accepted,
                "realized_profit": result.metrics.realized_profit,
            })
    return out


#: Sharding benchmark trace: demands confined to the balancer-cut parts
#: with a directly targeted boundary (cut-crossing) fraction — the
#: shard-aware workload knob — so the scaling rows control the variable
#: that actually prices the serialized boundary phase.
SHARDING_TRACE = dict(kind="tree", process="poisson", seed=0,
                      departure_prob=0.3,
                      workload={"n": 768, "boundary_fraction": 0.05,
                                "parts": 4})


def run_sharding_bench(smoke: bool = False) -> dict:
    """Throughput-vs-shards on the Poisson tree trace (greedy-threshold).

    ``events_per_sec`` per row is the critical-path (deployment) rate;
    ``wall_events_per_sec`` is what this single host measured end to
    end.  ``speedup`` compares the critical path against the unsharded
    single-ledger driver on the identical trace.
    """
    from repro.online import generate_trace, make_policy, replay
    from repro.sharding import ShardedDriver

    events = 4_000 if smoke else 20_000
    spec = dict(SHARDING_TRACE)
    kind = spec.pop("kind")
    trace = generate_trace(kind, events=events, **spec)
    base = replay(trace, make_policy("greedy-threshold"))
    out: dict = {
        "trace": {"kind": kind, "events": len(trace.events), **{
            k: v for k, v in spec.items() if k != "workload"
        }, "workload": spec["workload"]},
        "target_boundary_fraction":
            spec["workload"].get("boundary_fraction"),
        "policy": "greedy-threshold",
        "unsharded_events_per_sec": base.metrics.events_per_sec,
        "note": ("events_per_sec is the critical-path rate: total events"
                 " / (slowest shard replay + serialized absorb + boundary phase),"
                 " the throughput an N-worker deployment sustains;"
                 " wall_events_per_sec is this host's end-to-end rate"),
        "rows": [],
    }
    for shards in (1, 2, 4):
        res = ShardedDriver(shards, "subtree").run(
            trace, "greedy-threshold", {}
        )
        cp = res.critical_path_events_per_sec
        out["rows"].append({
            "shards": shards,
            "events_per_sec": cp,
            "wall_events_per_sec": res.merged.events_per_sec,
            "speedup": cp / base.metrics.events_per_sec,
            "boundary_demands": res.plan["boundary_demands"],
            "boundary_fraction": res.plan["boundary_fraction"],
            "local_demands": res.plan["local_demands"],
            "accepted": res.merged.accepted,
            "realized_profit": res.merged.realized_profit,
        })
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="one small trace, seconds instead of minutes")
    ap.add_argument("-o", "--output", default="BENCH_online.json")
    args = ap.parse_args(argv)
    report = run_online_bench(smoke=args.smoke, out_path=args.output)
    for events, case in report["cases"].items():
        print(f"{events} events ({case['arrivals']} arrivals, "
              f"{case['instances']} instances):")
        for name, rec in case["policies"].items():
            line = (f"  {name:<19} {rec['events_per_sec']:>9.0f} ev/s  "
                    f"acc {100 * rec['acceptance_ratio']:.1f}%  "
                    f"profit {rec['realized_profit']:.1f}  ")
            if rec.get("evictions"):
                line += (f"evict {rec['evictions']}  "
                         f"adj {rec['penalty_adjusted_profit']:.1f}  ")
            line += f"p99 {rec['latency_p99_us']:.0f}µs"
            print(line)
    service = report["service"]
    print(f"service ({service['events']} events, "
          f"{service['in_process_events_per_sec']:.0f} ev/s in-process):")
    for row in service["rows"]:
        print(f"  {row['mode']:<17} {row['events_per_sec']:>9.0f} ev/s  "
              f"overhead x{row['overhead']:.2f}")
    sharding = report["sharding"]
    print(f"sharding ({sharding['trace']['events']} events, poisson tree, "
          f"{sharding['unsharded_events_per_sec']:.0f} ev/s unsharded):")
    for row in sharding["rows"]:
        print(f"  shards={row['shards']}  {row['events_per_sec']:>9.0f} ev/s"
              f" (critical path)  x{row['speedup']:.2f}  boundary "
              f"{100 * row['boundary_fraction']:.1f}%  "
              f"wall {row['wall_events_per_sec']:.0f} ev/s")
    print(f"written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
