"""Tests for the dual-variable store and raising rules (§3.2, §6.1)."""

from __future__ import annotations

import pytest

from repro import DualState


def simple_state(heights=(1.0, 1.0, 1.0)) -> DualState:
    """Three instances; 0 and 1 share demand 0; all share edge 'e1'."""
    return DualState(
        profits=[4.0, 6.0, 10.0],
        heights=list(heights),
        demand_of=[0, 0, 1],
        edges_of=[("e1", "e2"), ("e1",), ("e1", "e3")],
    )


class TestUnitRaise:
    def test_raise_tightens(self):
        ds = simple_state()
        ds.raise_unit(0, critical=("e1",))
        assert ds.lhs(0) == pytest.approx(4.0)
        # δ = 4/2 = 2 split between α(0) and β(e1).
        assert ds.alpha[0] == pytest.approx(2.0)
        assert ds.beta["e1"] == pytest.approx(2.0)

    def test_raise_affects_conflicting(self):
        ds = simple_state()
        ds.raise_unit(0, critical=("e1",))
        # Instance 1 shares demand 0 (α) and edge e1 (β): LHS = 2 + 2.
        assert ds.lhs(1) == pytest.approx(4.0)
        # Instance 2 only shares e1.
        assert ds.lhs(2) == pytest.approx(2.0)

    def test_raise_skips_satisfied(self):
        ds = simple_state()
        ds.raise_unit(0, critical=("e1",))
        assert ds.raise_unit(0, critical=("e1",)) == 0.0

    def test_no_alpha_variant(self):
        ds = simple_state()
        ds.raise_unit(0, critical=("e1", "e2"), include_alpha=False)
        assert 0 not in ds.alpha
        assert ds.lhs(0) == pytest.approx(4.0)
        assert ds.beta["e1"] == pytest.approx(2.0)

    def test_no_alpha_no_critical_rejected(self):
        ds = simple_state()
        with pytest.raises(ValueError, match="no critical"):
            ds.raise_unit(0, critical=(), include_alpha=False)

    def test_satisfied_thresholds(self):
        ds = simple_state()
        ds.raise_unit(2, critical=("e3",))
        assert ds.satisfied(2, 1.0)
        assert not ds.satisfied(0, 1.0)
        # Raising instance 2 (demand 1, critical e3) leaves instance 0
        # (demand 0, edges e1/e2) untouched.
        assert ds.lhs(0) == pytest.approx(0.0)


class TestNarrowRaise:
    def test_raise_tightens_weighted(self):
        ds = simple_state(heights=(0.25, 0.5, 0.4))
        ds.raise_narrow(0, critical=("e1", "e2"))
        # δ = s / (1 + 2·h·k²) = 4 / (1 + 2·0.25·4) = 4/3.
        # β bump per edge = 2kδ = 4δ.
        assert ds.lhs(0) == pytest.approx(4.0)
        delta = 4.0 / 3.0
        assert ds.alpha[0] == pytest.approx(delta)
        assert ds.beta["e1"] == pytest.approx(4 * delta)

    def test_narrow_contribution_to_overlapper(self):
        ds = simple_state(heights=(0.25, 0.5, 0.4))
        ds.raise_narrow(0, critical=("e1",))
        # Instance 2 (h=.4) sees h·β(e1) = .4 · 2δ where δ = 4/(1+2·.25·1) = 8/3.
        delta = 4.0 / 1.5
        assert ds.lhs(2) == pytest.approx(0.4 * 2 * delta)


class TestCertificates:
    def test_objective_counts_all(self):
        ds = simple_state()
        ds.raise_unit(0, critical=("e1", "e2"))
        # δ = 4/3; objective = α + 2β = 3δ = 4.
        assert ds.objective() == pytest.approx(4.0)

    def test_realized_lambda(self):
        ds = simple_state()
        assert ds.realized_lambda() == 0.0
        ds.raise_unit(0, critical=("e1",))
        ds.raise_unit(1, critical=("e1",))
        ds.raise_unit(2, critical=("e1",))
        assert ds.realized_lambda() == pytest.approx(1.0)

    def test_upper_bound_infinite_when_unraised(self):
        ds = simple_state()
        assert ds.opt_upper_bound() == float("inf")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            DualState([1.0], [1.0, 1.0], [0], [()])
