"""The conflict relation over demand instances (Section 2).

Two demand instances *conflict* iff they belong to the same demand, or
they belong to the same network and their routes share an edge (overlap).
A feasible unit-height solution is exactly an independent set in the
conflict graph; the distributed algorithm computes maximal independent
sets of sub-populations of it every step (Section 5).

:class:`ConflictIndex` answers conflict queries and enumerates conflict
edges without materialising the full quadratic graph unless asked.  Since
the vectorization refactor it keeps two complementary representations:

* per-demand buckets and per-(network, edge) activity buckets for exact
  single-instance neighbourhood queries (the original scalar API);
* NumPy *geometry* arrays — interval endpoints for line instances,
  endpoint pairs plus a per-network Euler-tour index
  (:class:`~repro.network.tree.EulerTourIndex`) for tree instances, and a
  CSR copy of the activity lists — so population-level queries
  (:meth:`adjacency`) and active-set queries (:class:`ActiveConflictSet`)
  run as array operations instead of per-pair Python loops.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["ConflictIndex", "ActiveConflictSet"]


class ConflictIndex:
    """Conflict queries over a fixed population of demand instances.

    Parameters
    ----------
    instances:
        The demand instances (tree or line; anything exposing
        ``instance_id``, ``demand_id``, ``network_id``).
    global_edges:
        ``global_edges[iid]`` is the list of global edge ids instance
        ``iid`` is active on (``(network, edge)`` or ``(resource, slot)``).
        Instance ids must be ``0 .. len(instances) - 1``.
    trees:
        Optional mapping ``network_id →``
        :class:`~repro.network.tree.TreeNetwork`.  When given (and the
        instances carry ``u``/``v`` endpoints), population-level conflict
        queries use the Euler-tour path-overlap test instead of edge
        buckets.
    """

    def __init__(
        self,
        instances: Sequence,
        global_edges: Sequence[Sequence],
        trees: Mapping[int, object] | None = None,
        *,
        defer_buckets: bool = False,
    ) -> None:
        if len(instances) != len(global_edges):
            raise ValueError("one edge list per instance required")
        self._instances = list(instances)
        self._edges_of: list[frozenset] = [frozenset(ge) for ge in global_edges]
        for pos, inst in enumerate(self._instances):
            iid = inst.instance_id
            if iid != pos:
                raise ValueError(
                    f"instance ids must be dense 0..N-1 in order; position "
                    f"{pos} holds id {iid}"
                )
        self._by_demand: dict[int, list[int]] | None = None
        self._by_edge: dict[object, list[int]] | None = None
        if not defer_buckets:
            self._ensure_buckets()
        self._build_arrays(global_edges, trees)

    def _ensure_buckets(self) -> None:
        """Materialize the scalar-API activity buckets.

        Built eagerly by the constructor unless ``defer_buckets`` asked
        otherwise; :meth:`sliced` views always defer them until a
        bucket-backed query (:meth:`neighbors`) first needs them, since
        the array-geometry paths never do.
        """
        if self._by_demand is not None:
            return
        by_demand: dict[int, list[int]] = {}
        by_edge: dict[object, list[int]] = {}
        for pos, (inst, ge) in enumerate(zip(self._instances, self._edges_of)):
            by_demand.setdefault(inst.demand_id, []).append(pos)
            for e in ge:
                by_edge.setdefault(e, []).append(pos)
        self._by_demand = by_demand
        self._by_edge = by_edge

    def _build_arrays(
        self,
        global_edges: Sequence[Sequence],
        trees: Mapping[int, object] | None,
    ) -> None:
        """Intern edges/demands and pick the geometry for batch queries."""
        insts = self._instances
        n = len(insts)
        self._edge_index: dict[object, int] = {}
        flat: list[int] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for pos, ge in enumerate(global_edges):
            for e in ge:
                eid = self._edge_index.setdefault(e, len(self._edge_index))
                flat.append(eid)
            indptr[pos + 1] = len(flat)
        self._flat_edges = np.asarray(flat, dtype=np.int64)
        self._indptr = indptr
        self.num_edges = len(self._edge_index)

        self._demand_index: dict[int, int] = {}
        dix = np.empty(n, dtype=np.int64)
        for pos, inst in enumerate(insts):
            dix[pos] = self._demand_index.setdefault(
                inst.demand_id, len(self._demand_index)
            )
        self._dix = dix
        self._net_arr = np.asarray([d.network_id for d in insts], dtype=np.int64)
        self._heights = np.asarray(
            [getattr(d, "height", 1.0) for d in insts], dtype=np.float64
        )

        if n and all(hasattr(d, "start") and hasattr(d, "end") for d in insts):
            self._geometry = "interval"
            self._starts = np.asarray([d.start for d in insts], dtype=np.int64)
            self._ends = np.asarray([d.end for d in insts], dtype=np.int64)
        elif (
            n
            and trees is not None
            and all(hasattr(d, "u") and hasattr(d, "v") for d in insts)
        ):
            self._geometry = "euler"
            self._us = np.asarray([d.u for d in insts], dtype=np.int64)
            self._vs = np.asarray([d.v for d in insts], dtype=np.int64)
            self._euler = {
                q: trees[q].euler_index()
                for q in np.unique(self._net_arr).tolist()
            }
        else:
            self._geometry = "buckets"

    # ------------------------------------------------------------------

    def sliced(self, instances: Sequence, gids: Sequence[int]) -> "ConflictIndex":
        """A relabeled sub-population view sharing this index's geometry.

        ``instances`` are the sub-population's instance objects with
        *dense local ids* (``instance_id == position``, demand ids
        densified — the shard-subproblem convention) and ``gids[k]`` is
        the global instance id local instance ``k`` was sliced from.

        The view reuses the parent's interned edge-id space, CSR route
        rows, route frozensets and per-network Euler-tour indexes — all
        immutable — so building it costs a few array gathers instead of
        the per-instance Python loops of a from-scratch build.  Every
        query answers exactly as a freshly built index over the same
        sub-population would: the shared edge-id space is a superset,
        which only widens the (never-loaded) zero tail no query observes.
        """
        gids_arr = np.asarray(gids, dtype=np.int64)
        k = len(gids_arr)
        if len(instances) != k:
            raise ValueError("one instance per global id required")
        out = object.__new__(ConflictIndex)
        out._instances = list(instances)
        out._edges_of = [self._edges_of[g] for g in gids_arr.tolist()]
        out._by_demand = None  # lazy — see _ensure_buckets
        out._by_edge = None
        out._edge_index = self._edge_index
        out.num_edges = self.num_edges
        starts = self._indptr[gids_arr]
        counts = self._indptr[gids_arr + 1] - starts
        indptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        if total:
            offsets = np.repeat(starts - indptr[:-1], counts)
            out._flat_edges = self._flat_edges[
                np.arange(total, dtype=np.int64) + offsets
            ]
        else:
            out._flat_edges = np.zeros(0, dtype=np.int64)
        out._indptr = indptr
        # First-appearance demand interning, exactly as the constructor
        # computes it (the identity map for densified demand ids).
        demand_index: dict[int, int] = {}
        dix = np.empty(k, dtype=np.int64)
        for pos, inst in enumerate(out._instances):
            if inst.instance_id != pos:
                raise ValueError(
                    f"instance ids must be dense 0..N-1 in order; position "
                    f"{pos} holds id {inst.instance_id}"
                )
            dix[pos] = demand_index.setdefault(
                inst.demand_id, len(demand_index)
            )
        out._demand_index = demand_index
        out._dix = dix
        out._net_arr = self._net_arr[gids_arr]
        out._heights = self._heights[gids_arr]
        out._geometry = self._geometry
        if self._geometry == "interval":
            out._starts = self._starts[gids_arr]
            out._ends = self._ends[gids_arr]
        elif self._geometry == "euler":
            out._us = self._us[gids_arr]
            out._vs = self._vs[gids_arr]
            out._euler = self._euler  # per-network tours, shared read-only
        return out

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instances)

    def instance(self, iid: int) -> Any:
        """The instance with id ``iid``."""
        return self._instances[iid]

    def edges_of(self, iid: int) -> frozenset:
        """Global edges instance ``iid`` is active on."""
        return self._edges_of[iid]

    def overlap(self, a: int, b: int) -> bool:
        """Same network and edge-intersecting routes (Section 2)."""
        ia, ib = self._instances[a], self._instances[b]
        if ia.network_id != ib.network_id:
            return False
        ea, eb = self._edges_of[a], self._edges_of[b]
        if len(ea) > len(eb):
            ea, eb = eb, ea
        return any(e in eb for e in ea)

    def conflicting(self, a: int, b: int) -> bool:
        """Same demand, or overlapping (Section 2's conflict relation)."""
        if a == b:
            return False
        ia, ib = self._instances[a], self._instances[b]
        if ia.demand_id == ib.demand_id:
            return True
        return self.overlap(a, b)

    def neighbors(self, iid: int, population: set[int] | None = None) -> set[int]:
        """All instances conflicting with ``iid``.

        Restricted to ``population`` if given.  Computed as the union of
        the sibling bucket (same demand) and the activity buckets of the
        edges on ``iid``'s route.
        """
        self._ensure_buckets()
        inst = self._instances[iid]
        out: set[int] = set()
        for other in self._by_demand[inst.demand_id]:
            if other != iid and (population is None or other in population):
                out.add(other)
        for e in self._edges_of[iid]:
            for other in self._by_edge[e]:
                if other != iid and (population is None or other in population):
                    out.add(other)
        return out

    def is_independent(self, iids: Iterable[int]) -> bool:
        """Whether the given instance ids are pairwise non-conflicting."""
        ids = list(iids)
        demands: set[int] = set()
        used_edges: set[object] = set()
        for iid in ids:
            inst = self._instances[iid]
            if inst.demand_id in demands:
                return False
            demands.add(inst.demand_id)
            for e in self._edges_of[iid]:
                if e in used_edges:
                    return False
            used_edges.update(self._edges_of[iid])
        return True

    # ------------------------------------------------------------------
    # Population-level (vectorized) queries
    # ------------------------------------------------------------------

    def conflict_matrix(self, iids: Sequence[int]) -> np.ndarray:
        """Pairwise conflict matrix of the given instance ids.

        ``M[i, j]`` = "``iids[i]`` conflicts with ``iids[j]``", diagonal
        False.  Interval-overlap tests for line instances, Euler-tour
        path-overlap tests for tree instances, edge-bucket expansion as
        the generic fallback.
        """
        arr = np.asarray(iids, dtype=np.int64)
        k = len(arr)
        dix = self._dix[arr]
        nets = self._net_arr[arr]
        one_net = len(np.unique(nets)) <= 1
        if self._geometry == "interval":
            s, e = self._starts[arr], self._ends[arr]
            M = s[:, None] <= e[None, :]
            M &= s[None, :] <= e[:, None]
            if not one_net:
                M &= nets[:, None] == nets[None, :]
            if len(np.unique(dix)) < k:
                M |= dix[:, None] == dix[None, :]
            np.fill_diagonal(M, False)
            return M
        M = dix[:, None] == dix[None, :]
        if self._geometry == "euler":
            for q in np.unique(nets).tolist():
                sel = np.nonzero(nets == q)[0]
                if len(sel) < 2:
                    continue
                sub = self._euler[q].path_overlap_matrix(
                    self._us[arr[sel]], self._vs[arr[sel]]
                )
                M[np.ix_(sel, sel)] |= sub
        else:
            flat, indptr = self._flat_edges, self._indptr
            seen: dict[int, list[int]] = {}
            for i, iid in enumerate(arr):
                for eid in flat[indptr[iid]:indptr[iid + 1]]:
                    seen.setdefault(int(eid), []).append(i)
            for members in seen.values():
                if len(members) > 1:
                    idx = np.asarray(members)
                    M[np.ix_(idx, idx)] = True
        np.fill_diagonal(M, False)
        return M

    def adjacency(self, population: Iterable[int]) -> dict[int, set[int]]:
        """Adjacency dict of the conflict graph induced on ``population``.

        Vectorized equivalent of :meth:`subgraph`: same contents, same
        key order (the iteration order of ``population``), but computed
        through :meth:`conflict_matrix` instead of per-instance bucket
        unions.
        """
        order = list(population)
        if not order:
            return {}
        arr = np.asarray(order, dtype=np.int64)
        M = self.conflict_matrix(arr)
        rows, cols = np.nonzero(M)
        splits = np.split(arr[cols], np.searchsorted(rows, np.arange(1, len(arr))))
        return {
            iid: set(splits[i].tolist()) for i, iid in enumerate(order)
        }

    def subgraph(self, population: Iterable[int]) -> dict[int, set[int]]:
        """Adjacency dict of the conflict graph induced on ``population``.

        Used to hand sub-populations to the MIS routines.
        """
        return self.adjacency(set(population))

    def active_set(self, capacities: bool = False) -> "ActiveConflictSet":
        """A fresh incremental active-set view over this population."""
        return ActiveConflictSet(self, capacities=capacities)

    def to_networkx(self, population: Iterable[int] | None = None) -> Any:
        """Export the (induced) conflict graph as :class:`networkx.Graph`."""
        import networkx as nx

        pop = set(population) if population is not None else set(range(len(self)))
        g = nx.Graph()
        g.add_nodes_from(pop)
        for iid in pop:
            for other in self.neighbors(iid, pop):
                if other > iid:
                    g.add_edge(iid, other)
        return g


class ActiveConflictSet:
    """Incremental membership structure for the second-phase greedy unwind.

    Maintains per-edge load (or occupancy) and per-demand usage for a
    growing/shrinking *active set* of instances, so "which of these
    candidates conflict with the active set" is a batched gather/segment
    reduction instead of a from-scratch rebuild per step.

    Parameters
    ----------
    index:
        The :class:`ConflictIndex` whose interned arrays are shared.
    capacities:
        ``False`` (default): unit semantics — a candidate is blocked if
        any of its edges is occupied.  ``True``: height semantics — a
        candidate is blocked if adding its height would push any edge
        load above 1 (within ``1e-9``).
    """

    def __init__(self, index: ConflictIndex, capacities: bool = False) -> None:
        self._index = index
        self.capacities = capacities
        self._load = np.zeros(index.num_edges, dtype=np.float64)
        self._demand_used = np.zeros(len(index._demand_index), dtype=bool)
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, iid: int) -> bool:
        return iid in self._members

    def _edges(self, iid: int) -> np.ndarray:
        idx = self._index
        return idx._flat_edges[idx._indptr[iid]:idx._indptr[iid + 1]]

    def blocked_mask(self, iids: Sequence[int]) -> np.ndarray:
        """Boolean array: which candidates conflict with the active set.

        The candidates are assumed pairwise non-conflicting (they come
        from one MIS step), so the answers are independent of each other.
        """
        idx = self._index
        arr = np.asarray(iids, dtype=np.int64)
        if len(arr) == 0:
            return np.zeros(0, dtype=bool)
        if len(arr) == 1:
            # Scalar fast path: single-candidate probes dominate the
            # online replay (one instance per demand is the common
            # population shape), and the batched gather/segment machinery
            # below costs ~10x the work for them.  Same comparisons, same
            # answer, bit for bit.
            iid = int(arr[0])
            hit = bool(self._demand_used[idx._dix[iid]])
            if not hit:
                row = idx._flat_edges[idx._indptr[iid]:idx._indptr[iid + 1]]
                if len(row):
                    top = self._load[row].max()
                    if self.capacities:
                        hit = bool(top + idx._heights[iid] > 1.0 + 1e-9)
                    else:
                        hit = bool(top > 0.0)
            return np.asarray([hit], dtype=bool)
        blocked = self._demand_used[idx._dix[arr]].copy()
        starts = idx._indptr[arr]
        counts = idx._indptr[arr + 1] - starts
        total = int(counts.sum())
        if total:
            # Gather every candidate's edge loads into one flat array.
            offsets = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                counts,
            )
            flat_pos = np.arange(total) + offsets
            loads = self._load[idx._flat_edges[flat_pos]]
            seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            nonempty = counts > 0
            seg_max = np.zeros(len(arr), dtype=np.float64)
            if nonempty.any():
                seg_max[nonempty] = np.maximum.reduceat(
                    loads, seg_starts[nonempty]
                )
            if self.capacities:
                blocked |= seg_max + idx._heights[arr] > 1.0 + 1e-9
            else:
                blocked |= seg_max > 0.0
        return blocked

    def blocked(self, iid: int) -> bool:
        """Whether one candidate conflicts with the active set."""
        return bool(self.blocked_mask(np.asarray([iid]))[0])

    def edge_loads(self, iid: int) -> np.ndarray:
        """Current load on each edge of instance ``iid``'s route.

        In the index's internal CSR order — arbitrary when the index was
        built from unordered edge sets — so the result is meant for
        aggregation (sums, maxima, the online price functions), not for
        zipping against the route's edge sequence.
        """
        return self._load[self._edges(iid)]

    def max_load(self) -> float:
        """The heaviest edge load in the active set (0.0 when empty)."""
        return float(self._load.max()) if len(self._load) else 0.0

    def add(self, iid: int) -> None:
        """Insert an instance into the active set (no feasibility check)."""
        idx = self._index
        h = idx._heights[iid] if self.capacities else 1.0
        self._load[self._edges(iid)] += h
        self._demand_used[idx._dix[iid]] = True
        self._members.add(iid)

    def add_all(self, iids: Sequence[int], *,
                _edges: np.ndarray | None = None,
                _adds: np.ndarray | None = None) -> None:
        """Batch-insert pairwise non-conflicting instances.

        ``_edges``/``_adds`` let a caller that has already gathered the
        instances' concatenated route edges (and the matching repeated
        heights) pass them in instead of re-gathering — the batch
        decision kernels' hot path.  The values must equal what the
        gather here would produce; the load update is the identical
        fancy-indexed add either way.
        """
        idx = self._index
        arr = np.asarray(iids, dtype=np.int64)
        if len(arr) == 0:
            return
        if _edges is None:
            starts = idx._indptr[arr]
            counts = idx._indptr[arr + 1] - starts
            total = int(counts.sum())
            if total:
                offsets = np.repeat(
                    starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                    counts,
                )
                _edges = idx._flat_edges[np.arange(total) + offsets]
                if self.capacities:
                    _adds = np.repeat(idx._heights[arr], counts)
            else:
                _edges = None
        if _edges is not None and len(_edges):
            if self.capacities:
                # Candidates are edge-disjoint, so the fancy-indexed add
                # touches each position at most once.
                self._load[_edges] += _adds
            else:
                self._load[_edges] += 1.0
        self._demand_used[idx._dix[arr]] = True
        self._members.update(arr.tolist())

    def remove(self, iid: int) -> None:
        """Remove an instance from the active set."""
        if iid not in self._members:
            raise KeyError(f"instance {iid} is not in the active set")
        idx = self._index
        h = idx._heights[iid] if self.capacities else 1.0
        self._load[self._edges(iid)] -= h
        self._demand_used[idx._dix[iid]] = False
        self._members.discard(iid)
