"""Span tracing with a lock-free per-process flight-recorder ring.

The recorder is a fixed-capacity ring buffer of *completed* spans —
``(name, ts_ns, dur_ns, args)`` tuples stamped with
:func:`time.perf_counter_ns`.  Appends are a single list-slot store
under the GIL (no locks, no resizing), so recording is cheap enough to
leave in the replay hot path; when the ring is full the oldest spans
fall off and the newest N survive — exactly what a post-mortem wants.

Two recording styles:

* :func:`span` — a context manager for code with interesting failure
  modes; the span is recorded on exit *including* exception exits (the
  exception type lands in the span's args).  Lint rule ``OBS001``
  enforces that ``span(...)`` is only ever used as a ``with`` item, so
  an enter can never leak without its exit.
* :meth:`FlightRecorder.record` / :func:`record_complete` — for hot
  paths that already hold their own timestamps (the session kernel
  times every policy call anyway); one guarded call, no allocation on
  the disabled path.

Everything is gated on :attr:`FlightRecorder.enabled` — a plain bool
the instrumented call sites check first, so with observability off the
cost is one attribute read and the disabled :func:`span` returns a
shared no-op singleton (no allocation).  Timing never feeds decisions:
spans are write-only telemetry, which keeps the replay's bit-exact
determinism contract (and the ``DET003`` lint rule) intact.

Dumps use the Chrome ``trace_event`` JSON format
(:func:`chrome_trace`), loadable in Perfetto / ``about:tracing``.
:func:`install_crash_dump` registers an atexit hook that writes the
ring to disk on interpreter exit, so an abnormal termination still
leaves the last moments of the process behind.
"""

from __future__ import annotations

import atexit
import json
import os
import time

__all__ = ["FlightRecorder", "RECORDER", "chrome_trace", "disable",
           "enable", "install_crash_dump", "is_enabled",
           "record_complete", "span"]

#: Default ring capacity (spans kept before the oldest fall off).
DEFAULT_CAPACITY = 8192


class FlightRecorder:
    """A fixed-capacity ring of completed spans.

    ``enabled`` is the module flag every instrumented call site guards
    on; flipping it is the whole cost of turning tracing off.  The ring
    never grows: ``record`` overwrites the slot ``total % capacity``,
    so memory stays bounded and the newest ``capacity`` spans always
    survive (:meth:`events` returns them oldest-first).
    """

    __slots__ = ("enabled", "capacity", "_buf", "_total")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = False
        self.capacity = int(capacity)
        self._buf: list = [None] * self.capacity
        self._total = 0

    # -- recording -----------------------------------------------------

    def record(self, name: str, ts_ns: int, dur_ns: int,
               args: dict | None = None) -> None:
        """Append one completed span (single slot store — lock-free)."""
        self._buf[self._total % self.capacity] = (name, ts_ns, dur_ns, args)
        self._total += 1

    # -- introspection -------------------------------------------------

    @property
    def total(self) -> int:
        """Spans ever recorded (including ones the ring dropped)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Spans the ring has overwritten."""
        return max(0, self._total - self.capacity)

    def events(self, last: int | None = None) -> list:
        """The surviving spans, oldest first (at most ``last``)."""
        total, cap = self._total, self.capacity
        start = max(0, total - cap)
        if last is not None:
            start = max(start, total - max(int(last), 0))
        return [self._buf[i % cap] for i in range(start, total)]

    def drain(self, last: int | None = None) -> list:
        """:meth:`events` then :meth:`clear` — the fork-worker hand-off."""
        out = self.events(last)
        self.clear()
        return out

    def clear(self) -> None:
        self._buf = [None] * self.capacity
        self._total = 0

    def extend(self, events) -> None:
        """Append already-completed spans (merging a shipped recorder)."""
        for name, ts_ns, dur_ns, args in events:
            self.record(name, ts_ns, dur_ns, args)


#: The per-process recorder every instrumented call site shares.
RECORDER = FlightRecorder()


def enable(capacity: int | None = None) -> None:
    """Turn span recording on (optionally resizing the ring)."""
    if capacity is not None and capacity != RECORDER.capacity:
        RECORDER.capacity = int(capacity)
        RECORDER.clear()
    RECORDER.enabled = True


def disable() -> None:
    """Turn span recording off (the ring's contents are kept)."""
    RECORDER.enabled = False


def is_enabled() -> bool:
    return RECORDER.enabled


def record_complete(name: str, t0_s: float, dur_s: float,
                    args: dict | None = None) -> None:
    """Record a span from ``time.perf_counter`` float timestamps.

    For hot paths that already measured their own window (the session
    kernel's per-event latency clock): no second timing call, just the
    unit conversion and one ring store.  Callers guard on
    ``RECORDER.enabled`` themselves so the disabled path pays nothing.
    """
    RECORDER.record(name, int(t0_s * 1e9), int(dur_s * 1e9), args)


# ----------------------------------------------------------------------
# The context-manager API (OBS001: only ever used as a `with` item)
# ----------------------------------------------------------------------


class _Span:
    """A live span; records itself on exit, exceptions included."""

    __slots__ = ("name", "args", "_t0")

    def __init__(self, name: str, args: dict | None):
        self.name = name
        self.args = args
        self._t0 = 0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._t0
        args = self.args
        if exc_type is not None:
            args = dict(args) if args else {}
            args["error"] = exc_type.__name__
        RECORDER.record(self.name, self._t0, dur, args)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **args):
    """A context manager timing one ``with`` block into the recorder.

    Disabled recording returns a shared no-op singleton — no
    allocation, two trivial method calls.  The span is recorded on
    ``__exit__`` whether the block returned or raised, so nesting is
    always balanced (enforced statically by lint rule ``OBS001``).
    """
    if not RECORDER.enabled:
        return _NOOP
    return _Span(name, args or None)


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------


def chrome_trace(events: list | None = None, *,
                 pid: int | None = None) -> dict:
    """Spans as a Chrome ``trace_event`` document (Perfetto-loadable).

    Each span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur``.  Spans shipped from fork workers carry
    a ``shard`` arg; it is mapped to the event's ``tid`` so each
    shard renders as its own track.
    """
    if events is None:
        events = RECORDER.events()
    if pid is None:
        pid = os.getpid()
    out = []
    for name, ts_ns, dur_ns, args in events:
        shard = (args or {}).get("shard")
        ev = {
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": ts_ns / 1e3,
            "dur": dur_ns / 1e3,
            "pid": pid,
            "tid": 0 if shard is None else int(shard) + 1,
        }
        if args:
            ev["args"] = args
        out.append(ev)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Crash dump: leave the last moments behind on abnormal exit
# ----------------------------------------------------------------------

_DUMP_PATH: str | None = None


def _dump_at_exit() -> None:
    if _DUMP_PATH is None or RECORDER.total == 0:
        return
    try:
        with open(_DUMP_PATH, "w") as fh:
            json.dump(chrome_trace(), fh)
    except OSError:
        pass  # a failed post-mortem dump must never mask the real exit


def install_crash_dump(path: str) -> None:
    """Write the ring to ``path`` as Chrome trace JSON at interpreter
    exit (normal or abnormal — anything short of ``kill -9``).

    Idempotent: the latest path wins, the atexit hook is registered
    once.  Pairs with the journal's last checkpoint for SIGKILL-grade
    exits, where no user code runs at all.
    """
    global _DUMP_PATH
    register = _DUMP_PATH is None
    _DUMP_PATH = path
    if register:
        atexit.register(_dump_at_exit)
