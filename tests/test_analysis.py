"""The ``repro lint`` invariant checker: rules, runner, CLI, baseline.

Every rule is exercised through its own embedded fixtures (the same
snippets ``--explain`` prints), so a rule whose documentation and
behavior drift apart fails here.  The capstone is the baseline test:
``repro lint src/`` must exit 0 on the committed tree.
"""

from __future__ import annotations

import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (Finding, get_rule, iter_rules, lint_fixture,
                            lint_paths, parse_suppressions, render_explain)
from repro.analysis.runner import LintReport

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

ALL_RULES = [rule.id for rule in iter_rules()]


# ----------------------------------------------------------------------
# Fixtures: every rule's bad snippet trips it, every good one is clean
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_rule_has_fixtures_and_metadata(rule_id):
    rule = get_rule(rule_id)
    assert rule.fixtures, f"{rule_id} has no fixtures"
    assert rule.rationale.strip()
    assert rule.name
    assert rule.scope in ("file", "project")


@pytest.mark.parametrize(
    "rule_id,idx",
    [(rule.id, i) for rule in iter_rules()
     for i in range(len(rule.fixtures))],
)
def test_bad_fixture_trips_rule(rule_id, idx):
    rule = get_rule(rule_id)
    findings = lint_fixture(rule, rule.fixtures[idx].bad)
    assert any(f.rule == rule_id for f in findings), (
        f"{rule_id} bad fixture {idx} produced no {rule_id} finding: "
        f"{[f.format() for f in findings]}"
    )


@pytest.mark.parametrize(
    "rule_id,idx",
    [(rule.id, i) for rule in iter_rules()
     for i in range(len(rule.fixtures))],
)
def test_good_fixture_stays_clean(rule_id, idx):
    rule = get_rule(rule_id)
    findings = lint_fixture(rule, rule.fixtures[idx].good)
    own = [f for f in findings if f.rule == rule_id]
    assert not own, (
        f"{rule_id} good fixture {idx} still trips: "
        f"{[f.format() for f in own]}"
    )


def test_explain_renders_every_rule():
    for rule in iter_rules():
        page = render_explain(rule)
        assert rule.id in page
        assert "bad" in page and "good" in page


# ----------------------------------------------------------------------
# Targeted rule behavior beyond the fixtures
# ----------------------------------------------------------------------


def test_det001_sorted_set_iteration_is_clean():
    rule = get_rule("DET001")
    clean = "def f(s):\n    return [x for x in sorted(set(s))]\n"
    assert not lint_fixture(rule, clean)


def test_det001_order_insensitive_reducers_are_clean():
    rule = get_rule("DET001")
    clean = (
        "import math\n"
        "def f(s):\n"
        "    a = sum(x for x in set(s))\n"
        "    b = math.fsum(x for x in frozenset(s))\n"
        "    c = max(set(s))\n"
        "    return a + b + c\n"
    )
    assert not lint_fixture(rule, clean)


def test_det001_scoped_to_ordered_packages():
    rule = get_rule("DET001")
    snippet = "def f(s):\n    return [x for x in set(s)]\n"
    assert lint_fixture(rule, {"core/x.py": snippet})
    assert not lint_fixture(rule, {"workloads/x.py": snippet})


def test_det002_seeded_instances_are_clean():
    rule = get_rule("DET002")
    clean = (
        "import random\n"
        "import numpy as np\n"
        "def f(seed):\n"
        "    r = random.Random(seed)\n"
        "    g = np.random.default_rng(seed)\n"
        "    return r.random() + g.random()\n"
    )
    assert not lint_fixture(rule, clean)


def test_det003_perf_counter_is_clean():
    rule = get_rule("DET003")
    clean = ("import time\n"
             "def f():\n"
             "    return time.perf_counter()\n")
    assert not lint_fixture(rule, clean)


def test_cert001_counting_sum_is_clean():
    rule = get_rule("CERT001")
    clean = ("def f(ledger, plan):\n"
             "    return sum(1 for d in ledger if plan.is_boundary(d))\n")
    assert not lint_fixture(rule, clean)


def test_cert001_fsum_is_clean():
    rule = get_rule("CERT001")
    clean = ("import math\n"
             "def f(rows):\n"
             "    return math.fsum(m.realized_profit for m in rows)\n")
    assert not lint_fixture(rule, clean)


def test_state001_super_delegation_must_be_symmetric():
    rule = get_rule("STATE001")
    bad = (
        "class P(Base):\n"
        "    def export_state(self):\n"
        "        state = super().export_state()\n"
        "        state['peak'] = self.peak\n"
        "        return state\n"
        "    def restore_state(self, state):\n"
        "        self.peak = state['peak']\n"
    )
    findings = lint_fixture(rule, bad)
    assert any("super()" in f.message for f in findings)
    good = bad.replace(
        "    def restore_state(self, state):\n",
        "    def restore_state(self, state):\n"
        "        super().restore_state(state)\n",
    )
    assert not lint_fixture(rule, good)


def test_loop001_only_applies_to_async_server():
    rule = get_rule("LOOP001")
    snippet = ("import time\n"
               "def f():\n"
               "    time.sleep(1)\n")
    assert not lint_fixture(rule, {"service/server.py": snippet})
    assert lint_fixture(rule, {"service/async_server.py": snippet})


def test_proto001_response_key_drift_detected():
    rule = get_rule("PROTO001")
    files = dict(rule.fixtures[0].good)
    files["README.md"] = files["README.md"].replace(
        "| `stats` | `ok`, `op`, `stats` |",
        "| `stats` | `ok`, `op`, `stats`, `phantom` |",
    )
    findings = lint_fixture(rule, files)
    assert any("phantom" in f.message for f in findings)


def test_api001_dynamic_all_is_skipped():
    rule = get_rule("API001")
    dynamic = ("import pkgutil\n"
               "__all__ = [m.name for m in pkgutil.iter_modules()]\n")
    assert not lint_fixture(rule, {"pkg/__init__.py": dynamic})


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_suppression_requires_justification():
    src = "x = 1  # repro: noqa[DET001]\n"
    table = parse_suppressions(src)
    assert not table.covers(1, "DET001")
    noqa = list(table.unjustified("f.py"))
    assert len(noqa) == 1 and noqa[0].rule == "NOQA001"


def test_justified_suppression_covers_line_and_next_line():
    src = (
        "a = 1  # repro: noqa[DET001] -- same-line reason\n"
        "# repro: noqa[CERT001] -- standalone comment covers next stmt\n"
        "b = 2\n"
    )
    table = parse_suppressions(src)
    assert table.covers(1, "DET001")
    assert table.covers(3, "CERT001")
    assert not table.covers(2, "CERT001")
    assert not list(table.unjustified("f.py"))


def test_multi_rule_suppression():
    src = "x = 1  # repro: noqa[DET001, CERT001] -- both safe here\n"
    table = parse_suppressions(src)
    assert table.covers(1, "DET001") and table.covers(1, "CERT001")


def test_suppressed_finding_dropped_from_report(tmp_path):
    bad = tmp_path / "core" / "mod.py"
    bad.parent.mkdir()
    bad.write_text(
        "def f(s):\n"
        "    # repro: noqa[DET001] -- test fixture, order irrelevant\n"
        "    return [x for x in set(s)]\n"
    )
    report = lint_paths([tmp_path])
    assert not [f for f in report.findings if f.rule == "DET001"]
    assert report.suppressed == 1


# ----------------------------------------------------------------------
# Runner plumbing
# ----------------------------------------------------------------------


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = lint_paths([tmp_path])
    assert [f.rule for f in report.findings] == ["PARSE000"]
    assert report.exit_code == 1


def test_select_and_ignore(tmp_path):
    mod = tmp_path / "core" / "mod.py"
    mod.parent.mkdir()
    mod.write_text("import random\n"
                   "def f(s):\n"
                   "    return [x for x in set(s)][random.randint(0, 1)]\n")
    both = lint_paths([tmp_path])
    assert {f.rule for f in both.findings} == {"DET001", "DET002"}
    only = lint_paths([tmp_path], select={"DET001"})
    assert {f.rule for f in only.findings} == {"DET001"}
    rest = lint_paths([tmp_path], ignore={"DET001"})
    assert {f.rule for f in rest.findings} == {"DET002"}


def test_report_json_round_trip(tmp_path):
    mod = tmp_path / "core" / "mod.py"
    mod.parent.mkdir()
    mod.write_text("def f(s):\n    return [x for x in set(s)]\n")
    report = lint_paths([tmp_path])
    doc = json.loads(report.to_json())
    assert doc["findings"] and doc["checked_files"] == 1
    f = Finding(**doc["findings"][0])
    assert f.rule == "DET001"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _run_cli(*argv):
    from repro.cli import main
    return main(list(argv))


def test_cli_explain_and_list_rules(capsys):
    assert _run_cli("lint", "--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULES:
        assert rule_id in out
    assert _run_cli("lint", "--explain", "CERT001") == 0
    page = capsys.readouterr().out
    assert "CERT001" in page and "fsum" in page


def test_cli_explain_unknown_rule_fails():
    with pytest.raises(SystemExit):
        _run_cli("lint", "--explain", "NOPE999")


def test_cli_unknown_select_fails():
    with pytest.raises(SystemExit):
        _run_cli("lint", "--select", "NOPE999", "src")


def test_cli_json_output_and_artifact(tmp_path, capsys):
    mod = tmp_path / "core" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("def f(s):\n    return [x for x in set(s)]\n")
    out_file = tmp_path / "findings.json"
    code = _run_cli("lint", "--format", "json", "-o", str(out_file),
                    str(tmp_path))
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"][0]["rule"] == "DET001"
    assert json.loads(out_file.read_text()) == doc


# ----------------------------------------------------------------------
# The committed tree stays clean (the CI gate, as a test)
# ----------------------------------------------------------------------


def test_lint_src_baseline_is_clean():
    report = lint_paths([SRC])
    assert report.findings == [], "\n" + "\n".join(
        f.format() for f in report.findings)


def test_lint_cli_exits_zero_on_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(SRC)],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# Regression tests for the baseline findings fixed in this change
# ----------------------------------------------------------------------


def _pathological():
    # sum() collapses these to 0.0 left-to-right; the exact total is 2.0.
    return [1e16, 1.0, 1.0, -1e16]


def test_solution_profit_is_exactly_rounded():
    from repro.core.demand import TreeDemandInstance
    from repro.core.solution import Solution

    selected = [
        TreeDemandInstance(instance_id=i, demand_id=i, network_id=0,
                           u=0, v=1, profit=p)
        for i, p in enumerate(_pathological())
    ]
    sol = Solution(selected=selected)
    assert sol.profit == math.fsum(_pathological()) == 2.0
    assert sol.profit != sum(_pathological())


def test_mirror_withdrawn_profit_is_order_free():
    from repro.sharding.streaming import _CoordinatorMirror

    mirror = _CoordinatorMirror.__new__(_CoordinatorMirror)
    mirror.withdrawn = dict(enumerate(_pathological()))
    assert mirror.withdrawn_profit == 2.0
    mirror.withdrawn = dict(enumerate(reversed(_pathological())))
    assert mirror.withdrawn_profit == 2.0


def test_mirror_double_forfeited_is_order_free():
    from repro.sharding.streaming import _CoordinatorMirror

    mirror = _CoordinatorMirror.__new__(_CoordinatorMirror)
    mirror._double_forfeited = dict(enumerate(_pathological()))
    assert mirror.double_forfeited == 2.0


def test_sharded_merge_certificate_uses_fsum():
    from repro.online.metrics import ReplayMetrics
    from repro.online.events import EventTrace, Arrival
    from repro.sharding.driver import ShardedDriver
    from repro.workloads import random_tree_problem

    problem = random_tree_problem(n=4, m=4, r=1, seed=0)
    trace = EventTrace(problem=problem,
                       events=[Arrival(float(i), i) for i in range(4)])

    def row(profit, cert):
        return ReplayMetrics(
            policy="greedy", events=1, arrivals=1, departures=0, ticks=0,
            accepted=1, rejected=0, acceptance_ratio=1.0,
            realized_profit=profit, evictions=0, forfeited_profit=profit,
            penalty_paid=profit, penalty_adjusted_profit=0.0,
            elapsed_s=0.0, events_per_sec=0.0, latency_p50_us=0.0,
            latency_p90_us=0.0, latency_p99_us=0.0, latency_mean_us=0.0,
            dual_upper_bound=cert, dual_upper_bound_peak=None,
        )

    class _Result:
        def __init__(self, m):
            self.metrics = m

    rows = [_Result(row(p, c))
            for p, c in zip(_pathological(), _pathological())]
    merged = ShardedDriver._merge(trace, rows, None, wall=1.0)
    assert merged.realized_profit == 2.0
    assert merged.forfeited_profit == 2.0
    assert merged.penalty_paid == 2.0
    assert merged.dual_upper_bound == 2.0


def test_ledger_verify_accepts_exact_logs():
    """verify()'s fsum cross-check holds on a replay with evictions."""
    from repro.online.driver import replay
    from repro.online.events import generate_trace
    from repro.online.policies import make_policy

    trace = generate_trace("tree", events=200, seed=7, departure_prob=0.5)
    result = replay(trace, make_policy("preempt-density"), verify=True)
    assert result.metrics.events == len(trace.events)
