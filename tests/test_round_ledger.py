"""Regression tests: engine-charged rounds ≡ SyncSimulator's round count.

The simulator maintains two ledgers independently — the global
``SimStats.rounds`` counter (incremented per executed round) and the
per-phase charges recorded by ``run_phase``.  The protocol runtime must
reconcile them; a drifting ledger means a phase ran outside the round
accounting the complexity theorems are stated in.
"""

from __future__ import annotations

import pytest

from repro import (
    LineUnitRuntime,
    TreeUnitRuntime,
    random_line_problem,
    random_tree_problem,
)


class TestRoundLedger:
    def test_tree_runtime_ledgers_agree(self):
        p = random_tree_problem(n=12, m=8, r=2, seed=1)
        rt = TreeUnitRuntime(p, epsilon=0.2)
        sol = rt.run()
        assert sol.stats["rounds_charged"] == sol.stats["rounds"]
        assert (
            sol.stats["phase1_rounds"]
            + sol.stats["phase2_rounds"]
            + sol.stats["drain_rounds"]
            == sol.stats["rounds"]
        )
        assert sol.stats["phase1_rounds"] > 0

    def test_line_runtime_ledgers_agree(self):
        p = random_line_problem(n_slots=16, m=6, r=2, seed=2, max_len=5)
        rt = LineUnitRuntime(p, epsilon=0.2)
        sol = rt.run()
        assert sol.stats["rounds_charged"] == sol.stats["rounds"]

    def test_verify_detects_phantom_charge(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=3)
        rt = TreeUnitRuntime(p, epsilon=0.2)
        rt.run()
        # Simulate a drifted ledger: a phase charged but never executed.
        rt.sim.stats.charge("phantom-phase", 5)
        with pytest.raises(RuntimeError, match="round-ledger mismatch"):
            rt.verify_round_ledger()

    def test_verify_detects_uncharged_rounds(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=4)
        rt = TreeUnitRuntime(p, epsilon=0.2)
        rt.run()
        # Simulate rounds executed outside any charged phase.
        rt.sim.stats.rounds += 3
        with pytest.raises(RuntimeError, match="round-ledger mismatch"):
            rt.verify_round_ledger()
