"""Replay metrics: acceptance, profit vs the offline optimum, latency.

The offline benchmark is the trace's own frozen problem — every demand
that ever arrives, solved by any registry solver (``exact`` for the true
optimum, an approximation algorithm for a cheaper yardstick).  With
departures in the trace the clairvoyant adversary is weaker than the
frozen instance suggests (capacity freed mid-stream can be reused), so a
policy can legitimately exceed the frozen optimum; ratios above 1 are
reported as computed, not clamped.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Sequence

import numpy as np

from .events import EventTrace

__all__ = ["ReplayMetrics", "TIMING_FIELDS", "deterministic_metrics",
           "latency_percentiles", "offline_optimum", "with_offline"]

#: The wall-clock-dependent metrics fields — everything else is a pure
#: function of (trace, policy configuration).
TIMING_FIELDS = ("elapsed_s", "events_per_sec", "latency_p50_us",
                 "latency_p90_us", "latency_p99_us", "latency_mean_us")


def deterministic_metrics(metrics) -> dict:
    """``metrics`` (a record or its ``to_dict`` form) minus the
    wall-clock-dependent fields — the projection that must agree exactly
    between a warm-restarted session and an uninterrupted replay, and
    that the shards=1 equivalence tests compare byte for byte."""
    doc = dict(metrics if isinstance(metrics, dict) else metrics.to_dict())
    for k in TIMING_FIELDS:
        doc.pop(k, None)
    return doc


def latency_percentiles(latencies_s: Sequence[float]) -> dict[str, float]:
    """p50/p90/p99 and mean of per-event decision latencies, in µs."""
    if len(latencies_s) == 0:
        return {"p50_us": 0.0, "p90_us": 0.0, "p99_us": 0.0, "mean_us": 0.0}
    arr = np.asarray(latencies_s, dtype=np.float64) * 1e6
    p50, p90, p99 = np.percentile(arr, [50.0, 90.0, 99.0])
    return {
        "p50_us": float(p50),
        "p90_us": float(p90),
        "p99_us": float(p99),
        "mean_us": float(arr.mean()),
    }


@dataclass(frozen=True)
class ReplayMetrics:
    """Flat, JSON-safe outcome of one (trace, policy) replay."""

    policy: str
    events: int
    arrivals: int
    departures: int
    ticks: int
    accepted: int
    rejected: int
    acceptance_ratio: float
    realized_profit: float
    elapsed_s: float
    events_per_sec: float
    latency_p50_us: float
    latency_p90_us: float
    latency_p99_us: float
    latency_mean_us: float
    #: Demands preemptively evicted (0 for non-preemptive policies).
    evictions: int = 0
    #: Profit forfeited by evicted demands (already netted out of
    #: ``realized_profit``).
    forfeited_profit: float = 0.0
    #: Eviction penalties charged on top of the forfeits.
    penalty_paid: float = 0.0
    #: ``realized_profit - penalty_paid`` — the apples-to-apples number
    #: for comparing preemptive and non-preemptive policies.
    penalty_adjusted_profit: float = 0.0
    #: LP-dual upper bound on the frozen-instance optimum, certified by
    #: the dual-gated price trajectory (``None`` for policies that carry
    #: no prices).  Mirrors the offline ``opt_upper_bound`` certificate:
    #: always ``>= offline_profit`` by weak duality, and computed from
    #: the replay itself — no offline solve needed.
    dual_upper_bound: float | None = None
    #: The peak-only bound, reported alongside the (tightened)
    #: ``dual_upper_bound`` when the policy records per-edge price
    #: *histories* (``dual-gated`` / ``preempt-dual-gated`` with
    #: ``history=True``); ``None`` otherwise.
    dual_upper_bound_peak: float | None = None
    #: Profit of the frozen-instance benchmark (``None`` when not computed).
    offline_profit: float | None = None
    #: ``adjusted / offline`` — the fraction of the benchmark captured
    #: (penalty-adjusted, so preemptive rows are comparable).
    profit_vs_offline: float | None = None
    #: ``offline / adjusted`` — the (empirical) competitive ratio.
    competitive_ratio: float | None = None

    def to_dict(self) -> dict:
        """The metrics as a plain dict (JSON-serialisable)."""
        return asdict(self)


def offline_optimum(trace: EventTrace, solver: str = "exact", **params) -> float:
    """Profit of ``solver`` on the trace's frozen problem.

    ``registry.solve`` semantics: unknown keyword arguments are dropped
    per solver, so one parameter dict can drive any benchmark solver.
    """
    from ..algorithms import registry

    return float(registry.solve(solver, trace.problem, **params).profit)


def with_offline(metrics: ReplayMetrics, offline_profit: float) -> ReplayMetrics:
    """A copy of ``metrics`` with the offline-benchmark ratios filled in.

    Ratios are computed on the *penalty-adjusted* profit (realized minus
    eviction penalties), which coincides with ``realized_profit`` for
    non-preemptive policies, so preemptive and non-preemptive rows on
    the same trace are directly comparable.  The degenerate 0/0 case —
    an empty or fully-gated trace whose offline benchmark is also 0 —
    reports both ratios as 1.0 (the policy captured everything there was
    to capture) instead of blanking the sweep-table cells.
    """
    adjusted = metrics.realized_profit - metrics.penalty_paid
    offline = float(offline_profit)
    if offline == 0.0 and adjusted == 0.0:
        vs_offline = competitive = 1.0
    else:
        vs_offline = adjusted / offline if offline > 0 else None
        competitive = offline / adjusted if adjusted > 0 else None
    return replace(
        metrics,
        offline_profit=offline,
        profit_vs_offline=vs_offline,
        competitive_ratio=competitive,
    )
