"""E10 (Section 1's "improve ... by a factor of 5"): head-to-head against
Panconesi–Sozio on identical seeded line workloads.

The improvement the paper proves is in the *worst-case guarantee*:
(4+ε)/(23+ε) vs PS's (20+ε)/(55+ε) — a 5× (resp. ~2.4×) tighter bound,
driven by the slackness λ = 1-ε vs 1/(5+ε).  On random instances both
algorithms do far better than their bounds; the measurable, structural
difference is the dual certificate: ours proves OPT within a small factor
of the achieved profit, PS's certificate is ~5× looser.  We regenerate
profits, certificates and realized λ on shared workloads.
"""

from __future__ import annotations

from repro import (
    random_line_problem,
    solve_line_arbitrary,
    solve_line_unit,
    solve_optimal,
    solve_ps_line_arbitrary,
    solve_ps_line_unit,
)

from common import emit, geomean

EPS = 0.1


def run_experiment():
    rows = []
    ours_ratios, ps_ratios, lam_ours, lam_ps = [], [], [], []
    cert_ours, cert_ps = [], []
    for seed in range(5):
        p = random_line_problem(n_slots=40, m=20, r=2, seed=seed, max_len=10)
        opt = solve_optimal(p).profit
        ours = solve_line_unit(p, epsilon=EPS, seed=seed)
        ps = solve_ps_line_unit(p, epsilon=EPS, seed=seed)
        ours_ratios.append(opt / max(ours.profit, 1e-12))
        ps_ratios.append(opt / max(ps.profit, 1e-12))
        lam_ours.append(ours.stats["realized_lambda"])
        lam_ps.append(ps.stats["realized_lambda"])
        cert_ours.append(ours.stats["opt_upper_bound"] / opt)
        cert_ps.append(ps.stats["opt_upper_bound"] / opt)
        rows.append([f"unit seed={seed}", f"{ours.profit:.1f}", f"{ps.profit:.1f}",
                     f"{opt:.1f}", f"{ours.stats['realized_lambda']:.3f}",
                     f"{ps.stats['realized_lambda']:.3f}"])

    arb_ours, arb_ps = [], []
    for seed in range(3):
        p = random_line_problem(n_slots=36, m=18, r=2, seed=seed + 40,
                                height_regime="mixed", hmin=0.1, max_len=9)
        opt = solve_optimal(p).profit
        ours = solve_line_arbitrary(p, epsilon=EPS, seed=seed)
        ps = solve_ps_line_arbitrary(p, epsilon=EPS, seed=seed)
        arb_ours.append(opt / max(ours.profit, 1e-12))
        arb_ps.append(opt / max(ps.profit, 1e-12))
        rows.append([f"arb seed={seed}", f"{ours.profit:.1f}", f"{ps.profit:.1f}",
                     f"{opt:.1f}", "-", "-"])

    rows.append(["geo OPT/ALG unit", geomean(ours_ratios), geomean(ps_ratios),
                 "-", geomean(lam_ours), geomean(lam_ps)])
    rows.append(["geo cert/OPT unit", geomean(cert_ours), geomean(cert_ps),
                 "-", "-", "-"])
    emit(
        "E10",
        "Ours (4+ε / 23+ε) vs Panconesi–Sozio (20+ε / 55+ε), shared workloads",
        ["case", "ours profit", "PS profit", "OPT", "λ ours", "λ PS"],
        rows,
        notes=(
            "Paper's improvement is the worst-case bound (5× on unit lines) "
            "via slackness λ=1-ε vs 1/(5+ε).  Measured λ and the dual "
            "certificate tightness reflect exactly that mechanism."
        ),
    )
    return {
        "ours": ours_ratios, "ps": ps_ratios,
        "lam_ours": lam_ours, "lam_ps": lam_ps,
        "cert_ours": cert_ours, "cert_ps": cert_ps,
        "arb_ours": arb_ours, "arb_ps": arb_ps,
    }


def test_ps_comparison(benchmark):
    res = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Both honour their own bounds.
    assert all(r <= 4 / (1 - EPS) + 1e-6 for r in res["ours"])
    assert all(r <= 4 * (5 + EPS) + 1e-6 for r in res["ps"])
    assert all(r <= 23 / (1 - EPS) + 1e-6 for r in res["arb_ours"])
    # The mechanism of the 5× improvement: realized slackness.
    assert min(res["lam_ours"]) >= 1 - EPS - 1e-9
    # PS retires demands at 1/(5+ε): its λ certificate is ~5× looser, so
    # its provable OPT window (cert/OPT) is materially wider than ours.
    assert geomean(res["cert_ours"]) < geomean(res["cert_ps"])
