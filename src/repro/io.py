"""JSON serialization for problems, solutions and event traces.

Lets workloads be pinned to disk (regression corpora, cross-machine
benchmark runs), solutions be archived next to the dual certificates
that justify them, and online event traces be replayed bit-identically
on other machines.  The formats are stable, versioned, human-readable
JSON documents; round-trips are exact (vertex ids, profits, heights,
access sets, selected instances, event times).
"""

from __future__ import annotations

import json
from typing import Any

from .core.demand import Demand, LineDemandInstance, TreeDemandInstance, WindowDemand
from .core.instance import LineProblem, TreeProblem
from .core.solution import Solution
from .network.line import LineNetwork
from .network.tree import TreeNetwork

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "save_problem",
    "load_problem",
    "save_solution",
    "load_solution",
    "save_trace",
    "load_trace",
]

FORMAT_VERSION = 1

#: Version of the event-trace document (independent of the problem format).
TRACE_FORMAT_VERSION = 1


def problem_to_dict(problem) -> dict:
    """Serialize a :class:`TreeProblem` or :class:`LineProblem`."""
    if isinstance(problem, TreeProblem):
        return {
            "format": FORMAT_VERSION,
            "kind": "tree",
            "n": problem.n,
            "networks": [sorted(net.edges) for net in problem.networks],
            "demands": [
                {"u": a.u, "v": a.v, "profit": a.profit, "height": a.height}
                for a in problem.demands
            ],
            "access": [sorted(acc) for acc in problem.access],
        }
    if isinstance(problem, LineProblem):
        return {
            "format": FORMAT_VERSION,
            "kind": "line",
            "n_slots": problem.n_slots,
            "num_resources": problem.num_networks,
            "demands": [
                {
                    "release": a.release,
                    "deadline": a.deadline,
                    "proc_time": a.proc_time,
                    "profit": a.profit,
                    "height": a.height,
                }
                for a in problem.demands
            ],
            "access": [sorted(acc) for acc in problem.access],
        }
    raise TypeError(f"cannot serialize {type(problem).__name__}")


def problem_from_dict(doc: dict):
    """Inverse of :func:`problem_to_dict`."""
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version!r}")
    kind = doc.get("kind")
    access = [frozenset(acc) for acc in doc["access"]]
    if kind == "tree":
        networks = [
            TreeNetwork(doc["n"], [tuple(e) for e in edges], network_id=q)
            for q, edges in enumerate(doc["networks"])
        ]
        demands = [
            Demand(i, d["u"], d["v"], d["profit"], d.get("height", 1.0))
            for i, d in enumerate(doc["demands"])
        ]
        return TreeProblem(n=doc["n"], networks=networks, demands=demands,
                           access=access)
    if kind == "line":
        resources = [
            LineNetwork(doc["n_slots"], network_id=q)
            for q in range(doc["num_resources"])
        ]
        demands = [
            WindowDemand(i, d["release"], d["deadline"], d["proc_time"],
                         d["profit"], d.get("height", 1.0))
            for i, d in enumerate(doc["demands"])
        ]
        return LineProblem(n_slots=doc["n_slots"], resources=resources,
                           demands=demands, access=access)
    raise ValueError(f"unknown problem kind {kind!r}")


def _instance_to_dict(inst) -> dict:
    if isinstance(inst, TreeDemandInstance):
        return {
            "kind": "tree",
            "demand_id": inst.demand_id,
            "network_id": inst.network_id,
            "u": inst.u,
            "v": inst.v,
        }
    if isinstance(inst, LineDemandInstance):
        return {
            "kind": "line",
            "demand_id": inst.demand_id,
            "network_id": inst.network_id,
            "start": inst.start,
            "end": inst.end,
        }
    raise TypeError(f"cannot serialize instance {type(inst).__name__}")


def solution_to_dict(solution: Solution) -> dict:
    """Serialize a solution: selections plus (JSON-safe) stats."""
    stats: dict[str, Any] = {}
    for k, v in solution.stats.items():
        try:
            json.dumps(v)
        except TypeError:
            v = repr(v)
        stats[k] = v
    return {
        "format": FORMAT_VERSION,
        "profit": solution.profit,
        "selected": [_instance_to_dict(d) for d in solution.selected],
        "stats": stats,
    }


def solution_from_dict(doc: dict, problem) -> Solution:
    """Rehydrate a solution against its problem.

    Selections are re-bound to the problem's own instance objects (so
    routes come from the problem, never from the file) and re-verified
    implicitly by any later ``verify_*_solution`` call.
    """
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {doc.get('format')!r}")
    lookup: dict[tuple, Any] = {}
    for inst in problem.instances():
        if isinstance(inst, TreeDemandInstance):
            lookup[(inst.demand_id, inst.network_id)] = inst
        else:
            lookup[(inst.demand_id, inst.network_id, inst.start, inst.end)] = inst
    selected = []
    for rec in doc["selected"]:
        if rec["kind"] == "tree":
            key = (rec["demand_id"], rec["network_id"])
        else:
            key = (rec["demand_id"], rec["network_id"], rec["start"], rec["end"])
        if key not in lookup:
            raise ValueError(f"selection {rec} does not exist in the problem")
        selected.append(lookup[key])
    return Solution(selected=selected, stats=dict(doc.get("stats", {})))


def trace_to_dict(trace) -> dict:
    """Serialize an :class:`~repro.online.events.EventTrace`.

    The embedded problem uses the problem format (version
    :data:`FORMAT_VERSION`); the trace envelope carries its own
    :data:`TRACE_FORMAT_VERSION` so the two can evolve independently.
    """
    from .online.events import Arrival, Departure, Tick

    events = []
    for ev in trace.events:
        if isinstance(ev, Arrival):
            events.append({"type": "arrival", "time": ev.time,
                           "demand": ev.demand_id})
        elif isinstance(ev, Departure):
            events.append({"type": "departure", "time": ev.time,
                           "demand": ev.demand_id})
        elif isinstance(ev, Tick):
            events.append({"type": "tick", "time": ev.time})
        else:
            raise TypeError(f"cannot serialize event {type(ev).__name__}")
    return {
        "format": TRACE_FORMAT_VERSION,
        "kind": "trace",
        "problem": problem_to_dict(trace.problem),
        "events": events,
        "meta": dict(trace.meta),
    }


def trace_from_dict(doc: dict):
    """Inverse of :func:`trace_to_dict` (re-validates the event stream)."""
    from .online.events import Arrival, Departure, EventTrace, Tick

    version = doc.get("format")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    if doc.get("kind") != "trace":
        raise ValueError(f"not a trace document: kind={doc.get('kind')!r}")
    problem = problem_from_dict(doc["problem"])
    events = []
    for rec in doc["events"]:
        etype = rec.get("type")
        if etype == "arrival":
            events.append(Arrival(float(rec["time"]), int(rec["demand"])))
        elif etype == "departure":
            events.append(Departure(float(rec["time"]), int(rec["demand"])))
        elif etype == "tick":
            events.append(Tick(float(rec["time"])))
        else:
            raise ValueError(f"unknown event type {etype!r}")
    return EventTrace(problem=problem, events=events,
                      meta=dict(doc.get("meta", {})))


def save_problem(problem, path: str) -> None:
    """Write a problem as JSON."""
    with open(path, "w") as fh:
        json.dump(problem_to_dict(problem), fh, indent=1)


def load_problem(path: str):
    """Read a problem written by :func:`save_problem`."""
    with open(path) as fh:
        return problem_from_dict(json.load(fh))


def save_solution(solution: Solution, path: str) -> None:
    """Write a solution as JSON."""
    with open(path, "w") as fh:
        json.dump(solution_to_dict(solution), fh, indent=1)


def load_solution(path: str, problem) -> Solution:
    """Read a solution written by :func:`save_solution`."""
    with open(path) as fh:
        return solution_from_dict(json.load(fh), problem)


def save_trace(trace, path: str) -> None:
    """Write an event trace as JSON."""
    with open(path, "w") as fh:
        json.dump(trace_to_dict(trace), fh, indent=1)


def load_trace(path: str):
    """Read a trace written by :func:`save_trace`."""
    with open(path) as fh:
        return trace_from_dict(json.load(fh))
