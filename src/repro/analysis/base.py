"""Rule registry, fixtures, and the project context rules run against.

Every rule is a subclass of :class:`Rule` registered with
:func:`register`.  File-scope rules see one parsed module at a time;
project-scope rules (cross-file contracts like protocol drift) see the
whole :class:`ProjectContext` once.

Each rule carries :class:`Fixture` snippets — a minimal *bad* example
that must trip the rule and a *good* counterpart that must not.  The
same fixtures back ``repro lint --explain RULE`` and the positive /
negative cases in ``tests/test_analysis.py``, so the documentation can
never drift from what the rule actually flags.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Fixture", "ProjectContext", "Rule", "RULES", "get_rule",
           "iter_rules", "register"]


@dataclass(frozen=True)
class Fixture:
    """A bad/good snippet pair demonstrating one rule.

    ``bad`` and ``good`` are either one source string (placed at the
    rule's ``default_path`` in a synthetic project) or a mapping of
    relative path -> content for cross-file rules.
    """

    bad: object
    good: object
    note: str = ""


@dataclass
class ParsedFile:
    """One linted module: path, AST, raw source."""

    path: Path
    tree: ast.Module
    source: str


@dataclass
class ProjectContext:
    """Everything a project-scope rule may inspect.

    ``files`` maps each linted path to its parse; ``texts`` carries
    non-Python documents (README.md in fixtures).  ``read_text`` checks
    ``texts`` before the filesystem so synthetic fixture projects work
    without touching disk.
    """

    root: Path
    files: dict = field(default_factory=dict)
    texts: dict = field(default_factory=dict)

    def read_text(self, path: Path):
        key = str(path)
        if key in self.texts:
            return self.texts[key]
        rel = None
        try:
            rel = str(path.relative_to(self.root))
        except ValueError:
            pass
        if rel is not None and rel in self.texts:
            return self.texts[rel]
        try:
            return path.read_text()
        except OSError:
            return None

    def find(self, suffix: str):
        """The parsed files whose path ends with ``suffix``."""
        return [pf for path, pf in sorted(self.files.items())
                if str(path).endswith(suffix)]


class Rule:
    """Base class: subclass, set the metadata, implement one check."""

    id: str = ""
    name: str = ""
    rationale: str = ""
    scope: str = "file"  # "file" | "project"
    #: Where a bare-string fixture is placed in the synthetic project.
    default_path: str = "module.py"
    fixtures: list = []

    def check_file(self, parsed: ParsedFile):
        """Yield findings for one module (file-scope rules)."""
        return ()

    def check_project(self, ctx: ProjectContext):
        """Yield findings for the whole tree (project-scope rules)."""
        return ()


RULES: dict = {}


def register(cls):
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def iter_rules():
    """Registered rules in id order."""
    for rule_id in sorted(RULES):
        yield RULES[rule_id]


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def in_packages(path: Path, names) -> bool:
    """True when any path component is one of ``names``."""
    parts = set(Path(path).parts)
    return bool(parts & set(names))


def call_name(node: ast.expr):
    """Dotted name of a call target: ``math.fsum(...)`` -> "math.fsum"."""
    if isinstance(node, ast.Call):
        node = node.func
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def const_str(node) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
