"""E1 (Figure 1): line-network feasibility semantics.

The paper's Figure 1 shows three demands on one unit-bandwidth resource
with heights 0.7 (A), 0.5 (B), 0.4 (C): {A, C} and {B, C} can be
scheduled, {A, B} cannot.  We regenerate the figure's feasibility matrix
and confirm the exact optimum picks a feasible pair.
"""

from __future__ import annotations

import itertools

from repro import LineNetwork, LineProblem, Solution, WindowDemand, solve_optimal
from repro.core.solution import FeasibilityError, verify_line_solution

from common import emit


def build_fig1() -> LineProblem:
    res = LineNetwork(10, network_id=0)
    demands = [
        WindowDemand(0, release=0, deadline=4, proc_time=5, profit=1.0, height=0.7),
        WindowDemand(1, release=3, deadline=8, proc_time=6, profit=1.0, height=0.5),
        WindowDemand(2, release=6, deadline=9, proc_time=4, profit=1.0, height=0.4),
    ]
    return LineProblem(n_slots=10, resources=[res], demands=demands)


def run_experiment():
    p = build_fig1()
    insts = {d.demand_id: d for d in p.instances()}
    names = {0: "A", 1: "B", 2: "C"}
    rows = []
    matrix = {}
    for combo in itertools.combinations(range(3), 2):
        sol = Solution(selected=[insts[i] for i in combo])
        try:
            verify_line_solution(p, sol, unit_height=False)
            ok = True
        except FeasibilityError:
            ok = False
        label = "{" + ", ".join(names[i] for i in combo) + "}"
        rows.append([label, "feasible" if ok else "infeasible"])
        matrix[combo] = ok
    opt = solve_optimal(p)
    rows.append(["OPT profit", f"{opt.profit:.1f}"])
    emit(
        "E01",
        "Figure 1 feasibility semantics (heights A=.7, B=.5, C=.4)",
        ["demand set", "status"],
        rows,
        notes="Paper: {A,C} and {B,C} feasible, {A,B} not.",
    )
    return matrix, opt


def test_fig1_semantics(benchmark):
    matrix, opt = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert matrix[(0, 2)] is True    # {A, C}
    assert matrix[(1, 2)] is True    # {B, C}
    assert matrix[(0, 1)] is False   # {A, B}
    assert opt.profit == 2.0         # best feasible pair
