"""E16 (abstract / IPDPS title): the capacitated scenario.

Extra experiment beyond the body of the paper: uniform edge capacities
``c`` handled by the height-normalization reduction (the abstract's
claim).  We sweep ``c`` and regenerate: (i) the reduction is lossless at
the optimum (normalized MILP == capacitated MILP); (ii) the (80+ε)/(23+ε)
bounds carry over to the lifted solutions; (iii) raising capacity
monotonically increases both OPT and the algorithm's profit.
"""

from __future__ import annotations

from repro import random_tree_problem
from repro.capacitated import (
    normalize_uniform_capacity,
    solve_optimal_capacitated,
    solve_tree_capacitated,
)
from repro.algorithms.exact import solve_optimal

from common import emit, geomean

EPS = 0.1
CAPACITIES = [1.0, 2.0, 4.0]


def run_experiment():
    rows = []
    ratios = []
    monotone = []
    for seed in range(3):
        p = random_tree_problem(n=16, m=14, r=2, seed=seed,
                                height_regime="mixed", hmin=0.1)
        prev_opt = 0.0
        prev_alg = 0.0
        for cap in CAPACITIES:
            sol = solve_tree_capacitated(p, cap, epsilon=EPS, seed=seed)
            opt = solve_optimal_capacitated(p, cap)
            reduced_opt = solve_optimal(normalize_uniform_capacity(p, cap))
            ratio = opt.profit / max(sol.profit, 1e-12)
            ratios.append(ratio)
            lossless = abs(opt.profit - reduced_opt.profit) <= 1e-6 * max(
                1.0, opt.profit
            )
            monotone.append((opt.profit >= prev_opt - 1e-9, cap))
            prev_opt, prev_alg = opt.profit, sol.profit
            rows.append([f"seed={seed} c={cap:g}", f"{sol.profit:.1f}",
                         f"{opt.profit:.1f}", f"{ratio:.3f}",
                         "yes" if lossless else "NO"])
    rows.append(["geomean ratio", "-", "-", geomean(ratios), "-"])
    emit(
        "E16",
        "Capacitated scenario: uniform capacity via height normalization",
        ["case", "ALG profit", "OPT(c)", "OPT/ALG", "reduction lossless"],
        rows,
        notes=(
            "Abstract: the algorithms 'can also handle the capacitated "
            "scenario'; footnote 1 restricts edge capacities to uniform.  "
            "Dividing heights by c reduces to the unit model losslessly, "
            "so Theorem 6.3's bound applies at every c."
        ),
    )
    return ratios, monotone


def test_capacitated(benchmark):
    ratios, monotone = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert all(r <= 80 / (1 - EPS) + 1e-6 for r in ratios)
    assert all(ok for ok, _cap in monotone)
