"""Fork safety: worker functions must not mutate module-level state.

The sharded drivers fan work out over ``multiprocessing`` fork
workers.  A forked child inherits module globals copy-on-write, so a
worker that *mutates* one is writing to a private copy the parent
never sees — code that "works" inline (``processes <= 1``) and
silently drops state when forked.  The inline/forked byte-identity
property the streaming driver guarantees makes this a correctness
contract, not a style preference.

The rule finds worker functions statically — any function passed as a
``Process(target=...)`` keyword or as the callable of ``pool.map`` /
``imap`` / ``apply_async``, plus any module-level function whose name
ends in ``_worker`` — and flags ``global`` declarations and mutations
(subscript/attribute writes, mutating method calls) of names bound to
mutable containers at module level.
"""

from __future__ import annotations

import ast

from ..base import Fixture, ParsedFile, Rule, register
from ..findings import Finding

__all__ = ["ForkSafetyRule"]

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque",
                  "OrderedDict", "Counter", "bytearray"}
_MUTATING_METHODS = {"append", "extend", "update", "add", "pop", "popitem",
                     "setdefault", "clear", "remove", "discard", "insert",
                     "appendleft", "sort"}
_POOL_METHODS = {"map", "imap", "imap_unordered", "apply", "apply_async",
                 "map_async", "starmap"}


def _module_mutables(tree: ast.Module):
    """Module-level names bound to mutable containers."""
    names = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_CALLS):
            mutable = True
        if not mutable:
            continue
        for t in targets:
            if isinstance(t, ast.Name) and t.id != "__all__":
                names.add(t.id)
    return names


def _worker_names(tree: ast.Module):
    """Functions handed to Process(target=...) / pool.map / *_worker."""
    workers = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and \
                node.name.endswith("_worker"):
            workers.add(node.name)
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if attr == "Process":
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    workers.add(kw.value.id)
        elif attr in _POOL_METHODS and node.args and \
                isinstance(node.args[0], ast.Name):
            workers.add(node.args[0].id)
    return workers


@register
class ForkSafetyRule(Rule):
    id = "FORK001"
    name = "fork-unsafe-module-state"
    rationale = (
        "Fork workers inherit module globals copy-on-write: a worker "
        "mutating one writes to a private copy the parent never sees, "
        "so the code behaves differently inline versus forked — and "
        "the streaming driver's inline/forked byte-identity guarantee "
        "breaks.  Workers communicate through their arguments and the "
        "result queue, never through module state."
    )
    scope = "file"
    default_path = "sharding/streaming.py"
    fixtures = [
        Fixture(
            bad=(
                "_RESULTS = {}\n"
                "def _stream_worker(s, events, queue):\n"
                "    _RESULTS[s] = len(events)\n"
                "    queue.put((s, len(events)))\n"
            ),
            good=(
                "def _stream_worker(s, events, queue):\n"
                "    queue.put((s, len(events)))\n"
            ),
            note="the parent's _RESULTS never sees the child's write; "
                 "everything crosses the queue",
        ),
        Fixture(
            bad=(
                "_SEEN = []\n"
                "def _stream_worker(s, events, queue):\n"
                "    global _SEEN\n"
                "    _SEEN = list(events)\n"
                "    queue.put(s)\n"
            ),
            good=(
                "def _stream_worker(s, events, queue):\n"
                "    seen = list(events)\n"
                "    queue.put((s, seen))\n"
            ),
            note="global rebinding in a forked child is equally invisible "
                 "to the parent",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        path = str(parsed.path)
        if not (path.endswith("streaming.py") or path.endswith("driver.py")):
            return
        mutables = _module_mutables(parsed.tree)
        workers = _worker_names(parsed.tree)
        if not workers:
            return
        for fn in parsed.tree.body:
            if not isinstance(fn, ast.FunctionDef) or fn.name not in workers:
                continue
            local = {a.arg for a in (fn.args.posonlyargs + fn.args.args
                                     + fn.args.kwonlyargs)}
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    yield Finding(
                        path=path, line=node.lineno, col=node.col_offset,
                        rule=self.id,
                        message=(f"worker {fn.name} declares global "
                                 f"{', '.join(node.names)}; a forked "
                                 "child's rebinding never reaches the "
                                 "parent"),
                    )
                    continue
                target = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        if isinstance(t, ast.Subscript) and \
                                isinstance(t.value, ast.Name):
                            target = t.value.id
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr in _MUTATING_METHODS
                      and isinstance(node.func.value, ast.Name)):
                    target = node.func.value.id
                if target is not None and target in mutables \
                        and target not in local:
                    yield Finding(
                        path=path, line=node.lineno, col=node.col_offset,
                        rule=self.id,
                        message=(f"worker {fn.name} mutates module-level "
                                 f"{target!r}; forked children write a "
                                 "private copy-on-write page the parent "
                                 "never sees"),
                    )
