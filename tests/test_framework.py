"""Tests for the two-phase engine: schedule math, λ-satisfaction,
stack/prune semantics, and the Lemma 3.1 / 6.1 certificates."""

from __future__ import annotations

import math

import pytest

from repro import (
    EngineConfig,
    TwoPhaseEngine,
    compile_line,
    compile_tree,
    random_line_problem,
    random_tree_problem,
)
from repro.algorithms.framework import narrow_xi, stage_count, unit_xi


class TestScheduleMath:
    def test_unit_xi_paper_constants(self):
        assert unit_xi(6) == pytest.approx(14 / 15)  # trees
        assert unit_xi(3) == pytest.approx(8 / 9)    # lines

    def test_narrow_xi_paper_constants(self):
        assert narrow_xi(6, 0.5) == pytest.approx(73 / 73.5)
        assert narrow_xi(3, 0.25) == pytest.approx(19 / 19.25)

    def test_narrow_xi_rejects_bad_hmin(self):
        with pytest.raises(ValueError):
            narrow_xi(6, 0.0)
        with pytest.raises(ValueError):
            narrow_xi(6, 0.7)

    def test_stage_count(self):
        xi = 14 / 15
        b = stage_count(xi, 0.1)
        assert xi**b <= 0.1 < xi ** (b - 1)

    def test_stage_count_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            stage_count(0.9, 0.0)
        with pytest.raises(ValueError):
            stage_count(1.5, 0.1)


class TestEngineInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_lambda_satisfaction_unit(self, seed):
        """After phase 1 every dual constraint is (1-ε)-satisfied —
        the λ = 1-ε claim at the heart of the improvement over PS."""
        p = random_tree_problem(n=20, m=15, r=2, seed=seed)
        inp = compile_tree(p)
        eps = 0.15
        eng = TwoPhaseEngine(inp, EngineConfig(rule="unit", epsilon=eps, seed=seed))
        _, stats = eng.run()
        assert stats.realized_lambda >= 1 - eps - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_lambda_satisfaction_narrow(self, seed):
        p = random_tree_problem(n=16, m=12, r=1, seed=seed,
                                height_regime="narrow", hmin=0.2)
        inp = compile_tree(p)
        eps = 0.2
        eng = TwoPhaseEngine(
            inp,
            EngineConfig(rule="narrow", epsilon=eps, hmin=0.2, seed=seed,
                         capacity_phase2=True),
        )
        _, stats = eng.run()
        assert stats.realized_lambda >= 1 - eps - 1e-9

    def test_single_stage_lambda(self):
        """PS-style single stage: λ lands at (at least) the fixed target."""
        p = random_line_problem(n_slots=30, m=12, r=1, seed=1, max_len=8)
        inp = compile_line(p)
        target = 1 / 5.1
        eng = TwoPhaseEngine(
            inp, EngineConfig(rule="unit", single_stage_target=target, seed=1)
        )
        _, stats = eng.run()
        assert stats.realized_lambda >= target - 1e-9

    def test_solution_is_independent_set(self):
        p = random_tree_problem(n=24, m=20, r=2, seed=5)
        inp = compile_tree(p)
        eng = TwoPhaseEngine(inp, EngineConfig(seed=2))
        selected, _ = eng.run()
        used_edges: set = set()
        used_demands: set = set()
        for d in selected:
            assert d.demand_id not in used_demands
            used_demands.add(d.demand_id)
            edges = inp.edges_of[d.instance_id]
            assert not (edges & used_edges)
            used_edges |= edges

    def test_solution_is_maximal(self):
        """Phase 2 output cannot be extended by any raised instance —
        every raised instance is selected or blocked (the succ(d)∩S ≠ ∅
        step in Lemma 3.1's proof)."""
        p = random_tree_problem(n=20, m=16, r=1, seed=6)
        inp = compile_tree(p)
        eng = TwoPhaseEngine(inp, EngineConfig(seed=3))
        selected, _ = eng.run()
        used_edges: set = set()
        used_demands = {d.demand_id for d in selected}
        for d in selected:
            used_edges |= inp.edges_of[d.instance_id]
        raised = {iid for iid, *_ in eng.duals.raise_log}
        for iid in raised:
            inst = inp.instances[iid]
            if inst in selected:
                continue
            blocked = inst.demand_id in used_demands or (
                inp.edges_of[iid] & used_edges
            )
            assert blocked, f"raised instance {iid} could have been added"

    def test_dual_certificate_dominates_solution(self):
        """opt_upper_bound = dual objective / λ must upper-bound any
        feasible solution's profit, in particular the engine's own."""
        p = random_tree_problem(n=18, m=14, r=2, seed=7)
        inp = compile_tree(p)
        eng = TwoPhaseEngine(inp, EngineConfig(seed=4))
        selected, stats = eng.run()
        profit = sum(d.profit for d in selected)
        assert stats.opt_upper_bound >= profit - 1e-6

    def test_lemma31_certificate(self):
        """profit ≥ λ/(∆+1) · (dual objective / λ) = objective/(∆+1):
        the engine's output satisfies its own Lemma 3.1 chain."""
        p = random_tree_problem(n=22, m=18, r=2, seed=8)
        inp = compile_tree(p)
        eng = TwoPhaseEngine(inp, EngineConfig(epsilon=0.1, seed=5))
        selected, stats = eng.run()
        profit = sum(d.profit for d in selected)
        assert profit >= stats.dual_objective / (stats.delta + 1) - 1e-9

    def test_round_ledger_consistency(self):
        p = random_tree_problem(n=16, m=12, r=1, seed=9)
        inp = compile_tree(p)
        eng = TwoPhaseEngine(inp, EngineConfig(seed=6))
        _, stats = eng.run()
        assert stats.phase1_rounds == stats.mis_rounds + stats.steps
        assert stats.phase2_rounds == stats.steps
        assert stats.total_rounds == stats.phase1_rounds + stats.phase2_rounds
        assert sum(stats.steps_per_stage) == stats.steps

    def test_kill_chain_bound_lemma51(self):
        """Steps per stage ≤ 1 + log₂(pmax/pmin) · slack constant —
        Lemma 5.1's geometric kill-chain argument, measured."""
        p = random_tree_problem(n=24, m=30, r=2, seed=10, profit_ratio=64.0)
        inp = compile_tree(p)
        eng = TwoPhaseEngine(inp, EngineConfig(epsilon=0.1, seed=7))
        _, stats = eng.run()
        pmin, pmax = p.profit_range()
        bound = 1 + math.log2(pmax / pmin)
        assert stats.max_steps_in_a_stage <= bound + 1e-9

    def test_greedy_and_luby_both_feasible(self):
        p = random_tree_problem(n=18, m=14, r=2, seed=11)
        inp = compile_tree(p)
        for mis in ("greedy", "luby"):
            eng = TwoPhaseEngine(inp, EngineConfig(mis=mis, seed=8))
            selected, _ = eng.run()
            assert len({d.demand_id for d in selected}) == len(selected)

    def test_bad_input_rejected(self):
        p = random_tree_problem(n=10, m=5, r=1, seed=12)
        inp = compile_tree(p)
        from repro import EngineInput

        with pytest.raises(ValueError, match="partition"):
            EngineInput(
                instances=inp.instances,
                edges_of=inp.edges_of,
                critical=inp.critical,
                groups=inp.groups[:-1] if len(inp.groups) > 1 else [],
                delta=6,
            )
