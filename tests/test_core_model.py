"""Tests for the core problem model: demands, problems, solutions,
feasibility verification."""

from __future__ import annotations

import pytest

from repro import (
    Demand,
    FeasibilityError,
    LineNetwork,
    LineProblem,
    Solution,
    TreeNetwork,
    TreeProblem,
    WindowDemand,
    random_line_problem,
    random_tree_problem,
    verify_line_solution,
    verify_tree_solution,
)
from repro.core.demand import LineDemandInstance, TreeDemandInstance


class TestDemandValidation:
    def test_demand_ok(self):
        d = Demand(0, 1, 2, profit=3.0, height=0.5)
        assert d.narrow

    def test_demand_rejects_equal_endpoints(self):
        with pytest.raises(ValueError, match="endpoints"):
            Demand(0, 1, 1, profit=1.0)

    def test_demand_rejects_nonpositive_profit(self):
        with pytest.raises(ValueError, match="profit"):
            Demand(0, 0, 1, profit=0.0)

    @pytest.mark.parametrize("h", [0.0, -0.3, 1.2])
    def test_demand_rejects_bad_height(self, h):
        with pytest.raises(ValueError, match="height"):
            Demand(0, 0, 1, profit=1.0, height=h)

    def test_wide_narrow_boundary(self):
        assert Demand(0, 0, 1, profit=1.0, height=0.5).narrow
        assert not Demand(0, 0, 1, profit=1.0, height=0.500001).narrow

    def test_window_demand_placements(self):
        w = WindowDemand(0, release=2, deadline=7, proc_time=3, profit=1.0)
        assert w.placements() == [(2, 4), (3, 5), (4, 6), (5, 7)]

    def test_window_demand_pinned(self):
        w = WindowDemand(0, release=4, deadline=6, proc_time=3, profit=1.0)
        assert w.placements() == [(4, 6)]

    def test_window_too_small(self):
        with pytest.raises(ValueError, match="shorter than proc_time"):
            WindowDemand(0, release=0, deadline=1, proc_time=3, profit=1.0)

    def test_window_release_after_deadline(self):
        with pytest.raises(ValueError, match="release"):
            WindowDemand(0, release=5, deadline=1, proc_time=1, profit=1.0)


class TestTreeProblem:
    def test_instance_expansion_counts(self):
        p = random_tree_problem(n=12, m=6, r=3, seed=0)
        assert len(p.instances()) == sum(len(a) for a in p.access)

    def test_instance_paths_cached_correctly(self):
        p = random_tree_problem(n=15, m=8, r=2, seed=1)
        for d in p.instances():
            net = p.networks[d.network_id]
            assert list(d.path_edges) == net.path_edges(d.u, d.v)

    def test_network_id_mismatch_rejected(self):
        net = TreeNetwork(3, [(0, 1), (1, 2)], network_id=5)
        with pytest.raises(ValueError, match="network_id"):
            TreeProblem(n=3, networks=[net], demands=[Demand(0, 0, 2, 1.0)])

    def test_demand_id_mismatch_rejected(self):
        net = TreeNetwork(3, [(0, 1), (1, 2)], network_id=0)
        with pytest.raises(ValueError, match="demand_id"):
            TreeProblem(n=3, networks=[net], demands=[Demand(4, 0, 2, 1.0)])

    def test_default_access_is_everything(self):
        net = TreeNetwork(3, [(0, 1), (1, 2)], network_id=0)
        p = TreeProblem(n=3, networks=[net], demands=[Demand(0, 0, 2, 1.0)])
        assert p.access[0] == frozenset({0})

    def test_empty_access_rejected(self):
        net = TreeNetwork(3, [(0, 1), (1, 2)], network_id=0)
        with pytest.raises(ValueError, match="no network"):
            TreeProblem(n=3, networks=[net], demands=[Demand(0, 0, 2, 1.0)],
                        access=[set()])

    def test_profit_range(self):
        p = random_tree_problem(n=10, m=9, seed=2, profit_ratio=50)
        pmin, pmax = p.profit_range()
        assert 1.0 <= pmin <= pmax <= 50.0

    def test_communication_graph_connects_sharers(self):
        p = random_tree_problem(n=10, m=6, r=2, seed=3, access_prob=0.6)
        g = p.communication_graph()
        for i in range(6):
            for j in range(i + 1, 6):
                if p.access[i] & p.access[j]:
                    assert g.has_edge(i, j)


class TestLineProblem:
    def test_window_expansion(self):
        res = LineNetwork(10, network_id=0)
        demands = [WindowDemand(0, release=0, deadline=5, proc_time=3, profit=1.0)]
        p = LineProblem(n_slots=10, resources=[res], demands=demands)
        assert len(p.instances()) == 4  # starts 0..3

    def test_deadline_out_of_range(self):
        res = LineNetwork(5, network_id=0)
        with pytest.raises(ValueError, match="deadline"):
            LineProblem(
                n_slots=5,
                resources=[res],
                demands=[WindowDemand(0, release=0, deadline=7, proc_time=2,
                                      profit=1.0)],
            )

    def test_length_range(self):
        p = random_line_problem(n_slots=30, m=10, seed=4, min_len=2, max_len=9)
        lmin, lmax = p.length_range()
        assert 2 <= lmin <= lmax <= 9


class TestVerification:
    def test_accepts_feasible(self, fig2_problem):
        insts = fig2_problem.instances()
        sol = Solution(selected=[insts[0], insts[2]])  # heights .4 + .3
        verify_tree_solution(fig2_problem, sol)

    def test_rejects_overloaded_edge(self, fig2_problem):
        insts = fig2_problem.instances()
        sol = Solution(selected=[insts[0], insts[1]])  # .4 + .7 > 1
        with pytest.raises(FeasibilityError, match="carries height"):
            verify_tree_solution(fig2_problem, sol)

    def test_rejects_duplicate_demand(self):
        p = random_tree_problem(n=10, m=4, r=2, seed=5)
        insts = [d for d in p.instances() if d.demand_id == 0]
        assert len(insts) >= 2
        sol = Solution(selected=insts[:2])
        with pytest.raises(FeasibilityError, match="more than one"):
            verify_tree_solution(p, sol)

    def test_rejects_inaccessible_network(self):
        p = random_tree_problem(n=10, m=4, r=2, seed=6, access_prob=1.0)
        d = p.instances()[0]
        p.access[d.demand_id] = frozenset({1 - d.network_id})
        sol = Solution(selected=[d])
        with pytest.raises(FeasibilityError, match="inaccessible"):
            verify_tree_solution(p, sol)

    def test_rejects_tampered_route(self):
        p = random_tree_problem(n=10, m=4, r=1, seed=7)
        d = p.instances()[0]
        import dataclasses

        bad = dataclasses.replace(d, path_edges=tuple(d.path_edges[:-1]))
        with pytest.raises(FeasibilityError, match="route disagrees"):
            verify_tree_solution(p, Solution(selected=[bad]))

    def test_line_rejects_window_escape(self):
        res = LineNetwork(10, network_id=0)
        demands = [WindowDemand(0, release=2, deadline=6, proc_time=3, profit=1.0)]
        p = LineProblem(n_slots=10, resources=[res], demands=demands)
        bad = LineDemandInstance(0, 0, 0, start=5, end=7, profit=1.0)
        with pytest.raises(FeasibilityError, match="escapes"):
            verify_line_solution(p, Solution(selected=[bad]))

    def test_line_rejects_wrong_length(self):
        res = LineNetwork(10, network_id=0)
        demands = [WindowDemand(0, release=2, deadline=6, proc_time=3, profit=1.0)]
        p = LineProblem(n_slots=10, resources=[res], demands=demands)
        bad = LineDemandInstance(0, 0, 0, start=2, end=5, profit=1.0)
        with pytest.raises(FeasibilityError, match="needs 3"):
            verify_line_solution(p, Solution(selected=[bad]))

    def test_fig1_semantics(self, fig1_problem):
        """Figure 1: {A,C} and {B,C} feasible, {A,B} not."""
        insts = {d.demand_id: d for d in fig1_problem.instances()}
        verify_line_solution(fig1_problem, Solution(selected=[insts[0], insts[2]]))
        verify_line_solution(fig1_problem, Solution(selected=[insts[1], insts[2]]))
        with pytest.raises(FeasibilityError):
            verify_line_solution(fig1_problem, Solution(selected=[insts[0], insts[1]]))

    def test_fig2_semantics(self, fig2_problem):
        """Figure 2: all three demands share edge (4,5); unit case packs
        one; heights (.4, .7, .3) admit the first and third together."""
        insts = fig2_problem.instances()
        shared = set(insts[0].path_edges) & set(insts[1].path_edges) & set(
            insts[2].path_edges
        )
        assert shared  # the common edge exists
        with pytest.raises(FeasibilityError):
            verify_tree_solution(
                fig2_problem, Solution(selected=list(insts)), unit_height=False
            )

    def test_solution_helpers(self):
        p = random_tree_problem(n=10, m=5, r=2, seed=8)
        insts = p.instances()
        sol = Solution(selected=[insts[0]])
        assert sol.size == 1
        assert sol.profit == insts[0].profit
        assert sol.demand_ids() == {insts[0].demand_id}
        assert insts[0] in sol.by_network()[insts[0].network_id]
