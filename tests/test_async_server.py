"""Tests for the async multi-client front door and transport satellites.

The load-bearing guarantees:

* **Interleaving equivalence** — N concurrent pipelined client streams
  produce a journal whose serialized replay (same dispatch order, one
  client) yields byte-identical journal records and final metrics, for
  every registered policy: concurrency changes scheduling, never
  semantics;
* request ``id`` echo lets pipelined clients match responses out of
  order (success and error responses alike);
* the request-line byte cap answers oversized lines with a friendly
  ``{"ok": false}`` and keeps the connection usable;
* one server sustains 64 concurrent clients; ``max_clients`` beyond
  that rejects politely;
* graceful drain commits the group-commit window and notifies clients
  with final watermarks; the journal resumes cleanly;
* ``serve_socket`` accepts sequential reconnecting clients.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.io import event_to_dict, read_journal
from repro.online import generate_trace
from repro.online.metrics import TIMING_FIELDS
from repro.service import (
    AdmissionService,
    AsyncLineServer,
    serve_lines,
    serve_socket,
)

#: Per-policy constructor params (mirrors tests/test_service.py).
POLICY_PARAMS = {
    "greedy-threshold": {},
    "dual-gated": {},
    "batch-resolve": {"solver": "greedy", "resolve_every": 8},
    "preempt-density": {"factor": 1.2},
    "preempt-dual-gated": {"penalty": 0.1},
}


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        "tree", events=240, process="poisson", seed=17, departure_prob=0.35,
        workload={"n": 48, "boundary_fraction": 0.1, "parts": 2})


def _start(service, **kw):
    """Run an AsyncLineServer on a thread; return (server, thread, addr)."""
    box = {}
    ready = threading.Event()
    server = AsyncLineServer(
        service, announce=lambda a: (box.update(addr=a), ready.set()), **kw)
    thread = threading.Thread(
        target=lambda: box.update(rv=server.serve_forever()), daemon=True)
    thread.start()
    assert ready.wait(10), "server never announced"
    return server, thread, box


def _connect(addr):
    sock = socket.create_connection(addr, timeout=30)
    return sock, sock.makefile("rw", encoding="utf-8")


def _request(f, doc):
    f.write(json.dumps(doc) + "\n")
    f.flush()
    return json.loads(f.readline())


def _client_streams(trace, n):
    """Partition the trace into n streams, demand-ownership based, so
    every cross-stream interleaving is a valid event stream."""
    streams = [[] for _ in range(n)]
    for ev in trace.events:
        d = getattr(ev, "demand_id", None)
        streams[0 if d is None else d % n].append(ev)
    return streams


def _strip_timing(metrics: dict) -> dict:
    return {k: v for k, v in metrics.items() if k not in TIMING_FIELDS}


class TestInterleavedEquivalence:
    @pytest.mark.parametrize("policy", sorted(POLICY_PARAMS))
    def test_concurrent_equals_serialized_dispatch(self, trace, tmp_path,
                                                   policy):
        params = POLICY_PARAMS[policy]
        j_live = str(tmp_path / "live.journal")
        service = AdmissionService(trace, policy, params,
                                   journal_path=j_live, sync_window=16)
        server, thread, box = _start(service)
        addr = box["addr"]
        streams = _client_streams(trace, 4)

        def run_client(i):
            sock, f = _connect(addr)
            for j, ev in enumerate(streams[i]):
                f.write(json.dumps({"op": "submit",
                                    "event": event_to_dict(ev),
                                    "id": [i, j]}) + "\n")
            f.flush()
            for j in range(len(streams[i])):
                resp = json.loads(f.readline())
                assert resp["ok"], resp
                assert resp["id"] == [i, j]
            sock.close()

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not any(t.is_alive() for t in threads)

        sock, f = _connect(addr)
        close_resp = _request(f, {"op": "close"})
        assert close_resp["ok"], close_resp
        sock.close()
        thread.join(10)

        # Serialized dispatch of the journaled order must reproduce the
        # journal and the final metrics exactly.
        _header, events, _good = read_journal(j_live)
        assert len(events) == len(trace.events)
        j_serial = str(tmp_path / "serial.journal")
        service2 = AdmissionService(trace, policy, params,
                                    journal_path=j_serial, sync_window=16)
        for ev in events:
            service2.submit_event(ev)
        result2 = service2.close()

        with open(j_live, "rb") as fh:
            live_bytes = fh.read()
        with open(j_serial, "rb") as fh:
            serial_bytes = fh.read()
        assert live_bytes == serial_bytes
        assert (_strip_timing(close_resp["metrics"])
                == _strip_timing(result2.metrics.to_dict()))


class TestRequestIds:
    def test_id_echo_on_success_and_error(self, trace):
        service = AdmissionService(trace, "greedy-threshold")
        server, thread, box = _start(service)
        sock, f = _connect(box["addr"])
        ok = _request(f, {"op": "stats", "id": "s-1"})
        assert ok["ok"] and ok["id"] == "s-1"
        err = _request(f, {"op": "admit", "demand": 10 ** 9, "id": 7})
        assert not err["ok"] and err["id"] == 7
        no_id = _request(f, {"op": "stats"})
        assert "id" not in no_id
        _request(f, {"op": "close", "verify": False})
        sock.close()
        thread.join(10)

    def test_direct_handle_echoes_id(self, trace):
        service = AdmissionService(trace, "greedy-threshold")
        resp = service.handle({"op": "query", "demand": 0, "id": None})
        assert resp["ok"] and "id" in resp and resp["id"] is None
        bad = service.handle({"op": "nope", "id": 3})
        assert not bad["ok"] and bad["id"] == 3


class TestLineCap:
    def test_oversized_line_rejected_conn_survives(self, trace):
        service = AdmissionService(trace, "greedy-threshold")
        server, thread, box = _start(service, max_line_bytes=1024)
        sock, f = _connect(box["addr"])
        f.write("x" * 5000 + "\n")
        f.flush()
        resp = json.loads(f.readline())
        assert not resp["ok"] and "1024" in resp["error"]
        # The connection still serves normal requests afterwards.
        ok = _request(f, {"op": "stats"})
        assert ok["ok"]
        assert ok["stats"]["server"]["overlimit_rejects"] == 1
        _request(f, {"op": "close", "verify": False})
        sock.close()
        thread.join(10)

    def test_overflow_without_newline_then_recovery(self, trace):
        # The oversized line arrives in chunks with the newline last:
        # the server must flag overflow early, discard the rest, and
        # parse the next line normally.
        service = AdmissionService(trace, "greedy-threshold")
        server, thread, box = _start(service, max_line_bytes=1024)
        sock, f = _connect(box["addr"])
        for _ in range(8):
            sock.sendall(b"y" * 512)
        sock.sendall(b"\n")
        resp = json.loads(f.readline())
        assert not resp["ok"]
        ok = _request(f, {"op": "stats"})
        assert ok["ok"]
        _request(f, {"op": "close", "verify": False})
        sock.close()
        thread.join(10)

    def test_serve_lines_cap(self, trace):
        service = AdmissionService(trace, "greedy-threshold")
        out = []
        serve_lines(service, ["z" * 300 + "\n",
                              json.dumps({"op": "stats"}) + "\n"],
                    out.append, max_line_bytes=256)
        assert not out[0]["ok"] and "256" in out[0]["error"]
        assert out[1]["ok"]


class TestManyClients:
    def test_64_concurrent_clients(self, tmp_path):
        big = generate_trace(
            "tree", events=1280, process="poisson", seed=23,
            departure_prob=0.3,
            workload={"n": 256, "boundary_fraction": 0.05, "parts": 4})
        service = AdmissionService(
            big, "greedy-threshold",
            journal_path=str(tmp_path / "many.journal"), sync_window=64)
        server, thread, box = _start(service, max_clients=80)
        addr = box["addr"]
        streams = _client_streams(big, 64)
        failures = []

        def run_client(i):
            try:
                sock, f = _connect(addr)
                batch = [event_to_dict(ev) for ev in streams[i]]
                resp = _request(f, {"op": "feed", "events": batch, "id": i})
                assert resp["ok"] and resp["id"] == i, resp
                sock.close()
            except Exception as exc:  # noqa: BLE001 — collected below
                failures.append((i, repr(exc)))

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(64)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert not failures, failures[:3]
        sock, f = _connect(addr)
        stats = _request(f, {"op": "stats"})
        assert stats["stats"]["position"] == len(big.events)
        assert stats["stats"]["server"]["requests_total"] >= 64
        close = _request(f, {"op": "close"})
        assert close["ok"]
        sock.close()
        thread.join(10)

    def test_max_clients_rejection(self, trace):
        service = AdmissionService(trace, "greedy-threshold")
        server, thread, box = _start(service, max_clients=2)
        addr = box["addr"]
        keep = [_connect(addr) for _ in range(2)]
        for _sock, f in keep:  # both inside the cap: served normally
            assert _request(f, {"op": "stats"})["ok"]
        extra_sock, extra_f = _connect(addr)
        refusal = json.loads(extra_f.readline())
        assert not refusal["ok"] and "max-clients" in refusal["error"]
        assert extra_f.readline() == ""  # server closed it
        extra_sock.close()
        _request(keep[0][1], {"op": "close", "verify": False})
        for sock, _f in keep:
            sock.close()
        thread.join(10)


class TestGracefulDrain:
    def test_shutdown_commits_and_notifies(self, trace, tmp_path):
        path = str(tmp_path / "drain.journal")
        service = AdmissionService(trace, "greedy-threshold",
                                   journal_path=path, sync_window=100)
        server, thread, box = _start(service)
        sock, f = _connect(box["addr"])
        n_fed = 20
        batch = [event_to_dict(ev) for ev in trace.events[:n_fed]]
        resp = _request(f, {"op": "feed", "events": batch})
        assert resp["ok"]
        assert resp["seq"] > resp["commit_seq"]  # window still open
        server.request_shutdown()
        notice = json.loads(f.readline())
        assert notice["op"] == "shutdown" and notice["ok"]
        assert notice["commit_seq"] == notice["seq"] == n_fed
        sock.close()
        thread.join(10)
        assert box["rv"] is None  # no close request was served
        resumed = AdmissionService.resume(path)
        assert resumed.position == n_fed


class TestSequentialSocket:
    def test_reconnects_until_close(self, trace):
        service = AdmissionService(trace, "greedy-threshold")
        box = {}
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: box.update(rv=serve_socket(
                service, port=0,
                announce=lambda a: (box.update(addr=a), ready.set()))),
            daemon=True)
        thread.start()
        assert ready.wait(10)
        for i in range(3):  # one client at a time, reconnecting
            sock, f = _connect(box["addr"])
            resp = _request(f, {"op": "stats", "id": i})
            assert resp["ok"] and resp["id"] == i
            sock.close()
        sock, f = _connect(box["addr"])
        assert _request(f, {"op": "close", "verify": False})["ok"]
        sock.close()
        thread.join(10)
        assert box["rv"]["op"] == "close"

    def test_oversized_line_on_socket(self, trace):
        service = AdmissionService(trace, "greedy-threshold")
        box = {}
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: box.update(rv=serve_socket(
                service, port=0, max_line_bytes=1024,
                announce=lambda a: (box.update(addr=a), ready.set()))),
            daemon=True)
        thread.start()
        assert ready.wait(10)
        sock, f = _connect(box["addr"])
        f.write("w" * 4096 + "\n")
        f.flush()
        resp = json.loads(f.readline())
        assert not resp["ok"] and "1024" in resp["error"]
        assert _request(f, {"op": "stats"})["ok"]
        assert _request(f, {"op": "close", "verify": False})["ok"]
        sock.close()
        thread.join(10)
