"""The long-lived admission service layer.

:class:`AdmissionService` wraps an
:class:`~repro.session.AdmissionSession` behind a request/response API
(admit / release / tick / query / stats / snapshot / close), journals
every applied event to an append-only JSON-lines file, and
warm-restarts from that journal (``AdmissionService.resume``) with
state identical to the killed instance's.  The transport loops —
stdin/stdout and sequential TCP — live in :mod:`repro.service.server`;
the concurrent multi-client front door
(:class:`~repro.service.async_server.AsyncLineServer`) lives in
:mod:`repro.service.async_server`; the CLI front ends are ``repro
serve`` (``--async`` for concurrency) and ``repro resume``.
"""

from .async_server import AsyncLineServer, serve_async
from .server import serve_lines, serve_socket, serve_stdio
from .service import AdmissionService

__all__ = ["AdmissionService", "AsyncLineServer", "serve_async",
           "serve_lines", "serve_socket", "serve_stdio"]
