"""The replay driver: one pass over a trace through one policy.

:func:`replay` is now a thin consumer of the
:class:`~repro.session.AdmissionSession` kernel, which owns the event
loop, the ledger lifecycle, and the metrics accumulation — policies only
decide admissions and evictions.  Every event's *policy* work is timed
individually: the per-event latency percentiles in the metrics cover
arrivals, departures and ticks alike, so tick-triggered batch flushes
land in the tail the same way arrival-triggered ones do, and the
end-of-trace ``finish()`` flush — often the single most expensive
operation for batching policies — contributes one extra sample of its
own.  The ledger bookkeeping the kernel performs on a departure
(``ledger.release``) happens *outside* the timed window, so the
percentiles measure decision latency, not the kernel's own accounting.
The final admitted set is re-verified against the problem definition
from first principles, so a buggy policy cannot silently oversubscribe
an edge.

Admission decisions are deterministic given (trace, policy
configuration): the only nondeterminism in the result is wall-clock
timing.

:class:`ReplayResult`, :func:`assemble_result` and :func:`certificate_of`
live in :mod:`repro.session.kernel` and are re-exported here for the
existing import sites.
"""

from __future__ import annotations

from ..session.kernel import (
    AdmissionSession,
    ReplayResult,
    assemble_result,
    certificate_of,
)
from .events import EventTrace
from .policies import AdmissionPolicy

__all__ = ["ReplayResult", "assemble_result", "certificate_of", "replay"]


def replay(trace: EventTrace, policy: AdmissionPolicy, *,
           verify: bool = True, fastpath: bool = True) -> ReplayResult:
    """Stream ``trace`` through ``policy`` and measure the outcome.

    Parameters
    ----------
    trace:
        The event stream plus its frozen demand population.
    policy:
        An unbound :class:`~repro.online.policies.AdmissionPolicy`; the
        session binds it to a fresh
        :class:`~repro.online.state.CapacityLedger`, so one policy
        object can be reused across replays.
    verify:
        Re-check the final admitted set against the problem definition
        (cheap; disable only in throughput benchmarks).
    fastpath:
        Allow the session's columnar batch-decision fast path
        (:mod:`repro.online.fastpath`) when the policy advertises a
        batch kernel.  Decisions are byte-identical either way;
        ``False`` pins the scalar loop (the benchmark baseline).
    """
    session = AdmissionSession(trace.problem, policy,
                               trace_meta=trace.meta, fastpath=fastpath)
    session.feed_many(trace.events)
    return session.close(verify=verify)
