"""CI smoke: serve a trace, ``kill -9`` mid-stream, resume, diff metrics.

The end-to-end warm-restart story across real process boundaries, run
once per journal format (JSON-lines and binary):

1. generate + save a short trace, record the plain ``repro replay``
   metrics for it;
2. start ``repro serve --journal --format <fmt>`` as a subprocess, feed
   it the first half of the trace's events as stdin requests (batched
   ``feed`` ops, reading each response), then SIGKILL it — no shutdown
   hooks, exactly the failure the journal exists for;
3. ``repro compact`` the torn journal in a fresh process — recovery
   plus checkpointing folded into one file;
4. ``repro resume --journal`` in another fresh process: restore the
   checkpoint, finish the trace, write the final metrics;
5. diff the resumed metrics (and policy stats) against the plain
   replay, ignoring only wall-clock timing fields.

Exit code 0 iff the metrics match exactly for both formats.

Run from the repo root::

    PYTHONPATH=src python tests/smoke_service_restart.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile

POLICY = "dual-gated"
EVENTS = 300
KILL_AFTER = 140
FEED_BATCH = 20
SYNC_WINDOW = 8
#: 8 does not divide 140: the SIGKILL lands with 4 events accepted but
#: not yet committed, so the resume must recover to the last group
#: commit boundary — the crash the sync window trades durability for.
COMMITTED = KILL_AFTER - KILL_AFTER % SYNC_WINDOW


def run_format(fmt: str, env: dict, trace, trace_path: str,
               plain: dict, tmp: str) -> int:
    from repro.io import event_to_dict
    from repro.online import deterministic_metrics

    def deterministic(doc: dict) -> dict:
        doc = deterministic_metrics(doc)
        doc.pop("resumed_at", None)
        return doc

    journal = os.path.join(tmp, f"smoke-{fmt}.journal")
    resumed_path = os.path.join(tmp, f"resumed-{fmt}.json")

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--trace", trace_path,
         "--policy", POLICY, "--journal", journal, "--format", fmt,
         "--sync-window", str(SYNC_WINDOW)],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, env=env, text=True,
    )
    for i in range(0, KILL_AFTER, FEED_BATCH):
        batch = [event_to_dict(ev)
                 for ev in trace.events[i:i + FEED_BATCH]]
        server.stdin.write(json.dumps(
            {"op": "feed", "events": batch}) + "\n")
        server.stdin.flush()
        resp = json.loads(server.stdout.readline())
        if not resp.get("ok"):
            print(f"FAIL({fmt}): server refused a batch: {resp}")
            server.kill()
            return 1
    if resp.get("seq") != KILL_AFTER or resp.get("commit_seq") != COMMITTED:
        print(f"FAIL({fmt}): expected seq {KILL_AFTER} / commit_seq "
              f"{COMMITTED}, got {resp.get('seq')} / "
              f"{resp.get('commit_seq')}")
        server.kill()
        return 1
    server.send_signal(signal.SIGKILL)
    server.wait()
    print(f"[{fmt}] served {KILL_AFTER}/{len(trace.events)} events "
          f"in feed batches ({COMMITTED} committed), killed the "
          "service with SIGKILL")

    compacted = subprocess.run(
        [sys.executable, "-m", "repro", "compact", "--journal", journal],
        env=env, check=True, capture_output=True, text=True,
    )
    print(f"[{fmt}] {compacted.stdout.strip()}")

    subprocess.run(
        [sys.executable, "-m", "repro", "resume", "--journal", journal,
         "-o", resumed_path],
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    with open(resumed_path) as fh:
        resumed = json.load(fh)
    if resumed.get("resumed_at") != COMMITTED:
        print(f"FAIL({fmt}): expected resume at the commit boundary "
              f"{COMMITTED}, got {resumed.get('resumed_at')}")
        return 1
    a, b = deterministic(plain), deterministic(resumed)
    if a != b:
        diff = {k for k in set(a) | set(b) if a.get(k) != b.get(k)}
        print(f"FAIL({fmt}): resumed metrics diverge on {sorted(diff)}")
        for k in sorted(diff):
            print(f"  {k}: plain={a.get(k)!r} resumed={b.get(k)!r}")
        return 1
    print(f"[{fmt}] OK: warm restart reproduced the uninterrupted "
          f"replay (profit {plain['realized_profit']:.2f}, "
          f"{plain['accepted']}/{plain['arrivals']} accepted)")
    return 0


def main() -> int:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    sys.path.insert(0, src)
    from repro.io import save_trace
    from repro.online import generate_trace

    with tempfile.TemporaryDirectory() as tmp:
        trace = generate_trace("line", events=EVENTS, seed=9,
                               departure_prob=0.4)
        trace_path = os.path.join(tmp, "trace.json")
        save_trace(trace, trace_path)
        plain_path = os.path.join(tmp, "plain.json")

        subprocess.run(
            [sys.executable, "-m", "repro", "replay", trace_path,
             "--policy", POLICY, "-o", plain_path],
            env=env, check=True, stdout=subprocess.DEVNULL,
        )
        with open(plain_path) as fh:
            plain = json.load(fh)

        for fmt in ("jsonl", "binary"):
            rc = run_format(fmt, env, trace, trace_path, plain, tmp)
            if rc != 0:
                return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
