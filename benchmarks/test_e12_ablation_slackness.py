"""E12 (Section 5 Remark): slackness ablation — multi-stage (λ = 1-ε)
vs single-stage PS-style (λ = 1/(5+ε)) dual assignments.

This is the paper's second technical contribution isolated: same layered
decomposition, same raising rule, only the stage schedule differs.  We
measure the realized λ, the dual certificate tightness, the provable
ratio (∆+1)/λ, and the round cost of the extra stages.
"""

from __future__ import annotations

from repro import EngineConfig, TwoPhaseEngine, compile_tree, random_tree_problem, solve_optimal

from common import emit, geomean

EPS = 0.1


def run_one(problem, single_stage: bool, seed: int):
    inp = compile_tree(problem)
    if single_stage:
        cfg = EngineConfig(rule="unit", epsilon=EPS,
                           single_stage_target=1.0 / (5.0 + EPS), seed=seed)
    else:
        cfg = EngineConfig(rule="unit", epsilon=EPS, seed=seed)
    selected, stats = TwoPhaseEngine(inp, cfg).run()
    profit = sum(d.profit for d in selected)
    return profit, stats


def run_experiment():
    rows = []
    agg = {"lam_multi": [], "lam_single": [], "rounds_multi": [],
           "rounds_single": [], "profit_multi": [], "profit_single": [],
           "guar_multi": [], "guar_single": []}
    for seed in range(5):
        p = random_tree_problem(n=24, m=20, r=2, seed=seed)
        opt = solve_optimal(p).profit
        pm, sm = run_one(p, single_stage=False, seed=seed)
        ps_, ss = run_one(p, single_stage=True, seed=seed)
        agg["lam_multi"].append(sm.realized_lambda)
        agg["lam_single"].append(ss.realized_lambda)
        agg["rounds_multi"].append(sm.total_rounds)
        agg["rounds_single"].append(ss.total_rounds)
        agg["profit_multi"].append(pm / opt)
        agg["profit_single"].append(ps_ / opt)
        agg["guar_multi"].append((sm.delta + 1) / sm.realized_lambda)
        agg["guar_single"].append((ss.delta + 1) / ss.realized_lambda)
        rows.append([f"seed={seed}", f"{sm.realized_lambda:.3f}",
                     f"{ss.realized_lambda:.3f}", sm.total_rounds,
                     ss.total_rounds, f"{pm/opt:.3f}", f"{ps_/opt:.3f}"])
    rows.append(["geomean", geomean(agg["lam_multi"]), geomean(agg["lam_single"]),
                 geomean(agg["rounds_multi"]), geomean(agg["rounds_single"]),
                 geomean(agg["profit_multi"]), geomean(agg["profit_single"])])
    emit(
        "E12",
        "Slackness ablation: multi-stage (λ=1-ε) vs single-stage (λ=1/(5+ε))",
        ["case", "λ multi", "λ single", "rounds multi", "rounds single",
         "ALG/OPT multi", "ALG/OPT single"],
        rows,
        notes=(
            "The multi-stage schedule buys λ≈1 (provable ratio (∆+1)/λ ≈ 7) "
            "at a modest round premium; the single-stage schedule stops at "
            "λ ≥ 1/(5+ε) (provable ratio ≈ 35 for ∆=6)."
        ),
    )
    return agg


def test_ablation_slackness(benchmark):
    agg = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert min(agg["lam_multi"]) >= 1 - EPS - 1e-9
    assert min(agg["lam_single"]) >= 1 / (5 + EPS) - 1e-9
    # The provable guarantee is materially tighter with stages.
    assert geomean(agg["guar_multi"]) < geomean(agg["guar_single"])
    # The cost: more rounds (stages multiply the schedule).
    assert geomean(agg["rounds_multi"]) >= geomean(agg["rounds_single"])
    # Both land within their provable ratios.
    for pm, gm in zip(agg["profit_multi"], agg["guar_multi"]):
        assert pm >= 1 / gm - 1e-9
