"""The replay driver: one pass over a trace through one policy.

:func:`replay` owns the event loop and the ledger lifecycle — policies
only decide admissions and evictions.  Every event's *policy* work is
timed individually: the per-event latency percentiles in the metrics
cover arrivals, departures and ticks alike, so tick-triggered batch
flushes land in the tail the same way arrival-triggered ones do, and the
end-of-trace ``finish()`` flush — often the single most expensive
operation for batching policies — contributes one extra sample of its
own.  The ledger bookkeeping the driver performs on a departure
(``ledger.release``) happens *outside* the timed window, so the
percentiles measure decision latency, not the driver's own accounting.
Ticks and the end-of-trace flush let batching policies drain their
buffers.  The final admitted set is re-verified against the problem
definition from first principles, so a buggy policy cannot silently
oversubscribe an edge.

Admission decisions are deterministic given (trace, policy
configuration): the only nondeterminism in the result is wall-clock
timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.solution import Solution
from .events import Arrival, Departure, EventTrace, Tick
from .metrics import ReplayMetrics, latency_percentiles
from .policies import AdmissionPolicy
from .state import CapacityLedger

__all__ = ["ReplayResult", "replay"]


@dataclass
class ReplayResult:
    """Everything one replay produced.

    Attributes
    ----------
    metrics:
        The flat :class:`~repro.online.metrics.ReplayMetrics` record.
    admission_log:
        ``(demand_id, instance_id)`` in admission order (never shrinks;
        includes demands that later departed or were evicted).
    eviction_log:
        ``(demand_id, instance_id)`` in eviction order — the demands a
        preemptive policy displaced (empty for non-preemptive policies).
    final_solution:
        The instances still admitted when the trace ended, as a
        verified-feasible :class:`~repro.core.solution.Solution`.
    policy_stats:
        The policy's own counters (gates, flushes, ...).
    trace_meta:
        The trace's provenance dict, echoed for reports.
    """

    metrics: ReplayMetrics
    admission_log: list = field(default_factory=list)
    eviction_log: list = field(default_factory=list)
    final_solution: Solution | None = None
    policy_stats: dict = field(default_factory=dict)
    trace_meta: dict = field(default_factory=dict)


def replay(trace: EventTrace, policy: AdmissionPolicy, *,
           verify: bool = True) -> ReplayResult:
    """Stream ``trace`` through ``policy`` and measure the outcome.

    Parameters
    ----------
    trace:
        The event stream plus its frozen demand population.
    policy:
        An unbound :class:`~repro.online.policies.AdmissionPolicy`; it
        is bound to a fresh :class:`~repro.online.state.CapacityLedger`
        here, so one policy object can be reused across replays.
    verify:
        Re-check the final admitted set against the problem definition
        (cheap; disable only in throughput benchmarks).
    """
    ledger = CapacityLedger(trace.problem)
    policy.bind(ledger)
    latencies: list[float] = []
    arrivals = departures = ticks = 0

    t_start = time.perf_counter()
    for ev in trace.events:
        if isinstance(ev, Arrival):
            arrivals += 1
            t0 = time.perf_counter()
            policy.on_arrival(ev.demand_id)
            latencies.append(time.perf_counter() - t0)
        elif isinstance(ev, Departure):
            departures += 1
            # The ledger's own bookkeeping is not policy work: release
            # before starting the clock, so the latency sample measures
            # only the policy's decision path.
            if ledger.is_admitted(ev.demand_id):
                ledger.release(ev.demand_id)
            t0 = time.perf_counter()
            policy.on_departure(ev.demand_id)
            latencies.append(time.perf_counter() - t0)
        elif isinstance(ev, Tick):
            ticks += 1
            t0 = time.perf_counter()
            policy.on_tick(ev.time)
            latencies.append(time.perf_counter() - t0)
    # The final flush is frequently the most expensive single operation
    # (batch-resolve's full re-solve); time it like any other event so it
    # shows up in the percentiles instead of vanishing from them.
    t0 = time.perf_counter()
    policy.finish()
    latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - t_start

    if verify:
        ledger.verify()

    accepted = len(ledger.admission_log)
    pct = latency_percentiles(latencies)
    metrics = ReplayMetrics(
        policy=policy.name,
        events=len(trace.events),
        arrivals=arrivals,
        departures=departures,
        ticks=ticks,
        accepted=accepted,
        rejected=arrivals - accepted,
        acceptance_ratio=accepted / arrivals if arrivals else 0.0,
        realized_profit=ledger.realized_profit,
        evictions=ledger.num_evicted,
        forfeited_profit=ledger.forfeited_profit,
        penalty_paid=ledger.penalty_paid,
        penalty_adjusted_profit=ledger.penalty_adjusted_profit,
        elapsed_s=elapsed,
        events_per_sec=len(trace.events) / elapsed if elapsed > 0 else 0.0,
        latency_p50_us=pct["p50_us"],
        latency_p90_us=pct["p90_us"],
        latency_p99_us=pct["p99_us"],
        latency_mean_us=pct["mean_us"],
    )
    return ReplayResult(
        metrics=metrics,
        admission_log=list(ledger.admission_log),
        eviction_log=list(ledger.eviction_log),
        final_solution=ledger.snapshot(),
        policy_stats=dict(policy.stats),
        trace_meta=dict(trace.meta),
    )
