"""The lint runner: walk paths, parse, dispatch rules, report.

:func:`lint_paths` is the whole pipeline — collect ``.py`` files,
parse each once, run every selected file-scope rule per module and
every project-scope rule once over the full
:class:`~repro.analysis.base.ProjectContext`, then drop findings a
valid (justified) noqa comment covers.  Unparseable files
surface as ``PARSE000`` findings rather than crashes, so the linter
itself never takes CI down with a traceback.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from . import rules as _rules  # noqa: F401  (imports register the rules)
from .base import ParsedFile, ProjectContext, Rule, iter_rules
from .findings import Finding, parse_suppressions

__all__ = ["LintReport", "lint_paths", "lint_project", "render_explain"]


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list = field(default_factory=list)
    suppressed: int = 0
    checked_files: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> str:
        return json.dumps({
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "checked_files": self.checked_files,
        }, indent=2)

    def render_text(self) -> str:
        lines = [f.format() for f in self.findings]
        tail = (f"{len(self.findings)} finding(s), "
                f"{self.suppressed} suppressed, "
                f"{self.checked_files} file(s) checked")
        lines.append(tail)
        return "\n".join(lines)


def _collect_files(paths):
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py")
                                if "__pycache__" not in p.parts))
        else:
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _selected_rules(select=None, ignore=None):
    chosen = []
    for rule in iter_rules():
        if select and rule.id not in select:
            continue
        if ignore and rule.id in ignore:
            continue
        chosen.append(rule)
    return chosen


def lint_project(ctx: ProjectContext, select=None, ignore=None,
                 suppressions=None) -> LintReport:
    """Run the selected rules over an already-built project context."""
    report = LintReport(checked_files=len(ctx.files))
    raw: list = []
    chosen = _selected_rules(select, ignore)
    for key in sorted(ctx.files):
        parsed = ctx.files[key]
        for rule in chosen:
            if rule.scope == "file":
                raw.extend(rule.check_file(parsed))
    for rule in chosen:
        if rule.scope == "project":
            raw.extend(rule.check_project(ctx))
    suppressions = suppressions or {}
    kept = []
    for finding in raw:
        table = suppressions.get(finding.path)
        if table is not None and table.covers(finding.line, finding.rule):
            report.suppressed += 1
        else:
            kept.append(finding)
    for path, table in sorted(suppressions.items()):
        kept.extend(table.unjustified(path))
    report.findings = sorted(set(kept))
    return report


def lint_paths(paths, select=None, ignore=None) -> LintReport:
    """Lint files/directories on disk; the CLI's whole engine."""
    files = _collect_files(paths)
    ctx = ProjectContext(root=Path.cwd())
    suppressions = {}
    parse_failures = []
    for path in files:
        try:
            source = path.read_text()
        except OSError as exc:
            parse_failures.append(Finding(
                path=str(path), line=1, col=0, rule="PARSE000",
                message=f"unreadable: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            parse_failures.append(Finding(
                path=str(path), line=exc.lineno or 1, col=exc.offset or 0,
                rule="PARSE000", message=f"syntax error: {exc.msg}"))
            continue
        ctx.files[str(path)] = ParsedFile(path=path, tree=tree,
                                          source=source)
        suppressions[str(path)] = parse_suppressions(source)
    report = lint_project(ctx, select=select, ignore=ignore,
                          suppressions=suppressions)
    report.checked_files = len(files)
    report.findings = sorted(set(report.findings) | set(parse_failures))
    return report


# ----------------------------------------------------------------------
# Fixture plumbing shared by --explain and the test suite
# ----------------------------------------------------------------------


def lint_fixture(rule: Rule, snippet) -> list:
    """Run one rule over a fixture snippet (str or path->source dict)."""
    files = (snippet if isinstance(snippet, dict)
             else {rule.default_path: snippet})
    ctx = ProjectContext(root=Path("."))
    for rel, content in files.items():
        if rel.endswith(".py"):
            ctx.files[rel] = ParsedFile(path=Path(rel),
                                        tree=ast.parse(content),
                                        source=content)
        else:
            ctx.texts[rel] = content
    findings: list = []
    if rule.scope == "file":
        for parsed in ctx.files.values():
            findings.extend(rule.check_file(parsed))
    else:
        findings.extend(rule.check_project(ctx))
    return sorted(findings)


def render_explain(rule: Rule) -> str:
    """The ``--explain`` page: rationale plus the bad/good fixtures."""
    lines = [f"{rule.id} — {rule.name}", "", rule.rationale, ""]
    for i, fixture in enumerate(rule.fixtures, start=1):
        lines.append(f"example {i}" + (f" — {fixture.note}"
                                       if fixture.note else ""))
        for label, snippet in (("bad", fixture.bad), ("good", fixture.good)):
            lines.append(f"  # {label}")
            files = (snippet if isinstance(snippet, dict)
                     else {rule.default_path: snippet})
            for rel, content in files.items():
                if isinstance(snippet, dict):
                    lines.append(f"  --- {rel}")
                lines.extend("  " + ln for ln in content.splitlines())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
