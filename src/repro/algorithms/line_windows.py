"""Line-networks with windows (Section 7): distributed (4+ε) for the unit
case and (23+ε) for arbitrary heights — the paper's 5× improvement on
Panconesi–Sozio's (20+ε)/(55+ε).

The only change from the tree pipeline is the improved layered
decomposition: length buckets (shortest first) with critical timeslots
``{start, mid, end}`` give ``∆ = 3`` and length ``⌈log(Lmax/Lmin)⌉``
(instead of ``∆ = 6``, length ``O(log n)``).  The engine then runs the
same multi-stage schedule with ``ξ = 8/9`` (unit) or
``ξ = 19/(19+hmin)`` (narrow), achieving ``λ = 1-ε``:

* unit:    Lemma 3.1 →  ``(∆+1)/λ = 4/(1-ε)``      → (4+ε);
* narrow:  Lemma 6.1 →  ``(2∆²+1)/λ = 19/(1-ε)``   → (19+ε);
* arbitrary = wide (via unit) + narrow, combined per resource → (23+ε).
"""

from __future__ import annotations

from typing import Callable, Literal

from ..core.instance import LineProblem
from ..core.solution import Solution
from .compile import compile_line
from .framework import EngineConfig, TwoPhaseEngine
from .registry import register
from .tree_arbitrary import combine_by_network

__all__ = ["solve_line_unit", "solve_line_narrow", "solve_line_arbitrary"]


def _run(
    problem: LineProblem,
    cfg: EngineConfig,
    label: str,
    bound_fn,
    instance_filter,
    extra: dict,
) -> Solution:
    inp = compile_line(problem, instance_filter=instance_filter)
    if not inp.instances:
        return Solution(selected=[], stats={"algorithm": label, "empty": True})
    selected, stats = TwoPhaseEngine(inp, cfg).run()
    sol_stats = {
        "algorithm": label,
        "delta": stats.delta,
        "epochs": stats.epochs,
        "stages": stats.stages,
        "steps": stats.steps,
        "mis_rounds": stats.mis_rounds,
        "total_rounds": stats.total_rounds,
        "max_steps_in_a_stage": stats.max_steps_in_a_stage,
        "realized_lambda": stats.realized_lambda,
        "dual_objective": stats.dual_objective,
        "opt_upper_bound": stats.opt_upper_bound,
        "approx_guarantee": bound_fn(stats),
    }
    sol_stats.update(extra)
    return Solution(selected=selected, stats=sol_stats)


@register(
    "line-unit",
    family="line",
    description="distributed (4+ε) unit-height line algorithm (Thm 7.1)",
    accepts=("epsilon", "mis", "seed", "instance_filter"),
)
def solve_line_unit(
    problem: LineProblem,
    *,
    epsilon: float = 0.1,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
    instance_filter: Callable[..., bool] | None = None,
) -> Solution:
    """Unit-height line-networks with windows (Theorem 7.1): (4+ε).

    Heights, if present, are treated as unit — exactly how the wide
    population is handled by :func:`solve_line_arbitrary`.
    """
    cfg = EngineConfig(rule="unit", epsilon=epsilon, mis=mis, seed=seed)
    return _run(
        problem,
        cfg,
        "line-unit(4+eps)",
        lambda st: (st.delta + 1) / max(st.realized_lambda, 1e-12),
        instance_filter,
        {"epsilon": epsilon},
    )


@register(
    "line-narrow",
    family="line",
    description="narrow-only (19+ε) line algorithm (Section 7)",
    accepts=("epsilon", "hmin", "mis", "seed"),
)
def solve_line_narrow(
    problem: LineProblem,
    *,
    epsilon: float = 0.1,
    hmin: float | None = None,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
) -> Solution:
    """Narrow-only line algorithm: (19+ε) (Section 7, arbitrary case)."""
    narrow_heights = [a.height for a in problem.demands if a.narrow]
    if not narrow_heights:
        return Solution(
            selected=[], stats={"algorithm": "line-narrow(19+eps)", "empty": True}
        )
    if hmin is None:
        hmin = min(narrow_heights)
    cfg = EngineConfig(
        rule="narrow",
        epsilon=epsilon,
        hmin=hmin,
        mis=mis,
        seed=seed,
        capacity_phase2=True,
    )
    return _run(
        problem,
        cfg,
        "line-narrow(19+eps)",
        lambda st: (2 * st.delta**2 + 1) / max(st.realized_lambda, 1e-12),
        lambda d: d.narrow,
        {"epsilon": epsilon, "hmin": hmin},
    )


@register(
    "line-arbitrary",
    family="line",
    description="arbitrary-height (23+ε) line algorithm (Thm 7.2)",
    accepts=("epsilon", "hmin", "mis", "seed"),
)
def solve_line_arbitrary(
    problem: LineProblem,
    *,
    epsilon: float = 0.1,
    hmin: float | None = None,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
) -> Solution:
    """Arbitrary-height line-networks with windows (Theorem 7.2): (23+ε)."""
    wide = solve_line_unit(
        problem,
        epsilon=epsilon,
        mis=mis,
        seed=seed,
        instance_filter=lambda d: not d.narrow,
    )
    wide.stats["algorithm"] = "line-wide-as-unit(4+eps)"
    narrow = solve_line_narrow(
        problem, epsilon=epsilon, hmin=hmin, mis=mis, seed=seed
    )
    return combine_by_network(wide, narrow, "line-arbitrary(23+eps)")
