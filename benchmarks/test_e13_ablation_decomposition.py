"""E13 (Section 4.2): decomposition ablation inside the full algorithm.

Run the unit-height tree algorithm with each of the three decompositions
on path-heavy and balanced topologies.  The trade-off the paper states:

* root-fixing: ∆ = 4 (tighter ratio) but epochs = tree depth (up to n) —
  round complexity collapses on paths;
* balancing: O(log n) epochs but ∆ grows with θ = O(log n) — ratio
  guarantee degrades;
* ideal: both O(log n) epochs and ∆ = 6.
"""

from __future__ import annotations

from repro import (
    balancing_decomposition,
    ideal_decomposition,
    random_tree_problem,
    root_fixing_decomposition,
    solve_optimal,
    solve_tree_unit,
)

from common import emit

BUILDERS = [
    ("root-fix", root_fixing_decomposition),
    ("balance", balancing_decomposition),
    ("ideal", ideal_decomposition),
]


def run_experiment():
    rows = []
    per = {}
    for topo, n, m in [("path", 128, 64), ("caterpillar", 128, 64),
                       ("binary", 127, 64)]:
        p = random_tree_problem(n=n, m=m, r=1, seed=3, topology=topo)
        opt = solve_optimal(p).profit
        for name, builder in BUILDERS:
            sol = solve_tree_unit(p, epsilon=0.2, seed=3, decomposition=builder)
            per[(topo, name)] = {
                "epochs": sol.stats["epochs"],
                "rounds": sol.stats["total_rounds"],
                "delta": sol.stats["delta"],
                "ratio": opt / max(sol.profit, 1e-12),
            }
            rows.append([topo, name, sol.stats["delta"], sol.stats["epochs"],
                         sol.stats["total_rounds"],
                         f"{opt / max(sol.profit, 1e-12):.3f}"])
    emit(
        "E13",
        "Decomposition ablation inside the (7+ε) algorithm",
        ["topology", "decomposition", "∆", "epochs", "rounds", "OPT/ALG"],
        rows,
        notes=(
            "Paper §4.2: root-fixing keeps ∆ small but its epoch count is "
            "the tree height (n on paths); balancing keeps epochs O(log n) "
            "but inflates ∆; the ideal decomposition achieves both."
        ),
    )
    return per


def test_ablation_decomposition(benchmark):
    per = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Root-fixing on a path: epochs blow up to ~n.
    assert per[("path", "root-fix")]["epochs"] >= 100
    assert per[("path", "ideal")]["epochs"] <= 17
    # Ideal keeps ∆ = 6 while balancing may exceed it on caterpillars.
    assert per[("caterpillar", "ideal")]["delta"] <= 6
    assert per[("caterpillar", "balance")]["delta"] >= per[
        ("caterpillar", "ideal")
    ]["delta"]
    # All variants still land within their own (∆+1)/λ bound.
    for (topo, name), rec in per.items():
        assert rec["ratio"] <= (rec["delta"] + 1) / 0.8 + 1e-6, (topo, name)
