"""Tests for the pluggable admission policies."""

from __future__ import annotations

import math

import pytest

from repro.online import (
    CapacityLedger,
    make_policy,
    offline_optimum,
    poisson_trace,
    replay,
)


class TestMakePolicy:
    def test_names_resolve(self):
        assert make_policy("greedy-threshold").name == "greedy-threshold"
        assert make_policy("dual-gated", eta=1.5).name == "dual-gated"
        assert make_policy("batch-resolve", solver="greedy").name == \
            "batch-resolve"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("oracle")

    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="threshold"):
            make_policy("greedy-threshold", threshold=-1.0)
        with pytest.raises(ValueError, match="eta"):
            make_policy("dual-gated", eta=0.0)
        with pytest.raises(ValueError, match="resolve_every"):
            make_policy("batch-resolve", resolve_every=-2)

    def test_preemptive_names_resolve(self):
        assert make_policy("preempt-density").name == "preempt-density"
        assert make_policy("preempt-dual-gated", penalty=0.5).name == \
            "preempt-dual-gated"

    def test_misspelled_kwargs_are_friendly(self):
        # Never a raw TypeError: misspelled constructor keywords get the
        # same ValueError treatment as unknown policy names.
        with pytest.raises(ValueError, match="bad parameters for policy"):
            make_policy("dual-gated", etaa=1.3)
        with pytest.raises(ValueError, match="preempt-density"):
            make_policy("preempt-density", factr=2.0)


class TestGreedyThreshold:
    def test_zero_threshold_admits_whatever_fits(self):
        tr = poisson_trace("line", events=100, seed=1, departure_prob=0.0)
        res = replay(tr, make_policy("greedy-threshold"))
        # Every rejection must be a genuine capacity block: replaying the
        # admitted set leaves no rejected demand that would have fit at
        # the end (spot-check through a fresh ledger).
        ledger = CapacityLedger(tr.problem)
        for _, iid in res.admission_log:
            ledger.admit(iid)
        assert res.metrics.accepted == len(res.admission_log)
        assert res.metrics.realized_profit == pytest.approx(
            sum(tr.problem.demands[d].profit for d, _ in res.admission_log)
        )

    def test_infinite_threshold_rejects_everything(self):
        tr = poisson_trace("line", events=60, seed=2)
        res = replay(tr, make_policy("greedy-threshold",
                                     threshold=math.inf))
        assert res.metrics.accepted == 0
        assert res.metrics.realized_profit == 0.0

    def test_threshold_is_density_gate(self):
        tr = poisson_trace("line", events=80, seed=3, departure_prob=0.0)
        res = replay(tr, make_policy("greedy-threshold", threshold=0.9))
        for d, iid in res.admission_log:
            inst = tr.problem.instances()[iid]
            length = inst.end - inst.start + 1
            assert inst.profit / length >= 0.9


class TestDualGated:
    def test_gates_under_pressure(self):
        # Saturated trace: the gate must fire at least once and gated
        # arrivals must be counted separately from capacity blocks.
        tr = poisson_trace("line", events=400, seed=1, departure_prob=0.3)
        policy = make_policy("dual-gated")
        res = replay(tr, policy)
        stats = res.policy_stats
        assert stats["gated"] > 0
        assert stats["capacity_blocked"] > 0
        assert stats["max_gate"] > 0.0
        assert res.metrics.accepted + res.metrics.rejected == \
            res.metrics.arrivals

    def test_empty_network_is_free(self):
        tr = poisson_trace("line", events=30, seed=4, departure_prob=0.0)
        ledger = CapacityLedger(tr.problem)
        policy = make_policy("dual-gated")
        policy.bind(ledger)
        # With nothing admitted every route prices at zero, so the very
        # first arrival is always admitted.
        assert policy.route_price(int(ledger.candidates(0)[0])) == 0.0
        assert policy.on_arrival(0) is not None

    def test_higher_eta_admits_no_more(self):
        tr = poisson_trace("line", events=300, seed=5, departure_prob=0.2)
        loose = replay(tr, make_policy("dual-gated", eta=0.5))
        stiff = replay(tr, make_policy("dual-gated", eta=4.0))
        assert stiff.policy_stats["gated"] >= loose.policy_stats["gated"]


class TestBatchResolve:
    def test_single_final_flush_matches_offline_optimum(self):
        # The PR's acceptance criterion: no departures, one flush at the
        # end, exact inner solver -> exactly the offline optimum profit.
        tr = poisson_trace("line", events=50, seed=7, departure_prob=0.0)
        res = replay(tr, make_policy("batch-resolve", solver="exact",
                                     resolve_every=0))
        assert res.metrics.realized_profit == pytest.approx(
            offline_optimum(tr, "exact")
        )

    def test_single_final_flush_matches_offline_optimum_tree(self):
        tr = poisson_trace("tree", events=40, seed=8, departure_prob=0.0,
                           workload={"n": 24})
        res = replay(tr, make_policy("batch-resolve", solver="exact",
                                     resolve_every=0))
        assert res.metrics.realized_profit == pytest.approx(
            offline_optimum(tr, "exact")
        )

    def test_never_preempts(self):
        tr = poisson_trace("line", events=200, seed=9, departure_prob=0.0)
        res = replay(tr, make_policy("batch-resolve", solver="greedy",
                                     resolve_every=32))
        # The admission log is append-only and admitted demands stay in
        # the final solution when nothing departs.
        final_ids = {d.demand_id for d in res.final_solution.selected}
        assert final_ids == {d for d, _ in res.admission_log}

    def test_departed_buffered_demands_are_dropped(self):
        tr = poisson_trace("line", events=200, seed=10, departure_prob=0.6,
                           rate=4.0)
        res = replay(tr, make_policy("batch-resolve", solver="greedy",
                                     resolve_every=0))
        # Any demand that departed before the final flush must not have
        # been admitted by it (it was dropped from the buffer).
        from repro.online import Departure

        departed = {ev.demand_id for ev in tr.events
                    if isinstance(ev, Departure)}
        admitted = {d for d, _ in res.admission_log}
        assert not (admitted & departed)

    def test_flush_cadence_counted(self):
        tr = poisson_trace("line", events=120, seed=11, departure_prob=0.0)
        policy = make_policy("batch-resolve", solver="greedy",
                             resolve_every=25)
        res = replay(tr, policy)
        assert res.policy_stats["flushes"] >= 120 // 25
        assert res.policy_stats["buffered"] == res.metrics.arrivals


class TestBatchResolveResidual:
    """Residual-capacity-aware re-solves (blocker demands)."""

    @staticmethod
    def _three_job_trace():
        """A: [0,4] profit 5 (flushed first); then B: [2,7] profit 10
        and C: [5,9] profit 3.  B conflicts with both A and C, so a
        residual-blind second flush picks B (profit order), collides
        with A, and loses C too; the residual-aware flush sees A's load
        and picks C."""
        from repro.core.demand import WindowDemand
        from repro.core.instance import LineProblem
        from repro.network.line import LineNetwork
        from repro.online import Arrival, EventTrace, Tick

        demands = [
            WindowDemand(0, 0, 4, 5, 5.0),   # A, pinned to [0, 4]
            WindowDemand(1, 2, 7, 6, 10.0),  # B, pinned to [2, 7]
            WindowDemand(2, 5, 9, 5, 3.0),   # C, pinned to [5, 9]
        ]
        problem = LineProblem(n_slots=10, resources=[LineNetwork(10)],
                              demands=demands)
        events = [Arrival(0.0, 0), Tick(1.0), Arrival(2.0, 1),
                  Arrival(3.0, 2), Tick(4.0)]
        return EventTrace(problem=problem, events=events)

    def test_residual_solver_sees_admitted_load(self):
        trace = self._three_job_trace()
        res = replay(trace, make_policy("batch-resolve", solver="exact",
                                        resolve_every=0))
        admitted = {d for d, _ in res.admission_log}
        assert admitted == {0, 2}  # A then C — B refused by the blocker
        assert res.policy_stats["displaced"] == 0
        assert res.policy_stats["blockers"] >= 1
        assert res.metrics.realized_profit == pytest.approx(8.0)

    def test_legacy_post_filtering_loses_the_collision(self):
        trace = self._three_job_trace()
        res = replay(trace, make_policy("batch-resolve", solver="exact",
                                        resolve_every=0, residual=False))
        admitted = {d for d, _ in res.admission_log}
        assert admitted == {0}  # B displaced by A; C lost to B's win
        assert res.policy_stats["displaced"] >= 1
        assert res.metrics.realized_profit == pytest.approx(5.0)

    def test_residual_never_worse_on_random_traces(self):
        for seed in (1, 2, 3):
            tr = poisson_trace("line", events=200, seed=seed,
                               departure_prob=0.3)
            on = replay(tr, make_policy("batch-resolve", solver="greedy",
                                        resolve_every=32))
            off = replay(tr, make_policy("batch-resolve", solver="greedy",
                                         resolve_every=32, residual=False))
            # Not a theorem, but on these seeds carrying the admitted
            # load must not lose profit — change-detects regressions.
            assert on.metrics.realized_profit >= \
                off.metrics.realized_profit - 1e-9

    def test_blockers_work_on_trees(self):
        from repro.online import generate_trace

        tr = generate_trace("tree", events=150, seed=4, departure_prob=0.2,
                            workload={"n": 48})
        res = replay(tr, make_policy("batch-resolve", solver="greedy",
                                     resolve_every=16))
        assert res.policy_stats["flushes"] >= 1
        # Multiple flushes against a non-empty ledger must have built
        # blockers (the first flush legitimately has none).
        if res.metrics.accepted and res.policy_stats["flushes"] > 1:
            assert res.policy_stats["blockers"] > 0


class TestDualPriceCertificate:
    """The dual-gated price trajectory as an offline upper bound."""

    def test_certificate_bounds_offline_optimum(self):
        tr = poisson_trace("line", events=160, seed=5, departure_prob=0.3)
        res = replay(tr, make_policy("dual-gated"))
        cert = res.policy_stats["dual_certificate"]
        assert res.metrics.dual_upper_bound == cert["upper_bound"]
        opt = offline_optimum(tr, "exact")
        assert cert["upper_bound"] >= opt - 1e-6
        assert cert["beta_total"] >= 0.0
        assert cert["z_total"] >= 0.0
        assert 0.0 <= cert["peak_load"] <= 1.0 + 1e-9

    def test_certificate_on_trees_and_preemptive_variant(self):
        from repro.online import generate_trace

        tr = generate_trace("tree", events=120, seed=6, departure_prob=0.3,
                            workload={"n": 48})
        opt = offline_optimum(tr, "exact")
        for policy in ("dual-gated", "preempt-dual-gated"):
            res = replay(tr, make_policy(policy))
            assert res.metrics.dual_upper_bound is not None
            assert res.metrics.dual_upper_bound >= opt - 1e-6

    def test_priceless_policies_carry_no_certificate(self):
        tr = poisson_trace("line", events=80, seed=7, departure_prob=0.0)
        res = replay(tr, make_policy("greedy-threshold"))
        assert res.metrics.dual_upper_bound is None
        assert "dual_certificate" not in res.policy_stats

    def test_peaks_survive_departures(self):
        # With heavy departures the *final* loads deflate, but the peaks
        # (and hence the certificate) must reflect the high-water mark.
        import numpy as np

        tr = poisson_trace("line", events=200, seed=8, departure_prob=0.9)
        policy = make_policy("dual-gated")
        res = replay(tr, policy)
        assert res.metrics.accepted > 0
        assert float(np.max(policy._peak)) >= \
            policy.ledger.active.max_load() - 1e-12


class TestHistoryCertificate:
    """Opt-in per-edge price histories tighten the dual upper bound."""

    def test_history_bound_valid_and_no_looser(self):
        tr = poisson_trace("line", events=250, seed=9, departure_prob=0.6,
                           rate=4.0)
        res = replay(tr, make_policy("dual-gated", history=True))
        cert = res.policy_stats["dual_certificate"]
        # The tightened bound is the min over a family that includes the
        # peak assignment, so it can only improve on it — and every
        # member is a valid dual, so it still caps the exact optimum.
        assert cert["upper_bound"] <= cert["peak_upper_bound"] + 1e-12
        assert cert["history_points"] >= 1
        opt = offline_optimum(tr, "exact")
        assert cert["upper_bound"] >= opt - 1e-6
        assert res.metrics.dual_upper_bound == cert["upper_bound"]
        assert res.metrics.dual_upper_bound_peak == \
            cert["peak_upper_bound"]

    def test_history_actually_tightens_under_departures(self):
        """Heavy departures leave the peak duals priced for load that is
        long gone; some mid-trajectory snapshot must beat them."""
        tr = poisson_trace("line", events=400, seed=10,
                           departure_prob=0.9, rate=8.0)
        res = replay(tr, make_policy("dual-gated", history=True))
        cert = res.policy_stats["dual_certificate"]
        assert cert["upper_bound"] < cert["peak_upper_bound"]

    def test_history_off_by_default(self):
        tr = poisson_trace("line", events=80, seed=11, departure_prob=0.3)
        res = replay(tr, make_policy("dual-gated"))
        cert = res.policy_stats["dual_certificate"]
        assert "peak_upper_bound" not in cert
        assert res.metrics.dual_upper_bound_peak is None

    def test_history_does_not_change_decisions(self):
        tr = poisson_trace("line", events=200, seed=12, departure_prob=0.4)
        plain = replay(tr, make_policy("dual-gated"))
        hist = replay(tr, make_policy("dual-gated", history=True))
        assert plain.admission_log == hist.admission_log

    def test_snapshot_thinning_bounds_memory(self):
        from repro.online.policies import DualGated

        tr = poisson_trace("line", events=3000, seed=13,
                           departure_prob=0.5, rate=8.0)
        policy = make_policy("dual-gated", history=True)
        res = replay(tr, policy)
        assert res.metrics.accepted > DualGated._MAX_SNAPSHOTS / 2
        assert len(policy._snapshots) <= DualGated._MAX_SNAPSHOTS

    def test_preemptive_variant_supports_history(self):
        tr = poisson_trace("line", events=200, seed=14,
                           departure_prob=0.3, rate=4.0)
        res = replay(tr, make_policy("preempt-dual-gated", history=True,
                                     penalty=0.1))
        cert = res.policy_stats["dual_certificate"]
        assert cert["upper_bound"] <= cert["peak_upper_bound"] + 1e-12

    def test_report_renders_both_columns(self):
        from repro.report import render_replay

        tr = poisson_trace("line", events=120, seed=15,
                           departure_prob=0.5)
        res = replay(tr, make_policy("dual-gated", history=True))
        table = render_replay([res.metrics])
        assert "OPT≤(dual)" in table and "OPT≤(peak)" in table
