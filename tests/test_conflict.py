"""Tests for the conflict relation index (Section 2)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConflictIndex, random_line_problem, random_tree_problem


def _index(problem) -> ConflictIndex:
    insts = problem.instances()
    return ConflictIndex(insts, [problem.global_edges_of(d) for d in insts])


def _naive_conflict(problem, a, b) -> bool:
    insts = problem.instances()
    da, db = insts[a], insts[b]
    if a == b:
        return False
    if da.demand_id == db.demand_id:
        return True
    if da.network_id != db.network_id:
        return False
    ea = set(problem.global_edges_of(da))
    eb = set(problem.global_edges_of(db))
    return bool(ea & eb)


class TestConflictIndex:
    def test_matches_naive_tree(self):
        p = random_tree_problem(n=14, m=10, r=2, seed=0)
        ci = _index(p)
        n = len(p.instances())
        for a, b in itertools.combinations(range(n), 2):
            assert ci.conflicting(a, b) == _naive_conflict(p, a, b)

    def test_matches_naive_line(self):
        p = random_line_problem(n_slots=20, m=8, r=2, seed=1, max_len=6)
        ci = _index(p)
        n = len(p.instances())
        for a, b in itertools.combinations(range(n), 2):
            assert ci.conflicting(a, b) == _naive_conflict(p, a, b)

    def test_same_demand_always_conflicts(self):
        p = random_tree_problem(n=14, m=5, r=3, seed=2)
        ci = _index(p)
        for d1, d2 in itertools.combinations(p.instances(), 2):
            if d1.demand_id == d2.demand_id:
                assert ci.conflicting(d1.instance_id, d2.instance_id)

    def test_neighbors_equal_conflict_set(self):
        p = random_tree_problem(n=12, m=8, r=2, seed=3)
        ci = _index(p)
        n = len(p.instances())
        for a in range(n):
            expect = {b for b in range(n) if _naive_conflict(p, a, b)}
            assert ci.neighbors(a) == expect

    def test_neighbors_population_restriction(self):
        p = random_tree_problem(n=12, m=8, r=2, seed=4)
        ci = _index(p)
        pop = set(range(0, len(p.instances()), 2))
        for a in pop:
            assert ci.neighbors(a, pop) == ci.neighbors(a) & pop

    def test_is_independent(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=5)
        ci = _index(p)
        n = len(p.instances())
        for subset in itertools.combinations(range(n), 3):
            pairwise = all(
                not ci.conflicting(a, b) for a, b in itertools.combinations(subset, 2)
            )
            assert ci.is_independent(subset) == pairwise

    def test_subgraph_symmetry(self):
        p = random_tree_problem(n=12, m=10, r=2, seed=6)
        ci = _index(p)
        pop = set(range(len(p.instances())))
        adj = ci.subgraph(pop)
        for v, nbrs in adj.items():
            for u in nbrs:
                assert v in adj[u]

    def test_rejects_nondense_ids(self):
        p = random_tree_problem(n=10, m=4, r=1, seed=7)
        insts = p.instances()[1:]  # ids now start at 1
        with pytest.raises(ValueError, match="dense"):
            ConflictIndex(insts, [p.global_edges_of(d) for d in insts])

    def test_to_networkx(self):
        p = random_tree_problem(n=12, m=6, r=1, seed=8)
        ci = _index(p)
        g = ci.to_networkx()
        for a, b in g.edges():
            assert ci.conflicting(a, b)


@given(
    n=st.integers(min_value=4, max_value=20),
    m=st.integers(min_value=2, max_value=12),
    r=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_conflict_index_property(n, m, r, seed):
    p = random_tree_problem(n=n, m=m, r=r, seed=seed, access_prob=0.7)
    ci = _index(p)
    N = len(p.instances())
    for a in range(0, N, 3):
        for b in range(1, N, 4):
            if a != b:
                assert ci.conflicting(a, b) == _naive_conflict(p, a, b)
