"""Parallel batch execution of (instance, solver, seed) jobs.

The 16 paper experiments — and any parameter sweep built on top of them —
are embarrassingly parallel: every job is "load a problem, run a
registered solver, record profit/rounds/certificates".  :class:`BatchRunner`
fans a job list across a :mod:`multiprocessing` pool, memoises results in
a content-addressed cache (instance hash + solver config), and returns
structured, JSON-serialisable :class:`RunResult` records that
:mod:`repro.report` can render and the CLI can archive.

Workers resolve solvers through :mod:`repro.algorithms.registry`, so a
sweep over heterogeneous solvers passes one parameter dict — each solver
picks out the keywords it understands.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Job", "RunResult", "BatchRunner"]


def _json_safe(value):
    """Best-effort conversion of solver stats into JSON-serialisable data."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else str(value)
    if hasattr(value, "item"):  # numpy scalars
        return _json_safe(value.item())
    return str(value)


def _document_of(job, source) -> dict:
    """A job's JSON document: dicts pass through, paths are loaded once
    (memoised on the frozen dataclass via ``object.__setattr__``)."""
    if isinstance(source, dict):
        return source
    cached = getattr(job, "_doc", None)
    if cached is None:
        with open(source) as fh:
            cached = json.load(fh)
        object.__setattr__(job, "_doc", cached)
    return cached


def _params_with_seed(params: dict, seed) -> dict:
    out = dict(params)
    if seed is not None:
        out["seed"] = seed
    return out


def _label_of(label: str, source) -> str:
    if label:
        return label
    if isinstance(source, str):
        return os.path.splitext(os.path.basename(source))[0]
    return "<inline>"


@dataclass(frozen=True)
class Job:
    """One unit of work: a problem, a registered solver, parameters.

    Attributes
    ----------
    problem:
        Path to a problem JSON file, or an in-memory problem document
        (the :func:`repro.io.problem_to_dict` form).
    solver:
        Registry name (see :func:`repro.algorithms.registry.names`).
    params:
        Keyword arguments for the solver; unknown keys are dropped per
        solver, so one dict can drive a mixed sweep.
    seed:
        Convenience alias merged into ``params["seed"]`` when set.
    label:
        Display name for reports; defaults to the problem file stem.
    """

    problem: object
    solver: str
    params: dict = field(default_factory=dict)
    seed: int | None = None
    label: str = ""

    def document(self) -> dict:
        """The problem as a JSON document (loaded from disk at most once)."""
        return _document_of(self, self.problem)

    def effective_params(self) -> dict:
        return _params_with_seed(self.params, self.seed)

    def display_label(self) -> str:
        return _label_of(self.label, self.problem)

    def cache_key(self) -> str:
        """Content hash of (instance, solver, config) — the memo key."""
        blob = json.dumps(
            {
                "problem": self.document(),
                "solver": self.solver,
                "params": _json_safe(self.effective_params()),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class RunResult:
    """Outcome of one job, flat and JSON-serialisable."""

    label: str
    solver: str
    key: str
    params: dict = field(default_factory=dict)
    profit: float = 0.0
    size: int = 0
    stats: dict = field(default_factory=dict)
    elapsed: float = 0.0
    cache_hit: bool = False
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "solver": self.solver,
            "key": self.key,
            "params": _json_safe(self.params),
            "profit": self.profit,
            "size": self.size,
            "stats": _json_safe(self.stats),
            "elapsed": self.elapsed,
            "cache_hit": self.cache_hit,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RunResult":
        return cls(**{k: doc.get(k) for k in (
            "label", "solver", "key", "params", "profit", "size", "stats",
            "elapsed", "cache_hit", "error",
        )})


def _execute(payload: dict) -> dict:
    """Worker body: run one job from its serialised payload."""
    from ..algorithms import registry
    from ..io import problem_from_dict

    start = time.perf_counter()
    try:
        problem = problem_from_dict(payload["document"])
        solution = registry.solve(
            payload["solver"], problem, **payload["params"]
        )
        return {
            "label": payload["label"],
            "solver": payload["solver"],
            "key": payload["key"],
            "params": payload["params"],
            "profit": solution.profit,
            "size": solution.size,
            "stats": _json_safe(solution.stats),
            "elapsed": time.perf_counter() - start,
            "cache_hit": False,
            "error": None,
        }
    except Exception:
        return {
            "label": payload["label"],
            "solver": payload["solver"],
            "key": payload["key"],
            "params": payload["params"],
            "profit": 0.0,
            "size": 0,
            "stats": {},
            "elapsed": time.perf_counter() - start,
            "cache_hit": False,
            "error": traceback.format_exc(),
        }


class BatchRunner:
    """Run a list of :class:`Job` objects, in parallel, with memoisation.

    Parameters
    ----------
    processes:
        Pool size.  ``None`` uses the CPU count; ``0`` or ``1`` runs the
        jobs inline (deterministic, no fork — what tests and small
        sweeps want).
    cache_dir:
        Directory of memoised results.  ``None`` disables caching.
    """

    def __init__(self, processes: int | None = None,
                 cache_dir: str | None = None):
        self.processes = processes
        self.cache_dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # -- cache ----------------------------------------------------------

    def _cache_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _cache_load(self, key: str) -> dict | None:
        if not self.cache_dir:
            return None
        path = self._cache_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def _cache_store(self, key: str, doc: dict) -> None:
        if not self.cache_dir:
            return
        tmp = self._cache_path(key) + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, self._cache_path(key))

    # -- hooks (overridden by ReplayRunner) -----------------------------

    #: Module-level worker the pool maps over (must be picklable).
    _worker = staticmethod(_execute)

    def _job_key(self, job) -> str:
        """The memo key for a job."""
        return job.cache_key()

    def _payload(self, job, key: str) -> dict:
        """The serialised work unit handed to the pool worker."""
        return {
            "document": job.document(),
            "solver": job.solver,
            "params": job.effective_params(),
            "label": job.display_label(),
            "key": key,
        }

    # -- execution ------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> list[RunResult]:
        """Execute all jobs; results come back in job order."""
        payloads: list[dict | None] = []
        results: list[dict | None] = [None] * len(jobs)
        for i, job in enumerate(jobs):
            key = self._job_key(job)
            cached = self._cache_load(key)
            if cached is not None:
                cached["cache_hit"] = True
                cached["label"] = job.display_label()
                results[i] = cached
                payloads.append(None)
            else:
                payloads.append(self._payload(job, key))

        pending = [(i, p) for i, p in enumerate(payloads) if p is not None]
        if pending:
            nproc = self.processes
            if nproc is None:
                nproc = os.cpu_count() or 1
            nproc = min(nproc, len(pending))
            worker = type(self)._worker
            if nproc > 1:
                import multiprocessing as mp

                with mp.Pool(nproc) as pool:
                    outs = pool.map(worker, [p for _, p in pending])
            else:
                outs = [worker(p) for _, p in pending]
            for (i, _), out in zip(pending, outs):
                results[i] = out
                if out["error"] is None:
                    self._cache_store(out["key"], out)
        return [RunResult.from_dict(doc) for doc in results]

    def run_grid(
        self,
        problems: Sequence,
        solvers: Sequence[str],
        seeds: Sequence[int | None] = (None,),
        params: dict | None = None,
    ) -> list[RunResult]:
        """Cartesian sweep: every problem × solver × seed."""
        jobs = [
            Job(problem=p, solver=s, params=dict(params or {}), seed=seed)
            for p in problems
            for s in solvers
            for seed in seeds
        ]
        return self.run(jobs)
