"""Structured adversarial instances.

Random workloads rarely stress approximation algorithms; these
constructions target the specific mechanisms of the paper's analysis:

* :func:`profit_ladder` — geometric profit chains of mutually
  conflicting demands: the tight case of the kill-chain bound
  (Claim 5.2 / Lemma 5.1) and the E14 benchmark's workload;
* :func:`long_vs_short` — one long high-profit demand against many short
  ones covering the same route: where greedy-by-profit loses a factor of
  ~k and the primal-dual second phase must recover it;
* :func:`star_crossing` — demands pairwise crossing at a hub vertex but
  edge-disjoint: a large independent set that a naive "conflict = shares
  a vertex" implementation would refuse (regression guard for the
  edge-disjoint semantics);
* :func:`sibling_stress` — every demand accesses all networks, on
  identical trees: maximal α-coupling between instances of a demand;
* :func:`caterpillar_killer` — the topology family where the balancing
  decomposition's pivot exceeds 2 (motivates the ideal decomposition).
"""

from __future__ import annotations

from ..core.demand import Demand
from ..core.instance import TreeProblem
from ..network.tree import TreeNetwork
from .generators import make_tree

__all__ = [
    "profit_ladder",
    "long_vs_short",
    "star_crossing",
    "sibling_stress",
    "caterpillar_killer",
]


def profit_ladder(depth: int, base: float = 16.0) -> TreeProblem:
    """All demands span the single edge of a 2-vertex tree; profits
    ``base**i``.  Every pair conflicts; a steep ladder forces a stage to
    walk the entire chain one raise at a time (Lemma 5.1's tight case).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    net = TreeNetwork(2, [(0, 1)], network_id=0)
    demands = [Demand(i, 0, 1, profit=float(base**i)) for i in range(depth)]
    return TreeProblem(n=2, networks=[net], demands=demands)


def long_vs_short(k: int, long_profit: float | None = None) -> TreeProblem:
    """A path of ``k`` edges: one demand spans it all, ``k`` unit demands
    each cover one edge.

    With ``long_profit`` slightly above 1 the optimum takes the ``k``
    short demands (profit ``k``) while profit-greedy grabs the long one
    (profit ``~1``): the classic Ω(k) greedy gap.  Default long profit is
    ``1.5``.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    net = TreeNetwork(k + 1, [(i, i + 1) for i in range(k)], network_id=0)
    demands = [Demand(0, 0, k, profit=float(long_profit or 1.5))]
    demands += [Demand(i + 1, i, i + 1, profit=1.0) for i in range(k)]
    return TreeProblem(n=k + 1, networks=[net], demands=demands)


def star_crossing(legs: int) -> TreeProblem:
    """A star with ``2·legs`` leaves; demand ``i`` connects leaves
    ``2i+1`` and ``2i+2`` through the hub.

    All routes meet at the hub *vertex* but are pairwise edge-disjoint —
    the whole set is simultaneously schedulable.  Guards the
    edge-disjoint (not vertex-disjoint) semantics of Section 2.
    """
    if legs < 1:
        raise ValueError("legs must be >= 1")
    n = 2 * legs + 1
    net = make_tree(n, "star", network_id=0)
    demands = [
        Demand(i, 2 * i + 1, 2 * i + 2, profit=1.0) for i in range(legs)
    ]
    return TreeProblem(n=n, networks=[net], demands=demands)


def sibling_stress(m: int, r: int, n: int = 16, seed: int = 0) -> TreeProblem:
    """``m`` demands, each with instances on all ``r`` identical trees.

    Instances of one demand conflict only through their shared α
    variable; the solution may use each demand once even though ``r``
    copies were raised — stresses the one-instance-per-demand constraint
    end to end.
    """
    base = make_tree(n, "random", seed=seed)
    networks = [
        TreeNetwork(n, list(base.edges), network_id=q) for q in range(r)
    ]
    import numpy as np

    rng = np.random.default_rng(seed)
    demands = []
    for i in range(m):
        u, v = rng.choice(n, size=2, replace=False)
        demands.append(Demand(i, int(u), int(v),
                              profit=float(rng.uniform(1, 4))))
    return TreeProblem(n=n, networks=networks, demands=demands)


def caterpillar_killer(n: int, seed: int = 1) -> TreeNetwork:
    """A caterpillar on ``n`` vertices — the family where the balancing
    decomposition's pivot size exceeds 2 while the ideal stays at 2."""
    return make_tree(n, "caterpillar", seed=seed)
