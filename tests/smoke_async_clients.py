"""CI smoke: 8 concurrent clients, ``kill -9`` mid-stream, resume.

The async front door's crash story across real process boundaries, run
once per journal format (JSON-lines and binary):

1. generate + save a short trace, record the plain ``repro replay``
   metrics for it;
2. start ``repro serve --async --port 0`` as a subprocess and connect
   **8 concurrent TCP clients**; the clients pump the first part of
   the trace through batched ``feed`` requests (globally ordered, so
   the journal stays a prefix of the trace — each request is ack'd
   before the next client sends), confirm the server sees all 8
   connections in ``stats``, then SIGKILL the server mid-stream with
   every client still connected — no shutdown hooks;
3. ``repro resume --journal`` in a fresh process: recovery must land
   exactly on the last group-commit boundary, finish the trace, and
   write final metrics;
4. diff the resumed metrics against the plain replay, ignoring only
   wall-clock timing fields.

Exit code 0 iff both formats recover to the exact commit boundary and
reproduce the uninterrupted replay byte-for-byte.

Run from the repo root::

    PYTHONPATH=src python tests/smoke_async_clients.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading

POLICY = "dual-gated"
EVENTS = 400
CLIENTS = 8
FEED_BATCH = 12
BATCHES = 19           # 228 events fed before the kill
SYNC_WINDOW = 8
FED = BATCHES * FEED_BATCH
#: 8 does not divide 228: the SIGKILL lands with 4 events accepted but
#: not yet committed, so the resume must recover to the last group
#: commit boundary.
COMMITTED = FED - FED % SYNC_WINDOW


def _spawn_server(env, trace_path, journal, fmt):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--trace", trace_path,
         "--policy", POLICY, "--journal", journal, "--format", fmt,
         "--sync-window", str(SYNC_WINDOW), "--port", "0", "--async",
         "--max-clients", "16"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        env=env, text=True,
    )
    addr = None
    for line in proc.stderr:
        m = re.search(r"listening on ([\d.]+):(\d+)", line)
        if m:
            addr = (m.group(1), int(m.group(2)))
            break
    if addr is None:
        proc.kill()
        raise RuntimeError("server never announced its port")
    # Leave stderr draining in the background so the server never
    # blocks on a full pipe.
    threading.Thread(target=proc.stderr.read, daemon=True).start()
    return proc, addr


def run_format(fmt: str, env: dict, trace, trace_path: str,
               plain: dict, tmp: str) -> int:
    from repro.io import event_to_dict
    from repro.online import deterministic_metrics

    def deterministic(doc: dict) -> dict:
        doc = deterministic_metrics(doc)
        doc.pop("resumed_at", None)
        return doc

    journal = os.path.join(tmp, f"smoke-async-{fmt}.journal")
    resumed_path = os.path.join(tmp, f"resumed-async-{fmt}.json")
    server, addr = _spawn_server(env, trace_path, journal, fmt)

    batches = [
        [event_to_dict(ev)
         for ev in trace.events[i * FEED_BATCH:(i + 1) * FEED_BATCH]]
        for i in range(BATCHES)
    ]
    order = threading.Lock()     # serializes the globally-ordered feed
    cursor = {"next": 0}
    hold = threading.Event()     # keeps every client connected post-feed
    failures: list[str] = []
    connected = threading.Barrier(CLIENTS + 1, timeout=30)

    def client(i: int) -> None:
        try:
            sock = socket.create_connection(addr, timeout=30)
            f = sock.makefile("rw", encoding="utf-8")
            connected.wait()
            while True:
                with order:
                    j = cursor["next"]
                    if j >= BATCHES:
                        break
                    cursor["next"] = j + 1
                    f.write(json.dumps({"op": "feed", "events": batches[j],
                                        "id": [i, j]}) + "\n")
                    f.flush()
                    resp = json.loads(f.readline())
                    if not resp.get("ok") or resp.get("id") != [i, j]:
                        failures.append(f"client {i} batch {j}: {resp}")
                        break
            hold.wait(30)
            sock.close()
        except Exception as exc:  # noqa: BLE001 — reported below
            failures.append(f"client {i}: {exc!r}")
            hold.set()

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    connected.wait()

    # All 8 clients are connected and fed: the server must report them.
    probe = socket.create_connection(addr, timeout=30)
    pf = probe.makefile("rw", encoding="utf-8")
    while True:  # wait for the feed to finish (acks happen under the
        with order:  # lock, so cursor == BATCHES means all are in)
            if cursor["next"] >= BATCHES or failures:
                break
    pf.write(json.dumps({"op": "stats"}) + "\n")
    pf.flush()
    stats = json.loads(pf.readline())
    server_block = stats["stats"]["server"]
    if failures:
        print(f"FAIL({fmt}): {failures[:3]}")
        server.kill()
        return 1
    if server_block["clients"] < CLIENTS + 1:
        print(f"FAIL({fmt}): expected >= {CLIENTS + 1} connected "
              f"clients, server saw {server_block['clients']}")
        server.kill()
        return 1
    if stats["stats"]["position"] != FED:
        print(f"FAIL({fmt}): expected position {FED}, got "
              f"{stats['stats']['position']}")
        server.kill()
        return 1

    server.send_signal(signal.SIGKILL)
    server.wait()
    hold.set()
    for t in threads:
        t.join(30)
    probe.close()
    print(f"[{fmt}] {CLIENTS} concurrent clients fed {FED}/"
          f"{len(trace.events)} events ({COMMITTED} committed), killed "
          "the async server with SIGKILL")

    subprocess.run(
        [sys.executable, "-m", "repro", "resume", "--journal", journal,
         "-o", resumed_path],
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    with open(resumed_path) as fh:
        resumed = json.load(fh)
    if resumed.get("resumed_at") != COMMITTED:
        print(f"FAIL({fmt}): expected resume at the commit boundary "
              f"{COMMITTED}, got {resumed.get('resumed_at')}")
        return 1
    a, b = deterministic(plain), deterministic(resumed)
    if a != b:
        diff = {k for k in set(a) | set(b) if a.get(k) != b.get(k)}
        print(f"FAIL({fmt}): resumed metrics diverge on {sorted(diff)}")
        for k in sorted(diff):
            print(f"  {k}: plain={a.get(k)!r} resumed={b.get(k)!r}")
        return 1
    print(f"[{fmt}] OK: resume from the torn multi-client journal "
          f"reproduced the uninterrupted replay (profit "
          f"{plain['realized_profit']:.2f}, {plain['accepted']}/"
          f"{plain['arrivals']} accepted)")
    return 0


def main() -> int:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    sys.path.insert(0, src)
    from repro.io import save_trace
    from repro.online import generate_trace

    with tempfile.TemporaryDirectory() as tmp:
        trace = generate_trace("tree", events=EVENTS, process="poisson",
                               seed=31, departure_prob=0.35,
                               workload={"n": 96, "boundary_fraction": 0.1,
                                         "parts": 2})
        trace_path = os.path.join(tmp, "trace.json")
        save_trace(trace, trace_path)
        plain_path = os.path.join(tmp, "plain.json")

        subprocess.run(
            [sys.executable, "-m", "repro", "replay", trace_path,
             "--policy", POLICY, "-o", plain_path],
            env=env, check=True, stdout=subprocess.DEVNULL,
        )
        with open(plain_path) as fh:
            plain = json.load(fh)

        for fmt in ("jsonl", "binary"):
            rc = run_format(fmt, env, trace, trace_path, plain, tmp)
            if rc != 0:
                return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
