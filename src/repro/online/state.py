"""Incremental capacity state for streaming admission control.

:class:`CapacityLedger` is the single mutable structure the online
subsystem maintains.  It builds the vectorized
:class:`~repro.core.conflict.ConflictIndex` over the trace's instance
population **once** — interval geometry on lines, Euler-tour geometry on
trees — and then serves every event with O(path)-amortized operations on
the incremental :class:`~repro.core.conflict.ActiveConflictSet`:

* ``feasible`` — which of a demand's instances fit the residual
  capacity right now (one batched gather/segment-max probe);
* ``admit`` / ``release`` / ``evict`` — scatter-add / scatter-subtract
  of the instance's height along its route;
* ``route_loads`` — the current per-edge loads along a route, which the
  dual-gated policy prices;
* ``holders_on_route`` / ``preemption_plan`` — which admitted demands
  contest a route, and the cheapest-density eviction set that would make
  it feasible (the geometry half of every preemptive policy).

Nothing is ever rebuilt per event; the conflict probes are exactly the
ones the phase-2 engine uses offline, shared through the same index.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..core.conflict import ActiveConflictSet, ConflictIndex
from ..obs.tracing import RECORDER as _REC
from ..core.instance import TreeProblem
from ..core.solution import (
    Solution,
    verify_line_solution,
    verify_tree_solution,
)

__all__ = ["CapacityLedger"]

#: Load-comparison slack, matching the conflict index's blocked test.
_EPS = 1e-9


class CapacityLedger:
    """Admit/release/evict bookkeeping over a fixed instance population.

    Parameters
    ----------
    problem:
        The trace's :class:`~repro.core.instance.TreeProblem` or
        :class:`~repro.core.instance.LineProblem`; its expanded instances
        are the admission candidates.

    Notes
    -----
    A demand is admitted through **one** of its instances (one accessible
    network, one placement).  A demand leaves the admitted set in one of
    two ways, and the profit accounting distinguishes them:

    * a natural **departure** (``release``) keeps its profit — the
      demand was served for its lifetime;
    * a preemptive **eviction** (``evict``) *forfeits* its profit and
      may additionally charge a penalty.

    Either way the demand can never be re-admitted.  Profit is tracked
    with running counters — ``admitted_profit`` (gross),
    ``forfeited_profit`` and ``penalty_paid`` — rather than by summing
    the admission log, which under preemption would overcount:
    ``realized_profit = admitted - forfeited`` and
    ``penalty_adjusted_profit = realized - penalties``.
    """

    def __init__(self, problem, *, index: ConflictIndex | None = None):
        self.problem = problem
        self.instances = problem.instances()
        if index is not None:
            # A prebuilt index over exactly this problem's instance
            # population — e.g. a :meth:`ConflictIndex.sliced` shard view
            # of one shared global build — skips the per-instance
            # geometry loops the from-scratch path pays.
            if len(index._instances) != len(self.instances):
                raise ValueError(
                    f"index covers {len(index._instances)} instances, "
                    f"problem has {len(self.instances)}"
                )
            self.index = index
        else:
            edges_of = [
                frozenset(problem.global_edges_of(d)) for d in self.instances
            ]
            trees = None
            if isinstance(problem, TreeProblem):
                trees = {q: net for q, net in enumerate(problem.networks)}
            #: The shared conflict index (built once; the PR-1 probes).
            self.index = ConflictIndex(self.instances, edges_of, trees=trees)
        self.active = self.index.active_set(capacities=True)
        self._candidates: dict[int, np.ndarray] = {}
        by_demand: dict[int, list[int]] = {}
        for inst in self.instances:
            by_demand.setdefault(inst.demand_id, []).append(inst.instance_id)
        for d, iids in by_demand.items():
            self._candidates[d] = np.asarray(iids, dtype=np.int64)
        self._admitted: dict[int, int] = {}
        self._ever_admitted: set[int] = set()
        self._evicted: set[int] = set()
        #: ``(demand_id, instance_id)`` in admission order; never shrinks.
        self.admission_log: list[tuple[int, int]] = []
        #: ``(demand_id, instance_id)`` in eviction order; never shrinks.
        self.eviction_log: list[tuple[int, int]] = []
        # Running profit counters (see the class Notes): kept incrementally
        # so realized profit stays correct under preemption, where the
        # admission log alone overcounts.
        self._profit_admitted = 0.0
        self._profit_forfeited = 0.0
        self._penalty_paid = 0.0
        # Who currently holds each edge — the reverse map preemptive
        # policies need to find a route's contestants in O(path).
        self._holders_by_edge: list[set[int]] = [
            set() for _ in range(self.index.num_edges)
        ]
        # Static per-instance route geometry as plain Python structures,
        # cached on first use: the preemptive policies walk routes
        # holder-by-holder on every arrival, and repeated ``.tolist()``
        # on the CSR views dominated their hot path.  Route geometry,
        # heights and profits never change, so these never invalidate.
        self._route_edges_cache: dict[int, list[int]] = {}
        self._route_pos_cache: dict[int, dict[int, int]] = {}
        self._route_len_cache: dict[int, int] = {}
        self._density_cache: dict[int, float] = {}
        self._height_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def candidates(self, demand_id: int) -> np.ndarray:
        """Instance ids of ``demand_id`` (one per network × placement)."""
        try:
            return self._candidates[demand_id]
        except KeyError:
            raise KeyError(f"unknown demand {demand_id}") from None

    def feasible(self, iids) -> np.ndarray:
        """Boolean mask: which instances fit the residual capacity now."""
        return ~self.active.blocked_mask(np.asarray(iids, dtype=np.int64))

    def route_loads(self, iid: int) -> np.ndarray:
        """Current load on each edge of instance ``iid``'s route."""
        return self.active.edge_loads(iid)

    def route_length(self, iid: int) -> int:
        """Number of edges on instance ``iid``'s route (at least 1)."""
        n = self._route_len_cache.get(iid)
        if n is None:
            n = max(len(self.index.edges_of(iid)), 1)
            self._route_len_cache[iid] = n
        return n

    def is_admitted(self, demand_id: int) -> bool:
        """Whether the demand is currently in the system."""
        return demand_id in self._admitted

    def was_admitted(self, demand_id: int) -> bool:
        """Whether the demand was ever admitted (even if since gone)."""
        return demand_id in self._ever_admitted

    def was_evicted(self, demand_id: int) -> bool:
        """Whether the demand was preemptively evicted at some point."""
        return demand_id in self._evicted

    def admitted_instance(self, demand_id: int) -> int | None:
        """The instance a currently-admitted demand holds, else ``None``."""
        return self._admitted.get(demand_id)

    def admitted_items(self) -> list[tuple[int, int]]:
        """``(demand_id, instance_id)`` for every currently-admitted
        demand, in ascending demand-id order — the deterministic
        iteration subsystems rebuilding state need (the residual-aware
        batch-resolve and the sharded coordinator)."""
        return sorted(self._admitted.items())

    @property
    def num_admitted(self) -> int:
        """Number of demands currently holding capacity."""
        return len(self._admitted)

    @property
    def num_evicted(self) -> int:
        """Number of evictions performed so far."""
        return len(self.eviction_log)

    @property
    def admitted_profit(self) -> float:
        """Gross profit over every admission ever made."""
        return self._profit_admitted

    @property
    def forfeited_profit(self) -> float:
        """Profit forfeited by evicted demands."""
        return self._profit_forfeited

    @property
    def penalty_paid(self) -> float:
        """Total eviction penalties charged so far."""
        return self._penalty_paid

    @property
    def realized_profit(self) -> float:
        """Profit actually kept: admissions minus eviction forfeits.

        Natural departures keep their profit; evictions do not.
        """
        return self._profit_admitted - self._profit_forfeited

    @property
    def penalty_adjusted_profit(self) -> float:
        """Realized profit minus the eviction penalties paid."""
        return self.realized_profit - self._penalty_paid

    def utilization(self) -> float:
        """Heaviest current edge load (1.0 = some edge fully booked)."""
        return self.active.max_load()

    # ------------------------------------------------------------------
    # Preemption geometry
    # ------------------------------------------------------------------

    def _edge_ids(self, iid: int) -> np.ndarray:
        """Internal edge ids of instance ``iid``'s route (CSR order)."""
        return self.active._edges(iid)

    def _route_edge_list(self, iid: int) -> list[int]:
        """``_edge_ids(iid)`` as a cached Python list (static geometry)."""
        lst = self._route_edges_cache.get(iid)
        if lst is None:
            lst = self._edge_ids(iid).tolist()
            self._route_edges_cache[iid] = lst
        return lst

    def _route_pos(self, iid: int) -> dict[int, int]:
        """Cached ``{edge id -> position}`` map of ``iid``'s route."""
        pos = self._route_pos_cache.get(iid)
        if pos is None:
            pos = {eid: k for k, eid in enumerate(self._route_edge_list(iid))}
            self._route_pos_cache[iid] = pos
        return pos

    def _density(self, iid: int) -> float:
        """Cached profit density (profit / route length) of an instance."""
        d = self._density_cache.get(iid)
        if d is None:
            d = self.instances[iid].profit / self.route_length(iid)
            self._density_cache[iid] = d
        return d

    def _height(self, iid: int) -> float:
        """Cached height of an instance as a Python float."""
        h = self._height_cache.get(iid)
        if h is None:
            h = float(self.index._heights[iid])
            self._height_cache[iid] = h
        return h

    def holders_on_route(self, iid: int) -> set[int]:
        """Currently-admitted demands sharing an edge with ``iid``'s route."""
        holders: set[int] = set()
        for eid in self._route_edge_list(iid):
            holders |= self._holders_by_edge[eid]
        return holders

    def preemption_plan(self, iid: int) -> list[int] | None:
        """The cheapest-density eviction set that makes ``iid`` feasible.

        Walks the route's current holders in ascending profit-density
        order (profit per route edge, ties by demand id) and greedily
        collects victims that still relieve an over-capacity edge, until
        instance ``iid`` fits.  Returns the victim demand ids in eviction
        order — ``[]`` when the route is already feasible, ``None`` when
        even evicting every contestant would not free enough capacity
        (another instance of ``iid``'s own demand can never be a victim,
        since one demand holds at most one instance and an arriving
        demand holds none).

        This is pure geometry: the *economic* test (is the newcomer's
        profit worth the victims'?) belongs to the policies.
        """
        eids = self._edge_ids(iid)
        deficit = self.active._load[eids] + self.index._heights[iid] - 1.0
        if (deficit <= _EPS).all():
            return []
        pos_of = self._route_pos(iid)
        admitted = self._admitted
        holders = sorted(
            self.holders_on_route(iid),
            key=lambda d: (self._density(admitted[d]), d),
        )
        victims: list[int] = []
        for d in holders:
            if (deficit <= _EPS).all():
                break
            v_iid = admitted[d]
            shared = [
                pos_of[eid]
                for eid in self._route_edge_list(v_iid)
                if eid in pos_of
            ]
            if not any(deficit[k] > _EPS for k in shared):
                continue  # only evict holders that relieve a hot edge
            height = self._height(v_iid)
            for k in shared:
                deficit[k] -= height
            victims.append(d)
        if (deficit <= _EPS).all():
            return victims
        return None

    def route_loads_excluding(self, iid: int, victims) -> np.ndarray:
        """``route_loads(iid)`` as they would read after evicting
        ``victims`` — the loads a post-eviction price function sees.

        Kept next to :meth:`preemption_plan` so both use the same
        shared-edge walk and height source; the result is clamped at 0
        against float dust from the subtraction.
        """
        eids = self._edge_ids(iid)
        loads = self.active._load[eids].copy()
        pos_of = self._route_pos(iid)
        for d in victims:
            v_iid = self._admitted[d]
            height = self._height(v_iid)
            for eid in self._route_edge_list(v_iid):
                k = pos_of.get(eid)
                if k is not None:
                    loads[k] -= height
        return np.maximum(loads, 0.0)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def admit(self, iid: int) -> None:
        """Admit one instance; its demand must be new and the route free.

        Raises
        ------
        ValueError
            If the demand was admitted before (even if since departed or
            evicted) or the instance no longer fits the residual
            capacity.
        """
        t0 = time.perf_counter_ns() if _REC.enabled else 0
        demand_id = self.instances[iid].demand_id
        if demand_id in self._ever_admitted:
            raise ValueError(f"demand {demand_id} was already admitted")
        if self.active.blocked(iid):
            raise ValueError(
                f"instance {iid} no longer fits the residual capacity"
            )
        self.active.add(iid)
        self._admitted[demand_id] = iid
        self._ever_admitted.add(demand_id)
        self.admission_log.append((demand_id, iid))
        self._profit_admitted += float(self.instances[iid].profit)
        for eid in self._route_edge_list(iid):
            self._holders_by_edge[eid].add(demand_id)
        if t0:
            _REC.record("ledger.admit", t0, time.perf_counter_ns() - t0,
                        {"demand": demand_id, "instance": iid})

    def try_admit(self, demand_id: int,
                  min_density: float = 0.0) -> int | None:
        """Admit the cheapest feasible instance of a demand, if any.

        Candidates are ranked by route length then instance id, so the
        admission burns as little bandwidth as possible; instances whose
        profit density (profit / route length) falls below
        ``min_density`` are skipped.  Returns the admitted instance id
        or ``None``.  This ranking is *the* first-fit rule — the
        greedy-threshold policy delegates here.
        """
        if demand_id in self._ever_admitted:
            return None
        cands = self.candidates(demand_id)
        ok = self.feasible(cands)
        best = None
        best_key = None
        for iid in cands[ok].tolist():
            length = self.route_length(iid)
            if self._density(iid) < min_density:
                continue
            key = (length, iid)
            if best_key is None or key < best_key:
                best, best_key = iid, key
        if best is None:
            return None
        self.admit(best)
        return best

    def admit_many(self, iids, *, _prechecked: bool = False,
                   _demands: list | None = None,
                   _edges=None, _adds=None) -> None:
        """Admit a batch of instances with *pairwise edge-disjoint*
        routes (the conflict-free-run contract), atomically.

        The whole batch is validated before any state changes — every
        demand new, no demand twice, every route still feasible — so a
        failed admit leaves no half-applied load (the mirror of the
        service ``feed`` op's whole-batch validation contract).  The
        per-admission effects are then applied in batch order: the load
        scatter-add touches each edge position exactly once
        (disjointness), and the profit counter accumulates one add per
        admission in order, exactly the float sequence the scalar
        :meth:`admit` loop performs.

        ``_prechecked`` skips the validation pass; it is reserved for
        the batch decision kernels, which have just computed the same
        feasibility mask the validation would recompute.  ``_demands``,
        ``_edges`` and ``_adds`` likewise let those kernels hand over
        the demand ids and pre-gathered route edges/heights they
        already hold.  External callers get the validating default.

        Raises
        ------
        ValueError
            If any demand was admitted before (or appears twice in the
            batch), or any instance no longer fits the residual
            capacity.  The ledger is untouched in that case.
        """
        arr = np.asarray(iids, dtype=np.int64)
        if len(arr) == 0:
            return
        t0 = time.perf_counter_ns() if _REC.enabled else 0
        demands = (_demands if _demands is not None else
                   [self.instances[iid].demand_id for iid in arr.tolist()])
        if not _prechecked:
            seen: set[int] = set()
            for d in demands:
                if d in self._ever_admitted or d in seen:
                    raise ValueError(f"demand {d} was already admitted")
                seen.add(d)
            idx = self.index
            starts = idx._indptr[arr]
            counts = idx._indptr[arr + 1] - starts
            total = int(counts.sum())
            if total:
                offsets = np.repeat(
                    starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                    counts,
                )
                loads = self.active._load[
                    idx._flat_edges[np.arange(total) + offsets]
                ]
                seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                nonempty = counts > 0
                seg_max = np.zeros(len(arr), dtype=np.float64)
                if nonempty.any():
                    seg_max[nonempty] = np.maximum.reduceat(
                        loads, seg_starts[nonempty]
                    )
                # Empty routes are exempt, matching the single-instance
                # probe :meth:`admit` itself performs.
                bad = (seg_max + idx._heights[arr] > 1.0 + 1e-9) & nonempty
                if bad.any():
                    culprit = int(arr[bad][0])
                    raise ValueError(
                        f"instance {culprit} no longer fits the residual "
                        f"capacity"
                    )
        # Validation passed — apply.  add_all performs the batched
        # scatter-add (bit-identical to per-instance adds on disjoint
        # routes) plus the demand-used/member bookkeeping.
        self.active.add_all(arr, _edges=_edges, _adds=_adds)
        for iid, d in zip(arr.tolist(), demands):
            self._admitted[d] = iid
            self._ever_admitted.add(d)
            self.admission_log.append((d, iid))
            # repro: noqa[CERT001] -- deliberate += in admission order:
            # the batch must bit-match the scalar loop's per-event
            # accumulation, which fsum's exact rounding would not.
            self._profit_admitted += float(self.instances[iid].profit)
            for eid in self._route_edge_list(iid):
                self._holders_by_edge[eid].add(d)
        if t0:
            _REC.record("ledger.admit_many", t0,
                        time.perf_counter_ns() - t0,
                        {"admitted": len(arr)})

    def release_many(self, demand_ids, *, _disjoint: bool = False) -> list[int]:
        """Release a batch of departed demands; returns their instances.

        The whole batch is validated first (every demand currently
        admitted), so a bad entry leaves the ledger untouched.  The
        load subtraction runs as one ``np.subtract.at`` over the
        concatenated routes — the index array is in batch order, and
        ``ufunc.at`` applies updates in index order, so the float
        sequence per edge is exactly the scalar per-demand loop's.
        ``_disjoint`` (fast-path internal) promises the released routes
        are pairwise edge-disjoint, so the scatter touches each position
        once and a plain fancy subtract performs the identical single
        float subtraction per edge.
        """
        dlist = [int(d) for d in demand_ids]
        iids = []
        for d in dlist:
            iid = self._admitted.get(d)
            if iid is None:
                raise KeyError(f"demand {d} is not admitted")
            iids.append(iid)
        if not iids:
            return []
        t0 = time.perf_counter_ns() if _REC.enabled else 0
        idx = self.index
        arr = np.asarray(iids, dtype=np.int64)
        starts = idx._indptr[arr]
        counts = idx._indptr[arr + 1] - starts
        total = int(counts.sum())
        if total:
            rel = np.zeros(len(arr), dtype=np.int64)
            np.cumsum(counts[:-1], out=rel[1:])
            offsets = np.repeat(starts - rel, counts)
            edges = idx._flat_edges[np.arange(total) + offsets]
            subs = np.repeat(idx._heights[arr], counts)
            if _disjoint:
                self.active._load[edges] -= subs
            else:
                np.subtract.at(self.active._load, edges, subs)
        self.active._demand_used[idx._dix[arr]] = False
        for d, iid in zip(dlist, iids):
            del self._admitted[d]
            self.active._members.discard(iid)
            for eid in self._route_edge_list(iid):
                self._holders_by_edge[eid].discard(d)
        if t0:
            _REC.record("ledger.release_many", t0,
                        time.perf_counter_ns() - t0,
                        {"released": len(dlist)})
        return iids

    def _remove(self, demand_id: int) -> int:
        """Drop a demand from the admitted set and the holder map."""
        try:
            iid = self._admitted.pop(demand_id)
        except KeyError:
            raise KeyError(f"demand {demand_id} is not admitted") from None
        self.active.remove(iid)
        for eid in self._route_edge_list(iid):
            self._holders_by_edge[eid].discard(demand_id)
        return iid

    def release(self, demand_id: int) -> int:
        """Release a departed demand's capacity; returns its instance id.

        A natural departure: the demand keeps its profit.
        """
        return self._remove(demand_id)

    def withdraw(self, demand_id: int) -> int:
        """Undo an admission as if it never happened; returns its instance.

        The two-phase-commit rollback the sharded coordinator needs: a
        tentative admission in one capacity view is withdrawn when
        another view refuses it.  Unlike :meth:`release` (a served
        departure, profit kept) and :meth:`evict` (a forfeited
        preemption), a withdrawal erases the admission entirely — the
        admission-log entry is removed, the profit counter is rolled
        back, and the demand may be admitted again later.

        Raises
        ------
        KeyError
            If the demand is not currently admitted.
        """
        iid = self._remove(demand_id)
        self._ever_admitted.discard(demand_id)
        for k in range(len(self.admission_log) - 1, -1, -1):
            if self.admission_log[k][0] == demand_id:
                del self.admission_log[k]
                break
        self._profit_admitted -= float(self.instances[iid].profit)
        return iid

    def evict(self, demand_id: int, penalty: float = 0.0) -> int:
        """Preemptively evict an admitted demand; returns its instance id.

        The demand's capacity is released, its profit is *forfeited*
        (subtracted from :attr:`realized_profit`), ``penalty`` is added
        to :attr:`penalty_paid`, and the eviction is recorded in
        :attr:`eviction_log`.  An evicted demand can never be
        re-admitted.

        Raises
        ------
        KeyError
            If the demand is not currently admitted.
        ValueError
            If ``penalty`` is negative.
        """
        if penalty < 0:
            raise ValueError(f"penalty must be >= 0, got {penalty}")
        t0 = time.perf_counter_ns() if _REC.enabled else 0
        iid = self._remove(demand_id)
        self._evicted.add(demand_id)
        self.eviction_log.append((demand_id, iid))
        self._profit_forfeited += float(self.instances[iid].profit)
        self._penalty_paid += float(penalty)
        if t0:
            _REC.record("ledger.evict", t0, time.perf_counter_ns() - t0,
                        {"demand": demand_id, "instance": iid})
        return iid

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe snapshot of every mutable field, bit-exact.

        The per-edge loads are stored **verbatim** rather than
        recomputed from the admitted set on restore: re-adding heights
        would replay a *different* float accumulation order, and the
        policies' price functions (``max_gate``, the dual certificate)
        would drift off the uninterrupted run.  Python's JSON float
        round-trip is exact (shortest-repr), so ``tolist`` → restore is
        lossless.
        """
        return {
            "load": self.active._load.tolist(),
            "admitted": [[d, i] for d, i in sorted(self._admitted.items())],
            "ever_admitted": sorted(self._ever_admitted),
            "evicted": sorted(self._evicted),
            "admission_log": [[d, i] for d, i in self.admission_log],
            "eviction_log": [[d, i] for d, i in self.eviction_log],
            "penalty_paid": self._penalty_paid,
        }

    def restore_state(self, state: dict) -> None:
        """Reset a freshly-built ledger to an :meth:`export_state` snapshot.

        The profit counters are *re-accumulated* from the logs in their
        original order — one add per entry, the exact float sequence the
        live run performed — so they land on identical bits without
        being stored.
        """
        self.active._load[:] = np.asarray(state["load"], dtype=np.float64)
        self._admitted = {int(d): int(i) for d, i in state["admitted"]}
        self._ever_admitted = {int(d) for d in state["ever_admitted"]}
        self._evicted = {int(d) for d in state["evicted"]}
        self.admission_log = [(int(d), int(i))
                              for d, i in state["admission_log"]]
        self.eviction_log = [(int(d), int(i))
                             for d, i in state["eviction_log"]]
        self._profit_admitted = 0.0
        for _, iid in self.admission_log:
            # repro: noqa[CERT001] -- deliberate += in original event
            # order: a restore must bit-match the live per-event
            # accumulation, which fsum's exact rounding would not.
            self._profit_admitted += float(self.instances[iid].profit)
        self._profit_forfeited = 0.0
        for _, iid in self.eviction_log:
            # repro: noqa[CERT001] -- same: replays the live += rounding
            # so a warm restart is byte-identical to the original run.
            self._profit_forfeited += float(self.instances[iid].profit)
        self._penalty_paid = float(state["penalty_paid"])
        members = set(self._admitted.values())
        self.active._members = members
        self.active._demand_used[:] = False
        for iid in members:
            self.active._demand_used[self.index._dix[iid]] = True
        for holders in self._holders_by_edge:
            holders.clear()
        for d, iid in self._admitted.items():
            for eid in self._route_edge_list(iid):
                self._holders_by_edge[eid].add(d)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def snapshot(self) -> Solution:
        """The currently-admitted instances as a :class:`Solution`."""
        selected = [self.instances[iid] for iid in self._admitted.values()]
        return Solution(
            selected=selected,
            stats={"algorithm": "online-ledger", "admitted": len(selected)},
        )

    def verify(self) -> None:
        """Re-check the current admitted set from first principles.

        Beyond the feasibility re-verification, the profit counters are
        checked against the logs: realized profit must equal the
        admission-log sum minus the eviction-log sum.
        """
        sol = self.snapshot()
        if isinstance(self.problem, TreeProblem):
            verify_tree_solution(self.problem, sol, unit_height=False)
        else:
            verify_line_solution(self.problem, sol, unit_height=False)
        log_sum = math.fsum(self.instances[iid].profit
                            for _, iid in self.admission_log)
        evict_sum = math.fsum(self.instances[iid].profit
                              for _, iid in self.eviction_log)
        if abs((log_sum - evict_sum) - self.realized_profit) > 1e-6:
            raise AssertionError(
                "profit counters drifted from the admission/eviction logs: "
                f"{log_sum} - {evict_sum} != {self.realized_profit}"
            )
