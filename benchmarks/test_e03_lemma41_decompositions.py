"""E3 (Lemma 4.1, Figures 3–6): tree-decomposition quality.

Regenerates the Section 4 comparison: root-fixing (θ=1, depth up to n),
balancing (depth ≤ ⌈log n⌉+1, θ up to the depth), ideal (θ ≤ 2,
depth ≤ 2⌈log n⌉+1) across topologies and sizes.  The shape claim is the
paper's: only the ideal decomposition keeps *both* parameters small.
"""

from __future__ import annotations

import math

from repro import (
    balancing_decomposition,
    ideal_decomposition,
    make_tree,
    root_fixing_decomposition,
)
from repro.decomposition.validate import check_tree_decomposition

from common import emit

SIZES = [16, 64, 256, 1024]
TOPOLOGIES = ["path", "caterpillar", "binary", "random"]


def run_experiment():
    rows = []
    results = {}
    for topo in TOPOLOGIES:
        for n in SIZES:
            t = make_tree(n, topo, seed=7)
            per = {}
            for builder, name in [
                (root_fixing_decomposition, "root-fix"),
                (balancing_decomposition, "balance"),
                (ideal_decomposition, "ideal"),
            ]:
                td = builder(t)
                if n <= 256:
                    check_tree_decomposition(td)
                per[name] = (td.max_depth, td.pivot_size)
            results[(topo, n)] = per
            rows.append(
                [
                    topo,
                    n,
                    f"{per['root-fix'][0]}/{per['root-fix'][1]}",
                    f"{per['balance'][0]}/{per['balance'][1]}",
                    f"{per['ideal'][0]}/{per['ideal'][1]}",
                    2 * math.ceil(math.log2(n)) + 1,
                ]
            )
    emit(
        "E03",
        "Tree decompositions: depth/pivot by construction (Lemma 4.1)",
        ["topology", "n", "root-fix d/θ", "balance d/θ", "ideal d/θ",
         "2⌈log n⌉+1"],
        rows,
        notes=(
            "Paper: root-fixing has θ=1 but depth up to n; balancing has "
            "depth ≤ ⌈log n⌉+1 but growing θ; the ideal decomposition has "
            "θ ≤ 2 AND depth O(log n) (Lemma 4.1)."
        ),
    )
    return results


def test_lemma41_decomposition_quality(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for (topo, n), per in results.items():
        # Root-fixing: pivot exactly ≤ 1; path depth hits n when rooted at 0.
        assert per["root-fix"][1] <= 1
        # Balancing: logarithmic depth.
        assert per["balance"][0] <= math.ceil(math.log2(n)) + 1
        # Ideal: Lemma 4.1's joint bound.
        assert per["ideal"][1] <= 2
        assert per["ideal"][0] <= 2 * math.ceil(math.log2(n)) + 1
    # The paper's motivating gap: on a path rooted at an end, root-fixing
    # depth is n while ideal stays logarithmic.
    assert results[("path", 1024)]["root-fix"][0] == 1024
    assert results[("path", 1024)]["ideal"][0] <= 21
