"""Regenerate the pinned replay-regression corpus under ``tests/data/``.

The corpus pins three small saved traces (bursty line, poisson tree,
diurnal line) plus the exact replay outcome of every admission policy on
each of them (``corpus_expected.json``).  ``test_trace_corpus.py``
replays the saved traces in CI and compares against the pinned numbers,
so any change to policy profit/eviction behaviour is change-detected
rather than silently absorbed.

Run from the repo root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/make_trace_corpus.py

and commit the refreshed JSON together with the change that caused it.
"""

from __future__ import annotations

import json
import pathlib

from repro.io import save_trace
from repro.online import generate_trace, make_policy, replay

DATA_DIR = pathlib.Path(__file__).parent / "data"

#: (file stem, generate_trace keyword arguments) for each pinned trace.
TRACES = [
    ("trace_bursty_line",
     dict(kind="line", events=160, process="bursty", seed=3,
          departure_prob=0.3)),
    ("trace_poisson_tree",
     dict(kind="tree", events=120, process="poisson", seed=5,
          departure_prob=0.3, workload={"n": 64})),
    ("trace_diurnal_line",
     dict(kind="line", events=140, process="diurnal", seed=2,
          departure_prob=0.4)),
]

#: (policy name, constructor kwargs) replayed on every pinned trace.
POLICIES = [
    ("greedy-threshold", {}),
    ("dual-gated", {}),
    ("batch-resolve", {"solver": "greedy", "resolve_every": 32}),
    ("preempt-density", {"factor": 1.2}),
    ("preempt-dual-gated", {"penalty": 0.1}),
]


def build_corpus() -> dict:
    """(Re)write the trace JSONs; return the expected-outcome document."""
    DATA_DIR.mkdir(exist_ok=True)
    expected: dict = {}
    for stem, kwargs in TRACES:
        trace = generate_trace(**kwargs)
        save_trace(trace, str(DATA_DIR / f"{stem}.json"))
        expected[stem] = {}
        for name, params in POLICIES:
            result = replay(trace, make_policy(name, **params))
            m = result.metrics
            expected[stem][name] = {
                "params": params,
                "accepted": m.accepted,
                "evictions": m.evictions,
                "realized_profit": m.realized_profit,
                "forfeited_profit": m.forfeited_profit,
                "penalty_paid": m.penalty_paid,
                "penalty_adjusted_profit": m.penalty_adjusted_profit,
            }
    return expected


def main() -> int:
    expected = build_corpus()
    out = DATA_DIR / "corpus_expected.json"
    with open(out, "w") as fh:
        json.dump(expected, fh, indent=1, sort_keys=True)
    for stem, policies in expected.items():
        print(stem)
        for name, rec in policies.items():
            print(f"  {name:<19} profit {rec['realized_profit']:8.2f}  "
                  f"adj {rec['penalty_adjusted_profit']:8.2f}  "
                  f"evict {rec['evictions']}")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
