"""End-to-end tests of the tree-network solvers against exact optima.

Every theorem bound is asserted against the MILP optimum (or the LP
relaxation upper bound, which is stricter on the algorithm).
"""

from __future__ import annotations

import pytest

from repro import (
    balancing_decomposition,
    lp_upper_bound,
    random_tree_problem,
    root_fixing_decomposition,
    solve_optimal,
    solve_sequential_tree,
    solve_tree_arbitrary,
    solve_tree_narrow,
    solve_tree_unit,
    verify_tree_solution,
)

from tests.helpers import assert_bound


class TestTreeUnit:
    @pytest.mark.parametrize("seed", range(6))
    def test_theorem53_bound(self, seed):
        """(7+ε): profit ≥ OPT/(7+ε) on random multi-tree instances."""
        p = random_tree_problem(n=18, m=12, r=2, seed=seed)
        eps = 0.1
        sol = solve_tree_unit(p, epsilon=eps, seed=seed)
        verify_tree_solution(p, sol, unit_height=True)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 7 / (1 - eps), f"seed {seed}")

    def test_bound_vs_lp(self):
        p = random_tree_problem(n=30, m=25, r=3, seed=42)
        sol = solve_tree_unit(p, epsilon=0.1, seed=1)
        lp = lp_upper_bound(p)
        assert_bound(sol.profit, lp, 7 / 0.9, "vs LP")

    def test_stats_contract(self):
        p = random_tree_problem(n=16, m=10, r=1, seed=3)
        sol = solve_tree_unit(p, epsilon=0.2, seed=2)
        for key in ("delta", "total_rounds", "realized_lambda",
                    "opt_upper_bound", "approx_guarantee", "steps"):
            assert key in sol.stats
        assert sol.stats["delta"] <= 6
        assert sol.stats["realized_lambda"] >= 0.8 - 1e-9

    @pytest.mark.parametrize(
        "decomposition", [root_fixing_decomposition, balancing_decomposition]
    )
    def test_decomposition_ablation_still_feasible(self, decomposition):
        p = random_tree_problem(n=20, m=14, r=2, seed=5)
        sol = solve_tree_unit(p, epsilon=0.2, seed=3, decomposition=decomposition)
        verify_tree_solution(p, sol, unit_height=True)
        opt = solve_optimal(p)
        # Lemma 3.1 with the ablated decomposition's own ∆.
        delta = sol.stats["delta"]
        assert_bound(sol.profit, opt.profit, (delta + 1) / 0.8)

    def test_restricted_access(self):
        p = random_tree_problem(n=16, m=12, r=3, seed=7, access_prob=0.5)
        sol = solve_tree_unit(p, epsilon=0.2, seed=4)
        verify_tree_solution(p, sol, unit_height=True)

    def test_single_demand(self):
        p = random_tree_problem(n=8, m=1, r=1, seed=8)
        sol = solve_tree_unit(p, epsilon=0.2, seed=5)
        assert sol.size == 1  # nothing blocks the only demand

    def test_deterministic_with_greedy_mis(self):
        p = random_tree_problem(n=16, m=12, r=2, seed=9)
        a = solve_tree_unit(p, epsilon=0.2, mis="greedy")
        b = solve_tree_unit(p, epsilon=0.2, mis="greedy")
        assert [d.instance_id for d in a.selected] == [
            d.instance_id for d in b.selected
        ]


class TestTreeArbitrary:
    @pytest.mark.parametrize("regime", ["mixed", "narrow", "wide", "bimodal"])
    def test_theorem63_bound(self, regime):
        p = random_tree_problem(n=16, m=12, r=2, seed=11,
                                height_regime=regime, hmin=0.1)
        eps = 0.1
        sol = solve_tree_arbitrary(p, epsilon=eps, seed=1)
        verify_tree_solution(p, sol, unit_height=False)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 80 / (1 - eps), regime)

    def test_narrow_only_lemma62(self):
        p = random_tree_problem(n=16, m=12, r=1, seed=13,
                                height_regime="narrow", hmin=0.15)
        eps = 0.15
        sol = solve_tree_narrow(p, epsilon=eps, seed=2)
        verify_tree_solution(p, sol, unit_height=False)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 73 / (1 - eps))

    def test_narrow_solver_ignores_wide(self):
        p = random_tree_problem(n=14, m=10, r=1, seed=14, height_regime="wide")
        sol = solve_tree_narrow(p, epsilon=0.2)
        assert sol.size == 0

    def test_wide_only_uses_unit_path(self):
        p = random_tree_problem(n=14, m=10, r=2, seed=15, height_regime="wide")
        sol = solve_tree_arbitrary(p, epsilon=0.2, seed=3)
        verify_tree_solution(p, sol, unit_height=False)
        opt = solve_optimal(p)
        # Wide-only: effectively the (7+ε) algorithm.
        assert_bound(sol.profit, opt.profit, 7 / 0.8)

    def test_combiner_keeps_one_instance_per_demand(self):
        p = random_tree_problem(n=18, m=14, r=3, seed=16, height_regime="bimodal")
        sol = solve_tree_arbitrary(p, epsilon=0.2, seed=4)
        ids = [d.demand_id for d in sol.selected]
        assert len(ids) == len(set(ids))


class TestSequential:
    @pytest.mark.parametrize("seed", range(4))
    def test_three_approx_multi_tree(self, seed):
        p = random_tree_problem(n=16, m=12, r=3, seed=seed)
        sol = solve_sequential_tree(p)
        verify_tree_solution(p, sol, unit_height=True)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 3.0, f"seed {seed}")

    @pytest.mark.parametrize("seed", range(4))
    def test_two_approx_single_tree(self, seed):
        p = random_tree_problem(n=16, m=12, r=1, seed=seed + 20)
        sol = solve_sequential_tree(p)
        assert sol.stats["raise_alpha"] is False
        verify_tree_solution(p, sol, unit_height=True)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 2.0, f"seed {seed}")

    def test_lambda_is_one(self):
        p = random_tree_problem(n=14, m=10, r=2, seed=30)
        sol = solve_sequential_tree(p)
        assert sol.stats["realized_lambda"] >= 1.0 - 1e-9

    def test_round_cost_linear(self):
        """The sequential algorithm's steps grow with the raised-instance
        count (why Section 5 parallelises it)."""
        p = random_tree_problem(n=30, m=40, r=1, seed=31)
        sol = solve_sequential_tree(p)
        assert sol.stats["steps"] >= sol.size
