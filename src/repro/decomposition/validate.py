"""Independent validators for the Section 4 constructions.

These re-check the defining properties from first principles (brute
force where needed) so the constructions in this package are never graded
by their own bookkeeping.  Used heavily in the test suite and by the
decomposition benchmarks.
"""

from __future__ import annotations

from typing import Callable

from .base import TreeDecomposition
from .layered import LayeredDecomposition

__all__ = [
    "check_tree_decomposition",
    "check_layered_decomposition",
    "brute_force_chi",
]


def check_tree_decomposition(td: TreeDecomposition) -> None:
    """Assert both defining properties of Section 4.1.

    * component property: every ``C(z)`` induces a connected subtree;
    * separation property: the pieces of ``C(z) \\ z`` are exactly the
      child components ``C(z_1), …, C(z_s)`` — which implies the LCA
      property (any path between different child components passes
      ``z``).

    Raises
    ------
    AssertionError
        On any violation, with a message naming the offending node.
    """
    tree = td.tree
    for z in range(tree.n):
        comp = td.component(z)
        if not tree.is_component(comp):
            raise AssertionError(
                f"C({z}) = {sorted(comp)} is not connected in T "
                f"({td.name})"
            )
        if len(comp) > 1:
            pieces = tree.split_component(z, comp)
            child_comps = {frozenset(td.component(c)) for c in td.children[z]}
            if set(map(frozenset, pieces)) != child_comps or len(child_comps) != len(
                td.children[z]
            ):
                raise AssertionError(
                    f"pieces of C({z}) \\ {z} disagree with the child "
                    f"components ({td.name})"
                )


def brute_force_chi(td: TreeDecomposition, z: int) -> tuple[int, ...]:
    """``χ(z)`` computed directly as ``Γ[C(z)]`` (no edge-walk shortcut)."""
    comp = td.component(z)
    return tuple(sorted(td.tree.component_neighbors(comp)))


def check_pivot_sets(td: TreeDecomposition) -> None:
    """Assert the fast ``χ`` computation matches the brute-force one."""
    for z in range(td.tree.n):
        fast = td.chi(z)
        slow = brute_force_chi(td, z)
        if fast != slow:
            raise AssertionError(
                f"χ({z}) mismatch ({td.name}): fast {fast} vs brute {slow}"
            )


def check_layered_decomposition(
    ld: LayeredDecomposition,
    edges_of: dict[int, frozenset],
    *,
    overlap: Callable[[int, int], bool] | None = None,
) -> None:
    """Assert the layered-decomposition property (Section 4.4).

    For every ``i ≤ j`` and overlapping ``d1 ∈ G_i``, ``d2 ∈ G_j``:
    ``path(d2)`` must contain a critical edge of ``d1``.  ``edges_of``
    maps instance id → the *local* edge set of its route (same key space
    as ``ld.critical``); ``overlap`` defaults to edge-set intersection.

    Also asserts ``π(d) ⊆ path(d)`` and that every instance appears in
    exactly one group.

    Raises
    ------
    AssertionError
        On any violation, naming the offending pair.
    """
    seen: set[int] = set()
    for grp in ld.groups:
        for iid in grp:
            if iid in seen:
                raise AssertionError(f"instance {iid} appears in two groups")
            seen.add(iid)
            if iid not in ld.critical:
                raise AssertionError(f"instance {iid} has no critical set")
            if not set(ld.critical[iid]) <= set(edges_of[iid]):
                raise AssertionError(
                    f"critical edges of {iid} are not all on its route"
                )
    if seen != set(edges_of):
        missing = set(edges_of) - seen
        raise AssertionError(f"instances missing from the layering: {missing}")

    if overlap is None:
        def overlap(a: int, b: int) -> bool:
            return bool(edges_of[a] & edges_of[b])

    flat: list[tuple[int, int]] = []  # (group index, iid)
    for k, grp in enumerate(ld.groups):
        flat.extend((k, iid) for iid in grp)
    for ai in range(len(flat)):
        gi, d1 = flat[ai]
        crit1 = set(ld.critical[d1])
        for bi in range(len(flat)):
            gj, d2 = flat[bi]
            if gj < gi or d1 == d2:
                continue
            if overlap(d1, d2) and not (crit1 & edges_of[d2]):
                raise AssertionError(
                    f"interference violated: d1={d1} (G{gi + 1}) overlaps "
                    f"d2={d2} (G{gj + 1}) but path(d2) misses π(d1)={crit1}"
                )
