"""Online admission control: streaming arrivals over the offline core.

The offline solvers admit a profit-maximizing subset of a *frozen*
demand population; this package replays the same populations as event
streams — arrivals, departures, clock ticks — through pluggable
admission policies over an incremental capacity ledger, and scores them
against the offline optimum of the identical workload.

Layering (bottom-up):

* :mod:`~repro.online.events` — Arrival/Departure/Tick, seeded Poisson /
  bursty / diurnal trace generators (serialization in :mod:`repro.io`);
* :mod:`~repro.online.state` — :class:`CapacityLedger`, O(path) admit /
  release on the shared vectorized conflict index;
* :mod:`~repro.online.policies` — ``greedy-threshold``, ``dual-gated``,
  ``batch-resolve``, plus the preemptive ``preempt-density`` and
  ``preempt-dual-gated`` (eviction with profit forfeiture and optional
  penalties);
* :mod:`~repro.online.fastpath` — the columnar batch-decision fast
  path: conflict-free run segmentation plus vectorized kernels for
  ``greedy-threshold`` and ``dual-gated``, byte-identical to the scalar
  loop;
* :mod:`~repro.online.driver` / :mod:`~repro.online.metrics` — the
  replay loop, acceptance/profit/latency metrics, offline benchmarks.
"""

from .driver import ReplayResult, replay
from .events import (
    ARRIVAL_PROCESSES,
    Arrival,
    Departure,
    EventTrace,
    Tick,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    poisson_trace,
)
from .fastpath import (
    DemandGeometry,
    TraceArrays,
    conflict_free_runs,
    geometry_of,
)
from .metrics import (
    TIMING_FIELDS,
    ReplayMetrics,
    deterministic_metrics,
    latency_percentiles,
    offline_optimum,
    with_offline,
)
from .policies import (
    POLICY_NAMES,
    AdmissionPolicy,
    BatchResolve,
    DualGated,
    GreedyThreshold,
    PreemptDensity,
    PreemptDualGated,
    make_policy,
)
from .state import CapacityLedger

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionPolicy",
    "Arrival",
    "BatchResolve",
    "CapacityLedger",
    "DemandGeometry",
    "Departure",
    "DualGated",
    "EventTrace",
    "GreedyThreshold",
    "POLICY_NAMES",
    "PreemptDensity",
    "PreemptDualGated",
    "ReplayMetrics",
    "ReplayResult",
    "TIMING_FIELDS",
    "Tick",
    "TraceArrays",
    "bursty_trace",
    "conflict_free_runs",
    "deterministic_metrics",
    "diurnal_trace",
    "generate_trace",
    "geometry_of",
    "latency_percentiles",
    "make_policy",
    "offline_optimum",
    "poisson_trace",
    "replay",
    "with_offline",
]
