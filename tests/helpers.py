"""Assertion helpers plus the *scalar reference implementation*.

The classes below are a faithful copy of the pre-vectorization engine
core (per-pair conflict loops, per-edge dict-based duals, from-scratch
second phase).  They are retained for two purposes:

* the randomized cross-check suite (`tests/test_cross_check.py`) asserts
  the vectorized engine returns byte-identical selected sets and profits;
* the hot-path micro-benchmark (`benchmarks/bench_hot_path.py`) measures
  the vectorized speedup against this baseline.

Do not "improve" these classes — their value is being frozen.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.distributed.mis import greedy_mis, luby_mis, priority_mis


def assert_bound(profit: float, opt: float, bound: float, label: str = "") -> None:
    """Assert the approximation guarantee ``profit ≥ opt / bound``."""
    assert profit >= opt / bound - 1e-9, (
        f"{label}: profit {profit} < OPT {opt} / bound {bound}"
    )


# ----------------------------------------------------------------------
# Scalar conflict index (pre-refactor core/conflict.py)
# ----------------------------------------------------------------------


class ScalarConflictIndex:
    """Bucket-based conflict queries with per-pair Python loops."""

    def __init__(self, instances: Sequence, global_edges: Sequence[Sequence]):
        self._instances = list(instances)
        self._edges_of = [frozenset(ge) for ge in global_edges]
        self._by_demand: dict[int, list[int]] = {}
        self._by_edge: dict[object, list[int]] = {}
        for pos, (inst, ge) in enumerate(zip(self._instances, self._edges_of)):
            self._by_demand.setdefault(inst.demand_id, []).append(pos)
            for e in ge:
                self._by_edge.setdefault(e, []).append(pos)

    def __len__(self) -> int:
        return len(self._instances)

    def edges_of(self, iid: int) -> frozenset:
        return self._edges_of[iid]

    def conflicting(self, a: int, b: int) -> bool:
        if a == b:
            return False
        ia, ib = self._instances[a], self._instances[b]
        if ia.demand_id == ib.demand_id:
            return True
        if ia.network_id != ib.network_id:
            return False
        ea, eb = self._edges_of[a], self._edges_of[b]
        if len(ea) > len(eb):
            ea, eb = eb, ea
        return any(e in eb for e in ea)

    def neighbors(self, iid: int, population: set[int] | None = None) -> set[int]:
        inst = self._instances[iid]
        out: set[int] = set()
        for other in self._by_demand[inst.demand_id]:
            if other != iid and (population is None or other in population):
                out.add(other)
        for e in self._edges_of[iid]:
            for other in self._by_edge[e]:
                if other != iid and (population is None or other in population):
                    out.add(other)
        return out

    def subgraph(self, population: Iterable[int]):
        pop = set(population)
        return {iid: self.neighbors(iid, pop) for iid in pop}


# ----------------------------------------------------------------------
# Scalar dual store (pre-refactor core/duals.py)
# ----------------------------------------------------------------------


class ScalarDualState:
    """Sparse dict-backed ``(alpha, beta)`` with per-edge raise loops."""

    def __init__(
        self,
        profits: Sequence[float],
        heights: Sequence[float],
        demand_of: Sequence[int],
        edges_of: Sequence[Iterable],
    ):
        self.profits = [float(p) for p in profits]
        self.heights = [float(h) for h in heights]
        self.demand_of = list(demand_of)
        self.edges_of = [tuple(e) for e in edges_of]
        self.alpha: dict[int, float] = {}
        self.beta: dict[object, float] = {}
        self.raise_log: list[tuple[int, float, tuple, float]] = []

    def lhs(self, iid: int) -> float:
        beta_sum = 0.0
        beta = self.beta
        for e in self.edges_of[iid]:
            b = beta.get(e)
            if b is not None:
                beta_sum += b
        return self.alpha.get(self.demand_of[iid], 0.0) + self.heights[iid] * beta_sum

    def slack(self, iid: int) -> float:
        return self.profits[iid] - self.lhs(iid)

    def raise_unit(self, iid: int, critical: Sequence, include_alpha: bool = True) -> float:
        s = self.slack(iid)
        if s <= 0:
            return 0.0
        denom = len(critical) + (1 if include_alpha else 0)
        delta = s / denom
        if include_alpha:
            a = self.demand_of[iid]
            self.alpha[a] = self.alpha.get(a, 0.0) + delta
        for e in critical:
            self.beta[e] = self.beta.get(e, 0.0) + delta
        self.raise_log.append((iid, delta, tuple(critical), delta))
        return delta

    def raise_narrow(self, iid: int, critical: Sequence) -> float:
        s = self.slack(iid)
        if s <= 0:
            return 0.0
        k = len(critical)
        h = self.heights[iid]
        delta = s / (1.0 + 2.0 * h * k * k)
        a = self.demand_of[iid]
        self.alpha[a] = self.alpha.get(a, 0.0) + delta
        bump = 2.0 * k * delta
        for e in critical:
            self.beta[e] = self.beta.get(e, 0.0) + bump
        self.raise_log.append((iid, delta, tuple(critical), bump))
        return delta

    def objective(self) -> float:
        return sum(self.alpha.values()) + sum(self.beta.values())

    def realized_lambda(self, population: Iterable[int] | None = None) -> float:
        iids = population if population is not None else range(len(self.profits))
        lam = 1.0
        for iid in iids:
            lam = min(lam, self.lhs(iid) / self.profits[iid])
        return lam


# ----------------------------------------------------------------------
# Scalar two-phase engine (pre-refactor algorithms/framework.py core loop)
# ----------------------------------------------------------------------

_EPS = 1e-12


class ScalarTwoPhaseEngine:
    """Reference run of the two-phase framework, entirely scalar.

    Accepts the same ``EngineInput``/``EngineConfig`` the production
    engine takes, so the cross-check can run both off one compile.
    """

    def __init__(self, inp, config):
        self.inp = inp
        self.cfg = config
        self.conflicts = ScalarConflictIndex(inp.instances, inp.edges_of)
        self.duals = ScalarDualState(
            [d.profit for d in inp.instances],
            [d.height for d in inp.instances],
            [d.demand_id for d in inp.instances],
            inp.edges_of,
        )
        self._rng = np.random.default_rng(config.seed)

    def _stage_targets(self) -> list[float]:
        from repro.algorithms.framework import narrow_xi, stage_count, unit_xi

        cfg = self.cfg
        if cfg.single_stage_target is not None:
            return [cfg.single_stage_target]
        xi = cfg.xi
        if xi is None:
            xi = (
                unit_xi(self.inp.delta)
                if cfg.rule == "unit"
                else narrow_xi(self.inp.delta, cfg.hmin)
            )
        b = stage_count(xi, cfg.epsilon)
        return [1.0 - xi**j for j in range(1, b + 1)]

    def _mis(self, population: set[int]) -> tuple[set[int], int]:
        adj = self.conflicts.subgraph(population)
        if self.cfg.mis == "greedy":
            return greedy_mis(adj)
        if self.cfg.mis == "priority":
            return priority_mis(adj)
        return luby_mis(adj, self._rng)

    def run(self) -> tuple[list, dict]:
        targets = self._stage_targets()
        stack: list[list[int]] = []
        duals = self.duals
        if self.cfg.rule == "unit":
            include_alpha = self.cfg.raise_alpha
            raise_fn = lambda iid, crit: duals.raise_unit(iid, crit, include_alpha)
        else:
            raise_fn = duals.raise_narrow
        critical = self.inp.critical
        steps = 0

        for group in self.inp.groups:
            if not group:
                continue
            for target in targets:
                while True:
                    unsat = {
                        iid
                        for iid in group
                        if duals.lhs(iid) < target * duals.profits[iid] - _EPS
                    }
                    if not unsat:
                        break
                    mis, _rounds = self._mis(unsat)
                    for iid in mis:
                        raise_fn(iid, critical[iid])
                    stack.append(sorted(mis))
                    steps += 1

        selected = self._second_phase(stack)
        stats = {
            "steps": steps,
            "dual_objective": duals.objective(),
            "realized_lambda": duals.realized_lambda(),
        }
        return selected, stats

    def _second_phase(self, stack: list[list[int]]) -> list:
        chosen: list[int] = []
        used_demands: set[int] = set()
        if self.cfg.capacity_phase2:
            load: dict[object, float] = {}
            for group in reversed(stack):
                for iid in group:
                    inst = self.inp.instances[iid]
                    if inst.demand_id in used_demands:
                        continue
                    edges = self.inp.edges_of[iid]
                    if all(
                        load.get(e, 0.0) + inst.height <= 1.0 + 1e-9 for e in edges
                    ):
                        chosen.append(iid)
                        used_demands.add(inst.demand_id)
                        for e in edges:
                            load[e] = load.get(e, 0.0) + inst.height
        else:
            used_edges: set[object] = set()
            for group in reversed(stack):
                for iid in group:
                    inst = self.inp.instances[iid]
                    if inst.demand_id in used_demands:
                        continue
                    edges = self.inp.edges_of[iid]
                    if not (edges & used_edges):
                        chosen.append(iid)
                        used_demands.add(inst.demand_id)
                        used_edges |= edges
        return [self.inp.instances[iid] for iid in chosen]
