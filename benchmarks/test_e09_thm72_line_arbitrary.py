"""E9 (Theorem 7.2): line-networks with windows, arbitrary heights — (23+ε).

Measured combined ratios plus the narrow-only (19+ε) half, across height
regimes and hmin values (the round bound carries a 1/hmin factor — we
regenerate that series too).
"""

from __future__ import annotations

from repro import (
    random_line_problem,
    solve_line_arbitrary,
    solve_line_narrow,
    solve_optimal,
)
from repro.core.solution import verify_line_solution

from common import emit, geomean

EPS = 0.1


def run_experiment():
    rows = []
    combined, narrow_only = [], []
    for regime in ["narrow", "wide", "mixed", "bimodal"]:
        ratios, rounds = [], []
        for seed in range(3):
            p = random_line_problem(n_slots=30, m=14, r=2, seed=seed,
                                    height_regime=regime, hmin=0.1, max_len=8)
            sol = solve_line_arbitrary(p, epsilon=EPS, seed=seed)
            verify_line_solution(p, sol, unit_height=False)
            opt = solve_optimal(p)
            ratios.append(opt.profit / max(sol.profit, 1e-12))
            rounds.append(sol.stats["total_rounds"])
        combined.extend(ratios)
        rows.append([f"combined/{regime}", geomean(ratios), max(ratios),
                     sum(rounds) / len(rounds)])

    for seed in range(3):
        p = random_line_problem(n_slots=30, m=14, r=1, seed=seed + 30,
                                height_regime="narrow", hmin=0.15, max_len=8)
        sol = solve_line_narrow(p, epsilon=EPS, seed=seed)
        opt = solve_optimal(p)
        narrow_only.append(opt.profit / max(sol.profit, 1e-12))
    rows.append(["narrow-only (19+ε)", geomean(narrow_only), max(narrow_only),
                 "-"])

    # 1/hmin round series: shrinking hmin raises the stage count.
    hmin_series = []
    for hmin in [0.4, 0.2, 0.1, 0.05]:
        p = random_line_problem(n_slots=30, m=20, r=1, seed=77,
                                height_regime="narrow", hmin=hmin, max_len=8)
        sol = solve_line_narrow(p, epsilon=0.2, seed=7, hmin=hmin)
        hmin_series.append((hmin, sol.stats["stages"]))
        rows.append([f"stages @ hmin={hmin}", "-", "-", sol.stats["stages"]])

    emit(
        "E09",
        f"Theorem 7.2: line + windows, arbitrary heights (23+ε), ε={EPS}",
        ["workload", "OPT/ALG geo", "OPT/ALG max", "avg rounds / stages"],
        rows,
        notes=(
            f"Paper bounds: combined ≤ 23/(1-ε) = {23/(1-EPS):.1f}; narrow "
            f"≤ 19/(1-ε) = {19/(1-EPS):.1f}; stage count scales with 1/hmin."
        ),
    )
    return combined, narrow_only, hmin_series


def test_thm72_line_arbitrary_ratio(benchmark):
    combined, narrow_only, hmin_series = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert all(r <= 23 / (1 - EPS) + 1e-6 for r in combined)
    assert all(r <= 19 / (1 - EPS) + 1e-6 for r in narrow_only)
    # Stage count is monotone non-decreasing as hmin shrinks.
    stages = [s for _, s in hmin_series]
    assert stages == sorted(stages)
