"""Tests for the command-line interface (driven through ``cli.main``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def tree_json(tmp_path):
    path = tmp_path / "tree.json"
    rc = main(["generate", "--kind", "tree", "--n", "16", "--m", "10",
               "--r", "2", "--seed", "1", "-o", str(path)])
    assert rc == 0
    return str(path)


@pytest.fixture
def line_json(tmp_path):
    path = tmp_path / "line.json"
    rc = main(["generate", "--kind", "line", "--n", "24", "--m", "10",
               "--r", "2", "--seed", "1", "--heights", "mixed",
               "-o", str(path)])
    assert rc == 0
    return str(path)


class TestGenerate:
    def test_tree_file_valid(self, tree_json):
        doc = json.load(open(tree_json))
        assert doc["kind"] == "tree"
        assert len(doc["demands"]) == 10

    def test_line_file_valid(self, line_json):
        doc = json.load(open(line_json))
        assert doc["kind"] == "line"
        assert doc["n_slots"] == 24


class TestSolve:
    def test_auto_tree(self, tree_json, capsys):
        assert main(["solve", tree_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "profit" in out and "rounds" in out

    def test_auto_line_arbitrary(self, line_json, capsys):
        assert main(["solve", line_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "line-arbitrary" in out

    def test_explicit_algorithm(self, tree_json, capsys):
        assert main(["solve", tree_json, "--algorithm", "sequential"]) == 0
        assert "sequential" in capsys.readouterr().out

    def test_exact(self, tree_json, capsys):
        assert main(["solve", tree_json, "--algorithm", "exact"]) == 0
        assert "milp" in capsys.readouterr().out

    def test_save_solution(self, tree_json, tmp_path, capsys):
        out_path = tmp_path / "sol.json"
        assert main(["solve", tree_json, "--save-solution", str(out_path)]) == 0
        doc = json.load(open(out_path))
        assert "selected" in doc and "profit" in doc

    def test_wrong_family_rejected(self, tree_json):
        with pytest.raises(SystemExit, match="needs a line problem"):
            main(["solve", tree_json, "--algorithm", "line-unit"])

    def test_mis_backends(self, tree_json, capsys):
        for mis in ["greedy", "priority", "luby"]:
            assert main(["solve", tree_json, "--mis", mis]) == 0


class TestCompare:
    def test_tree(self, tree_json, capsys):
        assert main(["compare", tree_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "exact OPT" in out and "greedy" in out and "sequential" in out

    def test_line(self, line_json, capsys):
        assert main(["compare", line_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Panconesi" in out


class TestDecompose:
    def test_table(self, capsys):
        assert main(["decompose", "--topology", "caterpillar", "--n", "20"]) == 0
        out = capsys.readouterr().out
        assert "ideal" in out and "root-fixing" in out and "depth" in out
