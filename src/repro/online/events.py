"""Event model and seeded trace generators for online admission control.

The offline problems freeze every demand up front; the online subsystem
replays the same demand populations as *streams*: demands arrive over
continuous time, may depart (releasing their bandwidth), and the
simulation clock emits periodic ticks that batching policies can hook.

A trace is self-contained: it bundles the problem (networks, access
sets, and one demand per arrival, in arrival order) with the event
sequence, so the offline optimum of the exact same workload is just
``registry.solve(name, trace.problem)`` — the denominator of every
competitive ratio in :mod:`repro.online.metrics`.

Three arrival processes are provided, all seeded and layered on the
existing :mod:`repro.workloads` generators:

* ``poisson``  — memoryless arrivals at a constant rate;
* ``bursty``   — a two-state modulated Poisson process (long quiet
  stretches punctuated by dense bursts, the classic adversary for
  threshold policies);
* ``diurnal``  — sinusoidally modulated intensity (a day/night cycle).

Serialization lives in :mod:`repro.io` (``save_trace`` / ``load_trace``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.instance import LineProblem, TreeProblem
from ..workloads import random_line_problem, random_tree_problem

__all__ = [
    "Arrival",
    "Departure",
    "Tick",
    "EventTrace",
    "ARRIVAL_PROCESSES",
    "generate_trace",
    "poisson_trace",
    "bursty_trace",
    "diurnal_trace",
]

#: The arrival processes :func:`generate_trace` understands.
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True, slots=True)
class Arrival:
    """Demand ``demand_id`` enters the system at ``time``."""

    time: float
    demand_id: int


@dataclass(frozen=True, slots=True)
class Departure:
    """Demand ``demand_id`` leaves at ``time``; its bandwidth frees up."""

    time: float
    demand_id: int


@dataclass(frozen=True, slots=True)
class Tick:
    """A clock edge at ``time``; batching policies may flush on it."""

    time: float


@dataclass
class EventTrace:
    """A replayable stream of events over a frozen demand population.

    Attributes
    ----------
    problem:
        A :class:`~repro.core.instance.TreeProblem` or
        :class:`~repro.core.instance.LineProblem` holding one demand per
        arrival.  Demand ``i`` is the ``i``-th arrival in time order, so
        solving this problem offline yields the optimum over exactly the
        demands the stream carries.
    events:
        :class:`Arrival` / :class:`Departure` / :class:`Tick` records,
        sorted by time (arrivals precede equal-time departures).
    meta:
        Generator provenance (process, seed, rates, ...); free-form.
    """

    problem: TreeProblem | LineProblem
    events: list
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        m = self.problem.num_demands
        arrived: set[int] = set()
        departed: set[int] = set()
        prev = -math.inf
        for ev in self.events:
            if ev.time < prev:
                raise ValueError(
                    f"events out of order: {ev!r} after time {prev}"
                )
            prev = ev.time
            if isinstance(ev, Arrival):
                if not (0 <= ev.demand_id < m):
                    raise ValueError(f"arrival of unknown demand {ev.demand_id}")
                if ev.demand_id in arrived:
                    raise ValueError(f"demand {ev.demand_id} arrives twice")
                arrived.add(ev.demand_id)
            elif isinstance(ev, Departure):
                if ev.demand_id not in arrived:
                    raise ValueError(
                        f"demand {ev.demand_id} departs before arriving"
                    )
                if ev.demand_id in departed:
                    raise ValueError(f"demand {ev.demand_id} departs twice")
                departed.add(ev.demand_id)
            elif not isinstance(ev, Tick):
                raise TypeError(f"unknown event type {type(ev).__name__}")
        if len(arrived) != m:
            raise ValueError(
                f"{m} demands in the problem but {len(arrived)} arrivals"
            )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def num_arrivals(self) -> int:
        """Number of :class:`Arrival` events (== demands in the problem)."""
        return self.problem.num_demands

    @property
    def num_departures(self) -> int:
        """Number of :class:`Departure` events."""
        return sum(1 for ev in self.events if isinstance(ev, Departure))

    @property
    def horizon(self) -> float:
        """Time of the last event (0.0 for an empty trace)."""
        return self.events[-1].time if self.events else 0.0


# ----------------------------------------------------------------------
# Arrival-time processes
# ----------------------------------------------------------------------


def _arrival_times(process: str, count: int, rate: float,
                   rng: np.random.Generator) -> list[float]:
    """``count`` strictly increasing arrival times for the process."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    times: list[float] = []
    t = 0.0
    if process == "poisson":
        for gap in rng.exponential(1.0 / rate, size=count):
            t += float(gap)
            times.append(t)
    elif process == "bursty":
        # Two-state modulated Poisson: bursts run ~10x the base rate,
        # quiet phases ~1/5 of it; phase lengths are geometric in events.
        in_burst = False
        remaining = 0
        for _ in range(count):
            if remaining == 0:
                in_burst = not in_burst
                remaining = int(rng.geometric(0.08 if in_burst else 0.25))
            phase_rate = rate * (10.0 if in_burst else 0.2)
            t += float(rng.exponential(1.0 / phase_rate))
            times.append(t)
            remaining -= 1
    elif process == "diurnal":
        # Sinusoidal intensity with one full "day" per ~count/4 events at
        # the base rate; sampled by local exponential gaps.
        period = max(count / (4.0 * rate), 1e-9)
        for _ in range(count):
            lam = rate * (1.0 + 0.8 * math.sin(2.0 * math.pi * t / period))
            t += float(rng.exponential(1.0 / max(lam, 0.05 * rate)))
            times.append(t)
    else:
        raise ValueError(
            f"unknown arrival process {process!r}; want one of "
            f"{ARRIVAL_PROCESSES}"
        )
    return times


def generate_trace(
    kind: str = "line",
    *,
    events: int = 1000,
    process: str = "poisson",
    seed: int = 0,
    rate: float = 1.0,
    departure_prob: float = 0.3,
    mean_hold: float | None = None,
    tick_every: float = 0.0,
    workload: dict | None = None,
) -> EventTrace:
    """Generate a seeded event trace of (almost exactly) ``events`` events.

    The schedule is drawn first — arrival times from ``process``, each
    arrival departing with probability ``departure_prob`` after an
    exponential holding time of mean ``mean_hold`` (default: 8 mean
    interarrival gaps), ticks every ``tick_every`` time units when
    positive — then truncated to ``events`` entries, and finally the
    demand population is sampled with the surviving arrival count through
    :func:`~repro.workloads.random_tree_problem` /
    :func:`~repro.workloads.random_line_problem` (extra keywords via
    ``workload``).  Everything is driven by one
    :class:`numpy.random.Generator`, so a (kind, events, process, seed,
    ...) tuple pins the trace exactly.

    Parameters
    ----------
    kind:
        ``"tree"`` or ``"line"`` — which problem family the demands use.
    events:
        Total event budget (arrivals + departures + ticks).
    """
    if events < 1:
        raise ValueError("events must be >= 1")
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not (0.0 <= departure_prob <= 1.0):
        raise ValueError("departure_prob must lie in [0, 1]")
    if kind not in ("tree", "line"):
        raise ValueError(f"unknown problem kind {kind!r}")
    rng = np.random.default_rng(seed)
    if mean_hold is None:
        mean_hold = 8.0 / rate

    times = _arrival_times(process, events, rate, rng)
    # (time, priority, arrival_index); priority orders equal-time events
    # as arrival < tick < departure.
    schedule: list[tuple[float, int, int]] = [
        (t, 0, i) for i, t in enumerate(times)
    ]
    departs = rng.random(events) < departure_prob
    holds = rng.exponential(mean_hold, size=events)
    for i, t in enumerate(times):
        if departs[i]:
            schedule.append((t + float(holds[i]), 2, i))
    if tick_every > 0:
        horizon = times[-1]
        n_ticks = int(horizon / tick_every)
        schedule.extend(
            (tick_every * (k + 1), 1, -1) for k in range(n_ticks)
        )
    schedule.sort()
    schedule = schedule[:events]

    # Renumber the surviving arrivals 0.. in time order; departures of
    # truncated arrivals cannot survive (they sort strictly later), but
    # drop them defensively anyway.
    demand_of: dict[int, int] = {}
    raw_events: list[tuple[int, float, int]] = []
    for t, prio, idx in schedule:
        if prio == 0:
            demand_of[idx] = len(demand_of)
            raw_events.append((0, t, demand_of[idx]))
        elif prio == 1:
            raw_events.append((1, t, -1))
        elif idx in demand_of:
            raw_events.append((2, t, demand_of[idx]))

    m = len(demand_of)
    workload = dict(workload or {})
    wl_seed = workload.pop("seed", int(rng.integers(0, 2**31 - 1)))
    # Mixed heights by default: fractional edge loads are what make the
    # dual-gated policy's price function informative (with unit heights
    # any loaded edge is already full, so pricing reduces to first-fit).
    if kind == "tree":
        workload.setdefault("n", 256)
        workload.setdefault("r", 1)
        workload.setdefault("height_regime", "mixed")
        problem = random_tree_problem(m=m, seed=wl_seed, **workload)
    else:
        workload.setdefault("n_slots", 512)
        workload.setdefault("r", 1)
        workload.setdefault("height_regime", "mixed")
        # Small jobs and tight windows keep the per-demand placement
        # count (and hence the instance population) bounded.
        workload.setdefault("min_len", 4)
        workload.setdefault("max_len", 16)
        workload.setdefault("window_slack", 0.25)
        problem = random_line_problem(m=m, seed=wl_seed, **workload)

    evs: list = []
    for code, t, d in raw_events:
        if code == 0:
            evs.append(Arrival(t, d))
        elif code == 1:
            evs.append(Tick(t))
        else:
            evs.append(Departure(t, d))
    meta = {
        "kind": kind,
        "process": process,
        "seed": int(seed),
        "events": int(events),
        "rate": float(rate),
        "departure_prob": float(departure_prob),
        "mean_hold": float(mean_hold),
        "tick_every": float(tick_every),
        "workload_seed": int(wl_seed),
    }
    return EventTrace(problem=problem, events=evs, meta=meta)


def poisson_trace(kind: str = "line", **kw) -> EventTrace:
    """:func:`generate_trace` with memoryless constant-rate arrivals."""
    return generate_trace(kind, process="poisson", **kw)


def bursty_trace(kind: str = "line", **kw) -> EventTrace:
    """:func:`generate_trace` with on/off modulated (bursty) arrivals."""
    return generate_trace(kind, process="bursty", **kw)


def diurnal_trace(kind: str = "line", **kw) -> EventTrace:
    """:func:`generate_trace` with sinusoidally modulated arrivals."""
    return generate_trace(kind, process="diurnal", **kw)
