"""Tests for the online event model and trace generators."""

from __future__ import annotations

import pytest

from repro.online import (
    ARRIVAL_PROCESSES,
    Arrival,
    Departure,
    EventTrace,
    Tick,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    poisson_trace,
)
from repro.workloads import random_tree_problem


class TestGenerators:
    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    @pytest.mark.parametrize("kind", ["tree", "line"])
    def test_event_budget_and_validity(self, process, kind):
        tr = generate_trace(kind, events=200, process=process, seed=3,
                            departure_prob=0.4)
        # Construction already validates ordering/consistency; check the
        # budget and the arrival/problem correspondence on top.
        assert len(tr.events) == 200
        assert tr.num_arrivals == tr.problem.num_demands
        assert tr.num_arrivals + tr.num_departures == 200

    def test_times_sorted_and_arrival_before_departure(self):
        tr = poisson_trace("line", events=300, seed=1, departure_prob=0.5)
        times = [ev.time for ev in tr.events]
        assert times == sorted(times)
        arrived = set()
        for ev in tr.events:
            if isinstance(ev, Arrival):
                arrived.add(ev.demand_id)
            elif isinstance(ev, Departure):
                assert ev.demand_id in arrived

    def test_arrival_order_is_demand_order(self):
        tr = bursty_trace("line", events=150, seed=9, departure_prob=0.3)
        ids = [ev.demand_id for ev in tr.events if isinstance(ev, Arrival)]
        assert ids == list(range(len(ids)))

    def test_deterministic_under_seed(self):
        a = diurnal_trace("tree", events=120, seed=11, departure_prob=0.4)
        b = diurnal_trace("tree", events=120, seed=11, departure_prob=0.4)
        assert a.events == b.events
        assert a.meta == b.meta
        assert [(d.u, d.v, d.profit, d.height) for d in a.problem.demands] == \
               [(d.u, d.v, d.profit, d.height) for d in b.problem.demands]

    def test_seeds_differ(self):
        a = poisson_trace("line", events=100, seed=0)
        b = poisson_trace("line", events=100, seed=1)
        assert a.events != b.events

    def test_ticks_generated(self):
        tr = generate_trace("line", events=200, seed=2, tick_every=5.0,
                            departure_prob=0.2)
        ticks = [ev for ev in tr.events if isinstance(ev, Tick)]
        assert ticks
        assert all(ev.time % 5.0 == 0.0 for ev in ticks)

    def test_no_departures_when_prob_zero(self):
        tr = poisson_trace("line", events=80, seed=4, departure_prob=0.0)
        assert tr.num_departures == 0
        assert tr.num_arrivals == 80

    def test_workload_passthrough(self):
        tr = generate_trace("tree", events=50, seed=5, departure_prob=0.0,
                            workload={"n": 32, "r": 2, "topology": "star"})
        assert tr.problem.n == 32
        assert tr.problem.num_networks == 2

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="events"):
            generate_trace("line", events=0)
        with pytest.raises(ValueError, match="departure_prob"):
            generate_trace("line", events=10, departure_prob=1.5)
        with pytest.raises(ValueError, match="kind"):
            generate_trace("hypergraph", events=10)
        with pytest.raises(ValueError, match="process"):
            generate_trace("line", events=10, process="lunar")
        with pytest.raises(ValueError, match="rate"):
            generate_trace("line", events=10, rate=0.0)


class TestEventTraceValidation:
    def _problem(self, m=2):
        return random_tree_problem(n=8, m=m, r=1, seed=0)

    def test_out_of_order_rejected(self):
        p = self._problem()
        with pytest.raises(ValueError, match="out of order"):
            EventTrace(p, [Arrival(2.0, 0), Arrival(1.0, 1)])

    def test_departure_before_arrival_rejected(self):
        p = self._problem()
        with pytest.raises(ValueError, match="departs before arriving"):
            EventTrace(p, [Arrival(0.0, 0), Departure(1.0, 1),
                           Arrival(2.0, 1)])

    def test_double_arrival_rejected(self):
        p = self._problem()
        with pytest.raises(ValueError, match="arrives twice"):
            EventTrace(p, [Arrival(0.0, 0), Arrival(1.0, 0),
                           Arrival(2.0, 1)])

    def test_unknown_demand_rejected(self):
        p = self._problem()
        with pytest.raises(ValueError, match="unknown demand"):
            EventTrace(p, [Arrival(0.0, 0), Arrival(1.0, 7)])

    def test_missing_arrivals_rejected(self):
        p = self._problem(m=3)
        with pytest.raises(ValueError, match="arrivals"):
            EventTrace(p, [Arrival(0.0, 0), Arrival(1.0, 1)])

    def test_valid_trace_accepted(self):
        p = self._problem()
        tr = EventTrace(p, [Arrival(0.0, 0), Tick(0.5), Arrival(1.0, 1),
                            Departure(2.0, 0)])
        assert len(tr) == 4
        assert tr.horizon == 2.0
