"""The two-phase primal-dual framework (Section 3.2 / Section 6.1).

Every algorithm in the paper — the sequential Appendix-A algorithm, the
Panconesi–Sozio line algorithms, and this paper's tree and line algorithms
— instantiates one engine:

* **First phase** processes the layered-decomposition groups in *epochs*
  (one per group index, merged across networks).  Each epoch runs a
  schedule of *stages* with satisfaction targets ``1 - ξ^j``; each stage
  iterates *steps*: collect the still-unsatisfied instances ``U`` of the
  group, compute a maximal independent set ``I`` of the conflict graph
  induced on ``U``, raise every ``d ∈ I`` to tightness (unit rule
  ``δ = slack/(|π|+1)`` or narrow rule ``δ = slack/(1+2h|π|²)``), and push
  ``I`` on the stack.
* **Second phase** pops the stack and greedily inserts instances while
  feasibility (edge-disjointness, or height capacities) permits.

The engine is *governed by* the critical-set size ``∆`` (from the layered
decomposition) and the slackness ``λ`` it achieves; Lemma 3.1 then gives
profit ≥ ``λ/(∆+1)``·OPT for the unit rule and Lemma 6.1 gives
``λ/(2∆²+1)``·OPT for the narrow rule.  The engine also keeps the
distributed round ledger of Section 5: each step costs ``Time(MIS)``
rounds (simulated Luby) plus one dual-broadcast round, and the second
phase costs one round per pushed step.

Since the vectorization refactor :class:`TwoPhaseEngine` is a thin
composition of the components in :mod:`repro.algorithms.engine`
(:class:`~repro.algorithms.engine.EpochSchedule`,
:class:`~repro.algorithms.engine.StageRule`,
:class:`~repro.algorithms.engine.PhaseOneEngine`,
:class:`~repro.algorithms.engine.PhaseTwoGreedy`) over the vectorized
core (:class:`~repro.core.conflict.ConflictIndex`,
:class:`~repro.core.duals.DualState`).

Instantiations (see :mod:`repro.algorithms.registry` for the name map):

=====================  ======  ==========================  =============
algorithm              rule    stage schedule              bound
=====================  ======  ==========================  =============
tree unit (§5)         unit    ξ = 14/15, b = ⌈log_ξ ε⌉    7 + ε
tree narrow (§6)       narrow  ξ = 73/(73+hmin)            73 + ε
line unit (§7)         unit    ξ = 8/9                     4 + ε
line narrow (§7)       narrow  ξ = 19/(19+hmin)            19 + ε
Panconesi–Sozio (§5R)  unit    single stage @ 1/(5+ε)      4·(5+ε)
Appendix A             unit    singleton MIS, λ = 1        ∆ + 1
=====================  ======  ==========================  =============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..core.conflict import ConflictIndex
from ..core.duals import DualState
from .engine import (
    EngineStats,
    EpochSchedule,
    PhaseOneEngine,
    PhaseTwoGreedy,
    StageRule,
    narrow_xi,
    stage_count,
    unit_xi,
)

__all__ = [
    "EngineInput",
    "EngineConfig",
    "EngineStats",
    "TwoPhaseEngine",
    "run_framework",
    "unit_xi",
    "narrow_xi",
    "stage_count",
]


@dataclass
class EngineInput:
    """Compiled, network-agnostic form of a problem for the engine.

    Attributes
    ----------
    instances:
        Demand instances (ids dense ``0..N-1`` in list order).
    edges_of:
        ``edges_of[iid]`` = global edges the instance is active on.
    critical:
        ``critical[iid]`` = the layered decomposition's ``π(d)`` as
        global edges (must be a subset of ``edges_of[iid]``).
    groups:
        Epoch schedule: ``groups[k]`` = instance ids of ``G_{k+1}``,
        merged across networks (Figure 7's ``G_k = ∪_q G_k^{(q)}``).
    delta:
        Critical-set size ``∆`` the layering guarantees.
    networks:
        Optional list of the underlying tree-networks; when present the
        conflict index can use their Euler-tour geometry for batched
        path-overlap tests.
    """

    instances: Sequence
    edges_of: list[frozenset]
    critical: dict[int, tuple]
    groups: list[list[int]]
    delta: int
    networks: Sequence | None = None

    def __post_init__(self) -> None:
        n = len(self.instances)
        if len(self.edges_of) != n:
            raise ValueError("edges_of must align with instances")
        grouped = [iid for grp in self.groups for iid in grp]
        if sorted(grouped) != list(range(n)):
            raise ValueError("groups must partition instance ids 0..N-1")
        for iid, crit in self.critical.items():
            if not set(crit) <= set(self.edges_of[iid]):
                raise ValueError(f"critical edges of {iid} not on its route")


@dataclass
class EngineConfig:
    """Engine knobs.

    Attributes
    ----------
    rule:
        ``"unit"`` (Section 3.2 raise) or ``"narrow"`` (Section 6.1).
    epsilon:
        The ε of the theorems; drives the stage schedule.
    xi:
        Per-stage shrink; defaults from ``rule`` and ``∆`` (see
        :func:`unit_xi`/:func:`narrow_xi`).
    hmin:
        Minimum height (needed by the narrow schedule).
    single_stage_target:
        If set, run Panconesi–Sozio style: a single stage per epoch with
        fixed satisfaction target (e.g. ``1/(5+ε)``); ``xi`` is ignored.
    mis:
        ``"luby"`` (round-faithful, randomized), ``"greedy"``
        (deterministic, fast, counted as 1 round/step), or
        ``"priority"`` (deterministic *and* round-faithful: the static-
        priority protocol the agent runtime executes).
    seed:
        RNG seed for Luby.
    capacity_phase2:
        If ``True`` the second phase packs by height capacities instead
        of edge-disjointness (the arbitrary-height semantics).
    max_steps:
        Safety valve per stage (raises if exceeded — the theory bounds
        steps by ``O(log pmax/pmin)``, so hitting this is a bug).
    """

    rule: Literal["unit", "narrow"] = "unit"
    epsilon: float = 0.1
    xi: float | None = None
    hmin: float = 0.5
    single_stage_target: float | None = None
    mis: Literal["luby", "greedy", "priority"] = "luby"
    seed: int | None = 0
    capacity_phase2: bool = False
    raise_alpha: bool = True
    max_steps: int = 100_000

    def schedule(self, delta: int) -> EpochSchedule:
        """The :class:`EpochSchedule` this config implies for ``∆``."""
        return EpochSchedule.for_rule(
            self.rule,
            delta,
            self.epsilon,
            hmin=self.hmin,
            xi=self.xi,
            single_stage_target=self.single_stage_target,
        )

    def stage_rule(self) -> StageRule:
        """The :class:`StageRule` this config implies."""
        return StageRule(rule=self.rule, include_alpha=self.raise_alpha)


class TwoPhaseEngine:
    """Run the two-phase framework on a compiled :class:`EngineInput`."""

    def __init__(self, inp: EngineInput, config: EngineConfig | None = None):
        self.inp = inp
        self.cfg = config or EngineConfig()
        trees = (
            {net.network_id: net for net in inp.networks}
            if inp.networks is not None
            else None
        )
        self.conflicts = ConflictIndex(inp.instances, inp.edges_of, trees=trees)
        profits = [d.profit for d in inp.instances]
        heights = [d.height for d in inp.instances]
        demand_of = [d.demand_id for d in inp.instances]
        self.duals = DualState(profits, heights, demand_of, inp.edges_of)
        self.duals.set_critical(inp.critical)
        self._rng = np.random.default_rng(self.cfg.seed)

    def run(self) -> tuple[list, EngineStats]:
        """Execute both phases; returns (selected instances, stats)."""
        stats = EngineStats(delta=self.inp.delta)
        schedule = self.cfg.schedule(self.inp.delta)
        stats.stage_schedule = list(schedule.targets)

        phase1 = PhaseOneEngine(
            self.inp.groups,
            self.conflicts,
            self.duals,
            schedule,
            self.cfg.stage_rule(),
            mis=self.cfg.mis,
            rng=self._rng,
            max_steps=self.cfg.max_steps,
        )
        stack = phase1.run(stats)

        phase2 = PhaseTwoGreedy(self.conflicts, capacities=self.cfg.capacity_phase2)
        chosen = phase2.run(stack, stats)
        selected = [self.inp.instances[iid] for iid in chosen]

        stats.dual_objective = self.duals.objective()
        stats.realized_lambda = self.duals.realized_lambda()
        stats.opt_upper_bound = self.duals.opt_upper_bound()
        return selected, stats


def run_framework(
    inp: EngineInput, config: EngineConfig | None = None
) -> tuple[list, EngineStats]:
    """Convenience wrapper: build the engine and run it."""
    return TwoPhaseEngine(inp, config).run()
