"""Plain-text reporting: trees, decompositions, schedules, summaries.

Everything the examples and benchmarks print is built from these
primitives, so output formatting is tested once, here, instead of being
re-invented per script.
"""

from __future__ import annotations

from typing import Sequence

from .core.instance import LineProblem
from .core.solution import Solution
from .decomposition.base import TreeDecomposition
from .network.tree import TreeNetwork

__all__ = [
    "render_tree",
    "render_decomposition",
    "render_gantt",
    "render_solution_summary",
    "render_comparison",
    "render_sweep",
    "render_replay",
    "render_sharded_replay",
]


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Left-justified plain-text table with a dashed header rule."""
    widths = [max(len(h), *(len(row[i]) for row in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_tree(tree: TreeNetwork, root: int = 0) -> str:
    """ASCII tree rooted at ``root`` (children indented under parents)."""
    lines: list[str] = []
    seen = {root}

    def walk2(v: int, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(str(v))
            kid_prefix = ""
        else:
            lines.append(prefix + ("└─ " if is_last else "├─ ") + str(v))
            kid_prefix = prefix + ("   " if is_last else "│  ")
        kids = sorted(u for u in tree.adj[v] if u not in seen)
        seen.update(kids)
        for i, u in enumerate(kids):
            walk2(u, kid_prefix, i == len(kids) - 1, False)

    walk2(root, "", True, True)
    return "\n".join(lines)


def render_decomposition(td: TreeDecomposition) -> str:
    """Level-by-level view of a tree decomposition with pivot sets."""
    out = [f"{td.name}: depth={td.max_depth}, pivot θ={td.pivot_size}"]
    for depth, level in enumerate(td.levels(), start=1):
        entries = ", ".join(
            f"{v}(χ={{{','.join(map(str, td.chi(v)))}}})" for v in sorted(level)
        )
        out.append(f"  depth {depth}: {entries}")
    return "\n".join(out)


def render_gantt(problem: LineProblem, solution: Solution, network_id: int,
                 width: int | None = None) -> str:
    """Capacity-lane Gantt chart of one resource's schedule.

    Each selected instance occupies one text lane for its interval; jobs
    are labelled ``a``–``z`` by demand id (mod 26).
    """
    n = problem.n_slots if width is None else min(width, problem.n_slots)
    lanes: list[list[str]] = []
    for inst in sorted(solution.selected, key=lambda d: (d.start, d.demand_id)):
        if inst.network_id != network_id or inst.start >= n:
            continue
        tag = chr(ord("a") + inst.demand_id % 26)
        end = min(inst.end, n - 1)
        for lane in lanes:
            if all(lane[t] == "." for t in range(inst.start, end + 1)):
                break
        else:
            lane = ["."] * n
            lanes.append(lane)
        for t in range(inst.start, end + 1):
            lane[t] = tag
    if not lanes:
        return "(idle)"
    return "\n".join("".join(lane) for lane in lanes)


def render_solution_summary(solution: Solution) -> str:
    """One-paragraph summary: profit, size, and the key engine stats."""
    s = solution.stats
    lines = [
        f"algorithm : {s.get('algorithm', '?')}",
        f"profit    : {solution.profit:.4g}",
        f"selected  : {solution.size} demand instances",
    ]
    if "total_rounds" in s:
        lines.append(f"rounds    : {s['total_rounds']}")
    if "realized_lambda" in s:
        lines.append(f"λ         : {s['realized_lambda']:.4f}")
    if "opt_upper_bound" in s:
        lines.append(f"OPT ≤     : {s['opt_upper_bound']:.4g} (dual certificate)")
    if "approx_guarantee" in s:
        lines.append(f"guarantee : ≤ {s['approx_guarantee']:.3g}× off optimal")
    return "\n".join(lines)


def render_sweep(results: Sequence) -> str:
    """Tabulate :class:`~repro.runners.batch.RunResult` records.

    One row per job: problem label, solver, seed, profit, size, rounds,
    realized λ, wall-clock, cache/error status.  When any record carries
    an offline benchmark in its stats (replay sweeps through
    :class:`~repro.runners.replay.ReplayRunner`), two extra columns
    report the fraction of the offline optimum captured (``ALG/OPT``)
    and the empirical competitive ratio (``c-ratio``); when any record
    was produced by a preemptive policy, ``evict`` and ``adj profit``
    (penalty-adjusted) columns appear so preemptive and non-preemptive
    rows on the same trace compare apples to apples.
    """
    results = list(results)
    with_offline = any(
        (r.stats or {}).get("offline_profit") is not None for r in results
    )
    with_evictions = any(
        (r.stats or {}).get("evictions") or (r.stats or {}).get("penalty_paid")
        for r in results
    )
    with_dual_ub = any(
        (r.stats or {}).get("dual_upper_bound") is not None for r in results
    )
    headers = ["problem", "solver", "seed", "profit", "size", "rounds",
               "λ", "time", "status"]
    extra = []
    if with_evictions:
        extra += ["evict", "adj profit"]
    if with_dual_ub:
        extra += ["OPT≤(dual)"]
    if with_offline:
        extra += ["ALG/OPT", "c-ratio"]
    headers = headers[:5] + extra + headers[5:]
    rows: list[list[str]] = []
    for r in results:
        stats = r.stats or {}
        seed = (r.params or {}).get("seed", "-")
        rounds = stats.get("total_rounds", stats.get("rounds", "-"))
        lam = stats.get("realized_lambda")
        status = "error" if r.error else ("cached" if r.cache_hit else "ok")
        row = [
            r.label,
            r.solver,
            str(seed),
            f"{r.profit:.2f}",
            str(r.size),
        ]
        if with_evictions:
            adj = stats.get("penalty_adjusted_profit", r.profit)
            row.append(str(stats.get("evictions", 0)))
            row.append(f"{adj:.2f}")
        if with_dual_ub:
            ub = stats.get("dual_upper_bound")
            row.append("-" if ub is None else f"{ub:.2f}")
        if with_offline:
            vs = stats.get("profit_vs_offline")
            cr = stats.get("competitive_ratio")
            row.append("-" if vs is None else f"{vs:.3f}")
            row.append("-" if cr is None else f"{cr:.3f}")
        row += [
            str(rounds),
            "-" if lam is None else f"{lam:.3f}",
            f"{r.elapsed:.2f}s",
            status,
        ]
        rows.append(row)
    return _table(headers, rows)


def render_replay(metrics: Sequence) -> str:
    """Tabulate replay outcomes (one row per (trace, policy) run).

    Accepts :class:`~repro.online.metrics.ReplayMetrics` records or
    their ``to_dict`` form.  The offline columns (``offline OPT``,
    ``ALG/OPT``, ``c-ratio``) appear only when at least one record
    carries an offline benchmark; the preemption columns (``evict``,
    ``forfeit``, ``adj profit``) appear only when at least one record
    evicted something or paid a penalty, and then for *every* row, so
    preemptive and non-preemptive policies on the same trace read side
    by side.
    """
    docs = [m if isinstance(m, dict) else m.to_dict() for m in metrics]
    with_offline = any(d.get("offline_profit") is not None for d in docs)
    with_evictions = any(
        d.get("evictions") or d.get("penalty_paid") for d in docs
    )
    with_dual_ub = any(d.get("dual_upper_bound") is not None for d in docs)
    # History-mode certificates report the peak-based bound alongside
    # the tightened one, so the two columns read side by side.
    with_peak_ub = any(d.get("dual_upper_bound_peak") is not None
                       for d in docs)
    headers = ["policy", "events", "arrivals", "accepted", "acc%",
               "profit"]
    if with_evictions:
        headers += ["evict", "forfeit", "adj profit"]
    if with_dual_ub:
        headers += ["OPT≤(dual)"]
    if with_peak_ub:
        headers += ["OPT≤(peak)"]
    if with_offline:
        headers += ["offline OPT", "ALG/OPT", "c-ratio"]
    headers += ["p50 µs", "p99 µs", "events/s"]
    rows: list[list[str]] = []
    for d in docs:
        row = [
            str(d.get("policy", "?")),
            str(d.get("events", 0)),
            str(d.get("arrivals", 0)),
            str(d.get("accepted", 0)),
            f"{100.0 * d.get('acceptance_ratio', 0.0):.1f}",
            f"{d.get('realized_profit', 0.0):.2f}",
        ]
        if with_evictions:
            adj = d.get("penalty_adjusted_profit",
                        d.get("realized_profit", 0.0))
            row.append(str(d.get("evictions", 0)))
            row.append(f"{d.get('forfeited_profit', 0.0):.2f}")
            row.append(f"{adj:.2f}")
        if with_dual_ub:
            ub = d.get("dual_upper_bound")
            row.append("-" if ub is None else f"{ub:.2f}")
        if with_peak_ub:
            pk = d.get("dual_upper_bound_peak")
            row.append("-" if pk is None else f"{pk:.2f}")
        if with_offline:
            opt = d.get("offline_profit")
            vs = d.get("profit_vs_offline")
            cr = d.get("competitive_ratio")
            row.append("-" if opt is None else f"{opt:.2f}")
            row.append("-" if vs is None else f"{vs:.3f}")
            row.append("-" if cr is None else f"{cr:.3f}")
        row += [
            f"{d.get('latency_p50_us', 0.0):.1f}",
            f"{d.get('latency_p99_us', 0.0):.1f}",
            f"{d.get('events_per_sec', 0.0):.0f}",
        ]
        rows.append(row)
    return _table(headers, rows)


def render_sharded_replay(result, merged=None) -> str:
    """Plan summary plus the per-shard / boundary / merged replay table.

    ``result`` is a :class:`~repro.sharding.driver.ShardedReplayResult`;
    ``merged`` optionally overrides the merged metrics row (e.g. after
    :func:`~repro.online.metrics.with_offline` filled in the benchmark
    columns).  Rows are labelled ``shard-N`` / ``boundary`` / ``merged``
    in the policy column; the merged row's throughput is single-host
    wall clock, with the deployment (critical-path) rate appended below.
    """
    plan = result.plan
    lines = [
        f"{plan['by']} plan: {plan['shards']} shards, local demands "
        f"{plan['local_demands']}, boundary {plan['boundary_demands']} "
        f"demands ({100.0 * plan['boundary_fraction']:.1f}%, "
        f"profit {plan['boundary_profit']:.2f} — first-order divergence "
        f"scale vs the single-ledger replay)"
    ]
    docs: list[dict] = []
    for s, shard in enumerate(result.shard_results):
        doc = shard.metrics.to_dict()
        doc["policy"] = f"shard-{s}"
        docs.append(doc)
    if result.boundary_result is not None:
        doc = result.boundary_result.metrics.to_dict()
        doc["policy"] = "boundary"
        docs.append(doc)
    merged_doc = (merged if merged is not None else result.merged)
    merged_doc = (merged_doc if isinstance(merged_doc, dict)
                  else merged_doc.to_dict())
    merged_doc = dict(merged_doc, policy="merged")
    docs.append(merged_doc)
    lines.append(render_replay(docs))
    lines.append(
        f"critical path: {result.critical_path_s * 1e3:.1f} ms "
        f"({result.critical_path_events_per_sec:.0f} events/s across "
        f"{plan['shards']} workers)"
    )
    return "\n".join(lines)


def render_comparison(entries: Sequence[tuple[str, Solution]],
                      opt: float | None = None) -> str:
    """Side-by-side profit table for several solutions of one problem."""
    name_w = max(len(name) for name, _ in entries) + 2
    lines = [f"{'method':<{name_w}}{'profit':>10}{'size':>7}"
             + ("" if opt is None else f"{'OPT/ALG':>10}")]
    lines.append("-" * len(lines[0]))
    for name, sol in entries:
        row = f"{name:<{name_w}}{sol.profit:>10.2f}{sol.size:>7}"
        if opt is not None:
            row += f"{opt / max(sol.profit, 1e-12):>10.3f}"
        lines.append(row)
    if opt is not None:
        lines.append(f"{'exact OPT':<{name_w}}{opt:>10.2f}")
    return "\n".join(lines)
