"""Tests for the observability layer (``repro.obs``).

The load-bearing guarantees:

* the flight-recorder ring is bounded — when it wraps, the newest N
  spans survive, oldest first;
* spans nest and are recorded on *every* exit path, exceptions
  included (the exception type lands in the span's args), and the
  disabled ``span()`` is a shared no-op singleton;
* Chrome ``trace_event`` dumps carry microsecond complete events with
  per-shard ``tid`` tracks;
* the deterministic metrics export is byte-stable across two identical
  replays (monotonic-time histograms excluded), and the Prometheus
  text rendering round-trips over the HTTP scrape endpoint;
* the ``trace`` / ``explain`` wire ops work against a live service and
  the span dump covers every instrumented layer (session kernel,
  ledger, journal, service, async dispatch);
* the ``stats`` ``server`` section has the same key set on every
  transport;
* inline and forked two-phase sharded runs record the same span-name
  sequence (per-shard rings merged at the final barrier in shard
  order);
* ``repro resume`` republishes pre-kill cumulative gauges, not
  since-restart ones.
"""

from __future__ import annotations

import io
import json
import socket
import threading
import urllib.request

import pytest

from repro.io import event_to_dict
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.dashboard import render_dashboard, request_once, run_top
from repro.obs.metrics import MetricsRegistry, start_metrics_server
from repro.obs.tracing import (
    FlightRecorder,
    RECORDER,
    chrome_trace,
    record_complete,
    span,
)
from repro.online import generate_trace
from repro.service import AdmissionService, AsyncLineServer


@pytest.fixture(autouse=True)
def reset_recorder():
    """Every test starts and ends with a disabled, empty recorder."""
    tracing.disable()
    RECORDER.clear()
    yield
    tracing.disable()
    RECORDER.clear()


@pytest.fixture(scope="module")
def line_trace():
    return generate_trace("line", events=200, process="poisson", seed=3,
                          departure_prob=0.3)


@pytest.fixture(scope="module")
def tree_trace():
    return generate_trace(
        "tree", events=240, process="poisson", seed=17, departure_prob=0.35,
        workload={"n": 48, "boundary_fraction": 0.1, "parts": 2})


def _feed_all(svc: AdmissionService, trace, batch: int = 64) -> None:
    dicts = [event_to_dict(ev) for ev in trace.events]
    for i in range(0, len(dicts), batch):
        resp = svc.handle({"op": "feed", "events": dicts[i:i + batch]})
        assert resp["ok"], resp


def _start(service, **kw):
    """Run an AsyncLineServer on a thread; return (server, thread, box)."""
    box: dict = {}
    ready = threading.Event()
    server = AsyncLineServer(
        service, announce=lambda a: (box.update(addr=a), ready.set()), **kw)
    thread = threading.Thread(
        target=lambda: box.update(rv=server.serve_forever()), daemon=True)
    thread.start()
    assert ready.wait(10), "server never announced"
    return server, thread, box


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_wraps_keeping_newest(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record(f"s{i}", i, 1, None)
        assert rec.total == 20
        assert rec.dropped == 12
        assert [e[0] for e in rec.events()] == [f"s{i}" for i in range(12, 20)]
        assert [e[0] for e in rec.events(last=3)] == ["s17", "s18", "s19"]

    def test_spans_nest_inner_recorded_first(self):
        tracing.enable()
        with span("outer", layer="a"):
            with span("inner", k=1):
                pass
        names = [e[0] for e in RECORDER.events()]
        assert names == ["inner", "outer"]
        inner = RECORDER.events()[0]
        assert inner[3] == {"k": 1}

    def test_span_recorded_on_exception_exit(self):
        tracing.enable()
        with pytest.raises(RuntimeError):
            with span("doomed", demand=7):
                raise RuntimeError("boom")
        (name, _ts, _dur, args), = RECORDER.events()
        assert name == "doomed"
        assert args["error"] == "RuntimeError"
        assert args["demand"] == 7

    def test_disabled_span_is_shared_noop(self):
        assert not tracing.is_enabled()
        assert span("a") is span("b", k=1)
        with span("ignored"):
            pass
        assert RECORDER.total == 0

    def test_record_complete_converts_seconds_to_ns(self):
        tracing.enable()
        record_complete("x", 1.5, 0.25, {"demand": 0})
        (_n, ts_ns, dur_ns, _a), = RECORDER.events()
        assert ts_ns == int(1.5e9)
        assert dur_ns == int(0.25e9)

    def test_chrome_trace_format_and_shard_tracks(self):
        tracing.enable()
        RECORDER.record("shard.phaseA", 2_000, 1_000, {"shard": 1})
        RECORDER.record("session.decide", 3_000, 500, None)
        doc = chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        first, second = doc["traceEvents"]
        assert first == {"name": "shard.phaseA", "cat": "shard", "ph": "X",
                         "ts": 2.0, "dur": 1.0, "pid": first["pid"],
                         "tid": 2, "args": {"shard": 1}}
        assert second["tid"] == 0
        assert second["cat"] == "session"

    def test_enable_resize_clears_ring(self):
        tracing.enable(capacity=4)
        for i in range(10):
            RECORDER.record(f"s{i}", i, 1, None)
        tracing.enable(capacity=16)
        assert RECORDER.capacity == 16
        assert RECORDER.total == 0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_instrument_exports(self):
        reg = MetricsRegistry()
        reg.counter("c", "help c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        h = reg.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        out = reg.export()
        assert list(out) == ["c", "g", "h"]  # sorted names
        assert out["c"] == {"kind": "counter", "value": 5}
        assert out["g"] == {"kind": "gauge", "value": 2.5}
        assert out["h"]["buckets"] == [[1.0, 2], [10.0, 3]]
        assert out["h"]["count"] == 4
        assert out["h"]["sum"] == pytest.approx(55.6)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_timing_histograms_excluded_from_deterministic_view(self):
        reg = MetricsRegistry()
        reg.histogram("lat", timing=True).observe(3.0)
        reg.gauge("g").set(1)
        assert "lat" in reg.export()
        assert list(reg.export(include_timing=False)) == ["g"]

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("req", "requests").inc(3)
        reg.gauge("none_gauge").set(None)
        reg.histogram("h", buckets=(1.0, 10.0)).observe(5.0)
        text = reg.render_prometheus()
        assert "# HELP req requests" in text
        assert "# TYPE req counter" in text
        assert "req 3" in text
        assert "none_gauge NaN" in text
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="10"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 5" in text
        assert "h_count 1" in text

    def test_export_byte_stable_across_identical_replays(self, line_trace):
        tracing.enable()  # latency histogram observes wall time
        exports = []
        for _ in range(2):
            svc = AdmissionService(line_trace, "greedy-threshold")
            _feed_all(svc, line_trace)
            svc.stats()  # syncs the gauges
            exports.append(json.dumps(
                svc.registry.export(include_timing=False), sort_keys=False))
        assert exports[0] == exports[1]

    def test_http_scrape_endpoint(self):
        reg = MetricsRegistry()
        reg.gauge("repro_up").set(1)
        scraped = []
        server = start_metrics_server(reg, port=0,
                                      on_scrape=lambda: scraped.append(1))
        try:
            host, port = server.server_address[:2]
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10).read()
            assert b"repro_up 1" in body
            assert scraped == [1]
        finally:
            server.shutdown()
            server.server_close()

    def test_default_buckets_are_sorted(self):
        edges = obs_metrics.DEFAULT_BUCKETS_US
        assert list(edges) == sorted(edges)
        with pytest.raises(ValueError):
            obs_metrics.Histogram("bad", buckets=(5.0, 1.0))


# ----------------------------------------------------------------------
# Wire ops: trace / explain / the server section
# ----------------------------------------------------------------------


class TestServiceOps:
    def test_trace_op_covers_every_layer(self, line_trace, tmp_path):
        tracing.enable()
        svc = AdmissionService(line_trace, "greedy-threshold",
                               journal_path=str(tmp_path / "j.bin"),
                               fmt="binary")
        _feed_all(svc, line_trace)
        resp = svc.handle({"op": "trace"})
        assert resp["ok"] and resp["spans"] > 0
        names = {ev["name"] for ev in resp["trace"]["traceEvents"]}
        # One span name per instrumented layer: kernel, ledger,
        # journal, service dispatch.  The feed op engages the columnar
        # fast path for greedy-threshold, so the kernel/ledger layers
        # surface as the batched spans.
        assert {"session.batch_decide", "ledger.admit_many",
                "journal.commit", "service.handle"} <= names

    def test_trace_op_last_n(self, line_trace):
        tracing.enable()
        svc = AdmissionService(line_trace, "greedy-threshold")
        _feed_all(svc, line_trace)
        resp = svc.handle({"op": "trace", "last": 5})
        assert resp["ok"]
        assert resp["spans"] == 5
        assert len(resp["trace"]["traceEvents"]) == 5

    def test_explain_admitted_and_rejected(self, line_trace):
        svc = AdmissionService(line_trace, "greedy-threshold")
        _feed_all(svc, line_trace)
        admitted = [d for d, _ in svc.session.ledger.admitted_items()]
        assert admitted
        doc = svc.handle({"op": "explain", "demand": admitted[0]})
        assert doc["ok"]
        exp = doc["explain"]
        assert exp["demand"] == admitted[0]
        assert exp["status"] == "admitted" == exp["verdict"]
        assert exp["instance"] is not None
        assert exp["policy"]["name"] == "greedy-threshold"
        assert all({"instance", "feasible", "route_length", "density",
                    "passes_threshold"} <= set(row)
                   for row in exp["candidates"])
        rejected = sorted(svc._arrived
                          - {d for d, _ in svc.session.ledger.admitted_items()}
                          - svc._departed)
        if rejected:
            exp = svc.handle({"op": "explain",
                              "demand": rejected[0]})["explain"]
            assert exp["status"] == "rejected"
            assert exp["verdict"] in ("capacity-blocked", "below-threshold",
                                      "admittable-now")

    def test_explain_prices_under_dual_gated(self, line_trace):
        svc = AdmissionService(line_trace, "dual-gated")
        _feed_all(svc, line_trace)
        exp = svc.handle({"op": "explain", "demand": 0})["explain"]
        for row in exp["candidates"]:
            assert "price" in row and "gate" in row and "passes_gate" in row
        assert "eta" in exp["policy"]

    def test_explain_unknown_demand_is_friendly(self, line_trace):
        svc = AdmissionService(line_trace, "greedy-threshold")
        resp = svc.handle({"op": "explain", "demand": 10 ** 6})
        assert resp == {"ok": False, "op": "explain",
                        "error": f"unknown demand {10 ** 6}"}

    def test_explain_is_a_pure_read(self, line_trace):
        svc = AdmissionService(line_trace, "preempt-density",
                               {"factor": 1.2})
        _feed_all(svc, line_trace)
        before = json.dumps(svc.session.snapshot(), sort_keys=True,
                            default=str)
        for d in range(min(20, line_trace.problem.num_demands)):
            assert svc.handle({"op": "explain", "demand": d})["ok"]
        after = json.dumps(svc.session.snapshot(), sort_keys=True,
                           default=str)
        assert before == after

    def test_server_section_same_keys_on_every_transport(self, line_trace):
        svc = AdmissionService(line_trace, "greedy-threshold")
        stdio_section = svc.stats()["server"]
        assert all(v is None for v in stdio_section.values())
        server = AsyncLineServer(svc)
        async_section = svc.stats()["server"]
        assert set(async_section) == set(stdio_section)
        assert async_section["clients"] == 0
        assert async_section["max_clients"] == server.max_clients

    def test_stats_reports_live_dual_bound(self, line_trace):
        svc = AdmissionService(line_trace, "dual-gated")
        _feed_all(svc, line_trace)
        stats = svc.stats()
        assert stats["dual_upper_bound"] is not None
        assert stats["dual_upper_bound"] >= stats["realized_profit"]
        # Threshold policies carry no certificate: the key stays, null.
        svc2 = AdmissionService(line_trace, "greedy-threshold")
        assert svc2.stats()["dual_upper_bound"] is None


# ----------------------------------------------------------------------
# Fork merge determinism
# ----------------------------------------------------------------------


class TestForkMerge:
    def test_inline_and_forked_record_same_span_sequence(self, tree_trace):
        import multiprocessing as mp

        from repro.sharding import StreamedShardedDriver

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        tracing.enable(capacity=1 << 15)
        StreamedShardedDriver(2, processes=1).run(
            tree_trace, "greedy-threshold", {})
        inline_names = [e[0] for e in RECORDER.events()]
        RECORDER.clear()
        StreamedShardedDriver(2, processes=2).run(
            tree_trace, "greedy-threshold", {})
        forked_names = [e[0] for e in RECORDER.events()]
        assert "shard.phaseA" in inline_names
        assert "session.decide" in inline_names
        assert forked_names == inline_names


# ----------------------------------------------------------------------
# Resume continuity
# ----------------------------------------------------------------------


class TestResumeContinuity:
    GAUGES = ("repro_events_total", "repro_arrivals_total",
              "repro_admits_total", "repro_rejects_total",
              "repro_evictions_total", "repro_realized_profit",
              "repro_position")

    def test_resume_republishes_cumulative_gauges(self, line_trace,
                                                  tmp_path):
        path = str(tmp_path / "j.journal")
        svc = AdmissionService(line_trace, "preempt-density",
                               {"factor": 1.2}, journal_path=path)
        _feed_all(svc, line_trace)
        before = svc.stats()["metrics"]
        assert before["repro_events_total"]["value"] == len(line_trace.events)
        svc.journal.close()  # the killed-writer shape: no session close

        resumed = AdmissionService.resume(path)
        after = resumed.stats()["metrics"]
        for name in self.GAUGES:
            assert after[name]["value"] == before[name]["value"], name
        # The request counter is per-process by design; the state-derived
        # gauges are what carry continuity across the restart.
        resumed.journal.close()


# ----------------------------------------------------------------------
# Dashboard + CLI round trips
# ----------------------------------------------------------------------


def _stats_doc(**over):
    doc = {
        "position": 100, "arrivals": 60, "accepted": 40, "evictions": 2,
        "num_admitted": 30, "utilization": 0.5, "realized_profit": 80.0,
        "dual_upper_bound": 100.0, "policy": "dual-gated",
        "journaled": True, "commit_lag": 0,
        "server": {"clients": 3, "backpressured_clients": 0,
                   "requests_total": 9, "dispatch_queue_depth": 1},
    }
    doc.update(over)
    return doc


class TestDashboard:
    def test_render_is_pure_and_computes_rates(self):
        prev = _stats_doc(position=0, accepted=0, arrivals=0)
        frame = render_dashboard(_stats_doc(), prev, dt=2.0)
        assert "repro top" in frame
        assert "50.0" in frame       # 100 position delta / 2 s
        assert "20.0" in frame       # 40 admits / 2 s
        assert "20.00%" in frame     # (100 - 80) / 100 optimality gap
        assert "dual-gated" in frame

    def test_render_tolerates_nulls(self):
        frame = render_dashboard(
            _stats_doc(dual_upper_bound=None, commit_lag=None, server={}),
            None, 0.0)
        assert "-" in frame
        # No dual bound -> no gap claim, rendered as the null marker.
        assert "%" in frame

    def test_render_shows_shard_rows(self):
        frame = render_dashboard(_stats_doc(shards=[
            {"shard": 0, "admitted": 5, "utilization": 0.25}]), None, 0.0)
        assert "shard   0" in frame

    def test_top_and_trace_against_live_async_server(self, line_trace,
                                                     tmp_path):
        from repro import cli

        tracing.enable()
        svc = AdmissionService(line_trace, "dual-gated",
                               journal_path=str(tmp_path / "j.bin"),
                               fmt="binary")
        server, thread, box = _start(svc)
        try:
            host, port = box["addr"][:2]
            # Push the trace through a real socket client.
            sock = socket.create_connection((host, port), timeout=30)
            f = sock.makefile("rw", encoding="utf-8")
            dicts = [event_to_dict(ev) for ev in line_trace.events]
            for i in range(0, len(dicts), 64):
                f.write(json.dumps(
                    {"op": "feed", "events": dicts[i:i + 64]}) + "\n")
                f.flush()
                assert json.loads(f.readline())["ok"]
            sock.close()

            out = io.StringIO()
            frames = run_top(host, port, interval=0.01, iterations=2,
                             out=out)
            assert frames == 2
            text = out.getvalue()
            assert "repro top" in text
            assert "dual-gated" in text
            assert "OPT<=(dual)" in text

            resp = request_once(host, port, {"op": "trace"})
            assert resp["ok"]
            names = {ev["name"] for ev in resp["trace"]["traceEvents"]}
            assert "server.dispatch" in names
            assert "session.decide" in names

            # The CLI front ends drive the same wire path.
            out_path = tmp_path / "spans.json"
            assert cli.main(["trace", "--port", str(port),
                             "-o", str(out_path)]) == 0
            doc = json.loads(out_path.read_text())
            assert doc["traceEvents"]
        finally:
            server.request_shutdown()
            thread.join(10)

    def test_cli_top_count(self, line_trace, capsys):
        from repro import cli

        svc = AdmissionService(line_trace, "greedy-threshold")
        server, thread, box = _start(svc)
        try:
            port = box["addr"][1]
            assert cli.main(["top", "--port", str(port),
                             "--interval", "0.05", "--count", "1"]) == 0
            assert "repro top" in capsys.readouterr().out
        finally:
            server.request_shutdown()
            thread.join(10)

    def test_cli_top_refuses_dead_port(self):
        from repro import cli

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here anymore
        with pytest.raises(SystemExit):
            cli.main(["top", "--port", str(port), "--count", "1"])


# ----------------------------------------------------------------------
# Crash dump
# ----------------------------------------------------------------------


class TestCrashDump:
    def test_dump_writes_chrome_trace(self, tmp_path, monkeypatch):
        tracing.enable()
        with span("session.decide", demand=1):
            pass
        path = tmp_path / "dump.json"
        monkeypatch.setattr(tracing, "_DUMP_PATH", str(path))
        tracing._dump_at_exit()
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "session.decide"

    def test_empty_ring_writes_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "dump.json"
        monkeypatch.setattr(tracing, "_DUMP_PATH", str(path))
        tracing._dump_at_exit()
        assert not path.exists()
