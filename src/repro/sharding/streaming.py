"""Streamed sharded replay: phase-A workers feeding the boundary broker.

The two-phase :class:`~repro.sharding.driver.ShardedDriver` serializes
its boundary pass *after* every shard finishes, and every shard worker
rebuilds the instance geometry (routes, Euler tours, conflict CSR) from
scratch.  :class:`StreamedShardedDriver` removes both costs:

* **Shared geometry** — one full-problem
  :class:`~repro.core.conflict.ConflictIndex` is built once
  (:class:`SharedGeometry`); the coordinator ledger uses it directly and
  every shard ledger gets a relabeled :meth:`ConflictIndex.sliced` view
  that shares its interned arrays, frozensets and Euler tours.  On a
  single host this is where the wall-clock win comes from: the
  per-shard rebuild work was strictly redundant.
* **Streamed demands + watermarks** — shard workers run over
  ``multiprocessing`` fork workers (or inline when ``processes <= 1``)
  and emit per-event deltas (admissions / evictions / releases) plus a
  *watermark* — the global index of the next event the shard has not
  yet processed — through a queue as they go, batched every
  ``emit_every`` events.  The watermark feed rides the session kernel's
  ``feed_many(progress_hook=...)``.

Two boundary modes:

* ``boundary="two-phase"`` (default) — the streamed transport carries
  the same data, but boundary demands are still decided after every
  shard's final set is absorbed.  The result is **byte-identical** to
  :class:`~repro.sharding.driver.ShardedDriver` (same admissions,
  evictions, metrics modulo timing, merged solution and certificates) —
  property-tested — while the shared geometry makes the wall clock
  beat the two-phase driver's.
* ``boundary="eager"`` — the broker decides each cut-crossing demand as
  soon as every shard's watermark passes its arrival time, interleaving
  phase B with phase A.  Shard deltas are mirrored into the coordinator
  in **global event order** (the demand-id handshake: a delta carries
  its global event index, and a boundary event at index ``i`` is
  dispatched only once every shard's watermark exceeds ``i``), so the
  outcome is deterministic — independent of message timing, and
  identical between inline and forked transports.  Eager decisions are
  priced against the *live* absorbed state rather than the final one,
  so they can differ from the two-phase result; a mirror admission the
  coordinator refuses (a boundary holder got there first) is counted as
  a **withdrawal** — the shard keeps it locally, the merged metrics
  subtract it — the same conservative two-phase-commit rule the live
  :class:`~repro.sharding.ledger.ShardedLedger` applies.

With ``shards=1`` every demand is local and both modes reduce to the
unsharded replay, event for event.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace as dc_replace

from ..core.conflict import ConflictIndex
from ..core.demand import TreeDemandInstance
from ..core.instance import TreeProblem
from ..obs import tracing as _tracing
from ..online.events import Arrival, Departure, EventTrace, Tick
from ..online.metrics import ReplayMetrics, latency_percentiles
from ..online.policies import make_policy
from ..online.state import CapacityLedger
from ..session.kernel import (AdmissionSession, ReplayResult,
                              certificate_of)
from .driver import ShardedDriver, ShardedReplayResult
from .planner import ShardPlanner

__all__ = ["SharedGeometry", "StreamedShardedDriver",
           "StreamedReplayResult"]


# ----------------------------------------------------------------------
# Shared geometry: one index build, N sliced views
# ----------------------------------------------------------------------


class SharedGeometry:
    """One full-problem conflict index serving coordinator and shards.

    Builds the coordinator :class:`~repro.online.state.CapacityLedger`
    (and with it the full :class:`~repro.core.conflict.ConflictIndex`)
    exactly once; :meth:`shard_view` then hands each shard a ledger over
    a :meth:`~repro.core.conflict.ConflictIndex.sliced` view whose
    arrays, route frozensets and Euler tours are shared read-only with
    the full build.  The shard subproblem's instance list is relabeled
    from the full population (same routes, densified ids) and seeded
    into the subproblem, so neither the instances nor their paths are
    ever recomputed.
    """

    def __init__(self, problem, plan):
        self.problem = problem
        self.plan = plan
        insts = problem.instances()
        edges_of = [frozenset(problem.global_edges_of(d)) for d in insts]
        trees = None
        if isinstance(problem, TreeProblem):
            trees = {q: net for q, net in enumerate(problem.networks)}
        # Bucket maps only back the scalar ``neighbors`` query; defer
        # them — the replay paths run entirely on the array geometry.
        self.index = ConflictIndex(insts, edges_of, trees=trees,
                                   defer_buckets=True)
        #: The exact global capacity view, sharing the full index.
        self.coordinator = CapacityLedger(problem, index=self.index)
        # Instances are sorted by demand id: record each demand's block
        # so a shard's instance rows are O(1) to locate.
        block = [0] * (problem.num_demands + 1)
        d = 0
        for i, inst in enumerate(insts):
            while d <= inst.demand_id:
                block[d] = i
                d += 1
        while d <= problem.num_demands:
            block[d] = len(insts)
            d += 1
        self._block = block

    def shard_view(self, s: int) -> CapacityLedger:
        """Shard ``s``'s ledger over a sliced view of the full index."""
        plan = self.plan
        sub = plan.subproblem(s)
        if sub._instances is None:
            insts = self.problem.instances()
            tree = isinstance(self.problem, TreeProblem)
            local: list = []
            gids: list[int] = []
            for rank, d in enumerate(plan.shard_demands[s]):
                for g in range(self._block[d], self._block[d + 1]):
                    it = insts[g]
                    gids.append(g)
                    if tree:
                        # Direct construction: dataclasses.replace costs
                        # ~6us apiece and this loop covers every
                        # instance of every shard.
                        local.append(TreeDemandInstance(
                            instance_id=len(local), demand_id=rank,
                            network_id=it.network_id, u=it.u, v=it.v,
                            profit=it.profit, height=it.height,
                            path_edges=it.path_edges))
                    else:
                        local.append(dc_replace(it, demand_id=rank,
                                                instance_id=len(local)))
            # Seed the subproblem's instance cache (identical to what it
            # would compute: routes are shared with the full networks)
            # and the plan's local->global instance map in one shot.
            sub._instances = local
            plan._instance_maps.setdefault(s, gids)
        else:
            local = sub.instances()
            gids = plan.instance_map(s)
        return CapacityLedger(sub, index=self.index.sliced(local, gids))


# ----------------------------------------------------------------------
# Stream splitting: one pass, global event indices attached
# ----------------------------------------------------------------------


def _split_streams(plan, trace: EventTrace):
    """Route the trace once: per-shard local streams (densified ids),
    the boundary stream (global ids), each event paired with its global
    index.  Event-for-event identical to ``plan.subtrace(s, trace)`` /
    ``plan.boundary_events(trace)`` — asserted in the test suite."""
    n = plan.n_shards
    locals_of: dict[int, tuple[int, int]] = {}
    for s, ids in enumerate(plan.shard_demands):
        for k, d in enumerate(ids):
            locals_of[d] = (s, k)
    shard_events: list[list] = [[] for _ in range(n)]
    shard_gidx: list[list[int]] = [[] for _ in range(n)]
    boundary_events: list = []
    boundary_gidx: list[int] = []
    has_boundary = bool(plan.boundary_demands)
    for i, ev in enumerate(trace.events):
        if isinstance(ev, Tick):
            for s in range(n):
                shard_events[s].append(ev)
                shard_gidx[s].append(i)
            if has_boundary:
                boundary_events.append(ev)
                boundary_gidx.append(i)
        else:
            info = locals_of.get(ev.demand_id)
            if info is None:
                boundary_events.append(ev)
                boundary_gidx.append(i)
            else:
                s, local = info
                cls = Arrival if isinstance(ev, Arrival) else Departure
                shard_events[s].append(cls(ev.time, local))
                shard_gidx[s].append(i)
    return shard_events, shard_gidx, boundary_events, boundary_gidx, locals_of


def _shard_meta(plan, trace: EventTrace, s: int) -> dict:
    """The sub-trace meta ``plan.subtrace`` would attach (result parity)."""
    meta = dict(trace.meta)
    meta.update({"shard": s, "shards": plan.n_shards, "shard_by": plan.by})
    return meta


# ----------------------------------------------------------------------
# Phase-A hand-off: absorb replication on the bare coordinator
# ----------------------------------------------------------------------


def _absorb_results(coordinator: CapacityLedger, plan,
                    shard_results) -> tuple[int, float]:
    """Pre-admit every shard's final set into the coordinator.

    The exact :meth:`~repro.sharding.ledger.BoundaryBroker.absorb` op
    sequence (shard order, snapshot order within a shard), replicated on
    a bare coordinator ledger so the streamed path never builds the
    :class:`~repro.sharding.ledger.ShardedLedger` mirror machinery.
    """
    tree = isinstance(plan.problem, TreeProblem)
    lut = plan._lookup()
    count = 0
    profits: list[float] = []
    for s, result in enumerate(shard_results):
        ids = plan.shard_demands[s]
        for inst in result.final_solution.selected:
            g = ids[inst.demand_id]
            key = ((g, inst.network_id) if tree
                   else (g, inst.network_id, inst.start, inst.end))
            coordinator.admit(lut[key])
            profits.append(float(inst.profit))
            count += 1
    return count, math.fsum(profits)


# ----------------------------------------------------------------------
# Eager mode: the coordinator mirror and the interleaved boundary loop
# ----------------------------------------------------------------------


class _CoordinatorMirror:
    """Applies shard deltas to the coordinator, in global event order.

    A mirrored admission the coordinator refuses (a boundary demand
    holds part of the route) becomes a *withdrawal*: the shard keeps the
    demand locally, the coordinator never sees it, and the merged
    metrics subtract its profit/acceptance.  A boundary-phase eviction
    of an already-mirrored local is tracked so a later shard-side
    eviction of the same demand is not forfeited twice.

    Within one event the kernel orders ledger work release -> evictions
    -> admission (departures release before the policy runs; preemptive
    policies evict victims before admitting), and the mirror replays
    deltas in that order.
    """

    def __init__(self, coordinator: CapacityLedger, plan):
        self.coord = coordinator
        self.plan = plan
        self.instances = plan.problem.instances()
        #: global demand -> profit, pending merged-metrics subtraction.
        self.withdrawn: dict[int, float] = {}
        self.withdrawn_count = 0
        #: locals the boundary policy evicted off the coordinator.
        self.boundary_evicted: set[int] = set()
        #: demand -> profit forfeited on both sides (added back once in
        #: the merge); a dict so the total is an order-free fsum.
        self._double_forfeited: dict[int, float] = {}

    def apply(self, s: int, admits, evicts, released) -> None:
        plan, coord = self.plan, self.coord
        ids = plan.shard_demands[s]
        if released is not None:
            g = ids[released]
            if coord.is_admitted(g):
                coord.release(g)
        if evicts:
            for local_d, _liid in evicts:
                g = ids[local_d]
                if coord.is_admitted(g):
                    coord.evict(g)
                elif g in self.withdrawn:
                    # The shard forfeited a refused admission itself; its
                    # own row already subtracts the profit.
                    del self.withdrawn[g]
                elif g in self.boundary_evicted:
                    self._double_forfeited[g] = float(
                        self.plan.problem.demands[g].profit)
        if admits:
            imap = plan.instance_map(s)
            for local_d, liid in admits:
                g = ids[local_d]
                gi = imap[liid]
                if bool(coord.feasible([gi])[0]):
                    coord.admit(gi)
                else:
                    self.withdrawn[g] = float(self.instances[gi].profit)
                    self.withdrawn_count += 1

    @property
    def withdrawn_profit(self) -> float:
        return math.fsum(self.withdrawn.values())

    @property
    def double_forfeited(self) -> float:
        return math.fsum(self._double_forfeited.values())


class _EagerBoundary:
    """The boundary phase as an incremental loop over the coordinator.

    The kernel's :class:`~repro.session.kernel.AdmissionSession` cannot
    run delta-mode here — shard mirror ops interleave with boundary
    events on the same ledger, so a single close-time baseline diff
    would swallow mirrored state.  This loop keeps the kernel's exact
    per-event semantics (release outside the latency window, the policy
    call timed, ``finish()`` as one extra sample) but accumulates the
    counter deltas *per event*, so mirrored admissions between boundary
    events never leak into the boundary row.
    """

    def __init__(self, coordinator: CapacityLedger, policy, trace_meta,
                 boundary_demands, mirror: _CoordinatorMirror):
        self.ledger = coordinator
        self.policy = policy
        policy.bind(coordinator)
        self.trace_meta = dict(trace_meta or {})
        self._boundary = set(boundary_demands)
        self._mirror = mirror
        self.events = 0
        self.arrivals = 0
        self.departures = 0
        self.ticks = 0
        self.latencies: list[float] = []
        self.admission_log: list = []
        self.eviction_log: list = []
        self.d_realized = 0.0
        self.d_forfeited = 0.0
        self.d_penalty = 0.0
        self.certificate: dict | None = None
        self._t0 = time.perf_counter()

    def _snap(self):
        led = self.ledger
        return (len(led.admission_log), len(led.eviction_log),
                led.realized_profit, led.forfeited_profit, led.penalty_paid)

    def _accumulate(self, snap) -> None:
        led = self.ledger
        a0, e0, r0, f0, p0 = snap
        self.admission_log.extend(led.admission_log[a0:])
        ev_slice = led.eviction_log[e0:]
        self.eviction_log.extend(ev_slice)
        for d, _iid in ev_slice:
            if d not in self._boundary:
                self._mirror.boundary_evicted.add(d)
        self.d_realized += led.realized_profit - r0
        self.d_forfeited += led.forfeited_profit - f0
        self.d_penalty += led.penalty_paid - p0

    def feed(self, event) -> None:
        led, policy = self.ledger, self.policy
        snap = self._snap()
        if isinstance(event, Arrival):
            self.arrivals += 1
            t0 = time.perf_counter()
            policy.on_arrival(event.demand_id)
            self.latencies.append(time.perf_counter() - t0)
        elif isinstance(event, Departure):
            self.departures += 1
            if led.is_admitted(event.demand_id):
                led.release(event.demand_id)
            t0 = time.perf_counter()
            policy.on_departure(event.demand_id)
            self.latencies.append(time.perf_counter() - t0)
        elif isinstance(event, Tick):
            self.ticks += 1
            t0 = time.perf_counter()
            policy.on_tick(event.time)
            self.latencies.append(time.perf_counter() - t0)
        else:
            raise TypeError(f"unknown event type {type(event).__name__}")
        self.events += 1
        self._accumulate(snap)

    def close(self, *, verify: bool = True) -> ReplayResult | None:
        snap = self._snap()
        t0 = time.perf_counter()
        self.policy.finish()
        self.latencies.append(time.perf_counter() - t0)
        self._accumulate(snap)
        elapsed = time.perf_counter() - self._t0
        if verify:
            self.ledger.verify()
        self.certificate = certificate_of(self.policy)
        if not self.events:
            return None
        accepted = len(self.admission_log)
        pct = latency_percentiles(self.latencies)
        metrics = ReplayMetrics(
            policy=self.policy.name,
            events=self.events,
            arrivals=self.arrivals,
            departures=self.departures,
            ticks=self.ticks,
            accepted=accepted,
            rejected=self.arrivals - accepted,
            acceptance_ratio=(accepted / self.arrivals
                              if self.arrivals else 0.0),
            realized_profit=self.d_realized,
            evictions=len(self.eviction_log),
            forfeited_profit=self.d_forfeited,
            penalty_paid=self.d_penalty,
            penalty_adjusted_profit=self.d_realized - self.d_penalty,
            elapsed_s=elapsed,
            events_per_sec=self.events / elapsed if elapsed > 0 else 0.0,
            latency_p50_us=pct["p50_us"],
            latency_p90_us=pct["p90_us"],
            latency_p99_us=pct["p99_us"],
            latency_mean_us=pct["mean_us"],
            dual_upper_bound=(self.certificate["upper_bound"]
                              if self.certificate else None),
            dual_upper_bound_peak=(self.certificate.get("peak_upper_bound")
                                   if self.certificate else None),
        )
        policy_stats = dict(self.policy.stats)
        if self.certificate:
            policy_stats["dual_certificate"] = self.certificate
        return ReplayResult(
            metrics=metrics,
            admission_log=list(self.admission_log),
            eviction_log=list(self.eviction_log),
            final_solution=None,
            policy_stats=policy_stats,
            trace_meta=self.trace_meta,
        )


# ----------------------------------------------------------------------
# The forked shard worker
# ----------------------------------------------------------------------


def _stream_worker(s, events, ledger, subproblem, meta, policy_name,
                   params, verify, emit_every, queue, eager=True):
    """One shard worker: feed the local stream, streaming deltas +
    watermarks through ``queue`` every ``emit_every`` events.

    The ledger (with its sliced index) is built pre-fork in the parent
    and inherited copy-on-write; only the delta messages and the final
    :class:`~repro.session.kernel.ReplayResult` cross the pipe.

    Only the eager merge consumes delta *contents* (the two-phase
    parent reads nothing but the final watermark), so with
    ``eager=False`` the worker skips the per-event progress hook
    entirely and feeds the whole stream through ``feed_many`` — which
    lets the session engage the columnar batch-decision fast path —
    then ships one final watermark.  Decisions are identical either
    way; only the message traffic differs.
    """
    try:
        recording = _tracing.RECORDER.enabled
        if recording:
            # The fork inherited the parent's ring copy-on-write; this
            # shard's recorder must start empty so the spans it ships
            # back are exactly its own phase-A work.
            _tracing.RECORDER.clear()
        policy = make_policy(policy_name, **params)
        session = AdmissionSession(subproblem, policy, ledger=ledger,
                                   trace_meta=meta)
        led = session.ledger
        if not eager:
            with _tracing.span("shard.phaseA", shard=s):
                session.feed_many(events)
                queue.put(("delta", s, len(events), []))
                result = session.close(verify=verify)
            spans = _tracing.RECORDER.drain() if recording else None
            # The two-phase parent never reads the tail logs (it works
            # from the absorbed shard results), so ship empty tails in
            # the same message shape.
            queue.put(("done", s, result, [], [], spans))
            return
        state = {"a": 0, "e": 0, "buf": []}

        def hook(done: int) -> None:
            k = done - 1
            ev = events[k]
            admits = led.admission_log[state["a"]:]
            evicts = led.eviction_log[state["e"]:]
            state["a"] = len(led.admission_log)
            state["e"] = len(led.eviction_log)
            released = None
            if (isinstance(ev, Departure) and led.was_admitted(ev.demand_id)
                    and not led.was_evicted(ev.demand_id)):
                released = ev.demand_id
            if admits or evicts or released is not None:
                state["buf"].append((k, list(admits), list(evicts), released))
            if done % emit_every == 0:
                queue.put(("delta", s, done, state["buf"]))
                state["buf"] = []

        with _tracing.span("shard.phaseA", shard=s):
            session.feed_many(events, progress_hook=hook, progress_every=1)
            queue.put(("delta", s, len(events), state["buf"]))
            state["buf"] = []
            a0, e0 = state["a"], state["e"]
            result = session.close(verify=verify)
        # finish() may flush tail admissions (batching policies): ship
        # them as the post-stream delta the eager merge applies after
        # the last event, before the boundary close.  The shard's span
        # ring rides the same message (None when tracing is off) and is
        # merged into the parent recorder at the final barrier.
        spans = _tracing.RECORDER.drain() if recording else None
        queue.put(("done", s, result,
                   list(led.admission_log[a0:]), list(led.eviction_log[e0:]),
                   spans))
    except BaseException as exc:  # surfaced in the parent
        import traceback

        queue.put(("error", s, f"{exc!r}\n{traceback.format_exc()}"))
        raise


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


@dataclass
class StreamedReplayResult(ShardedReplayResult):
    """A :class:`~repro.sharding.driver.ShardedReplayResult` plus the
    streaming run's own accounting.

    Attributes
    ----------
    mode:
        ``"two-phase"`` or ``"eager"``.
    streaming:
        Transport + handshake stats: ``transport`` (``inline`` /
        ``fork``), ``emit_every``, ``messages``, ``deltas``, per-shard
        final ``watermarks``, and for eager mode the conflict tallies
        (``withdrawn`` count/profit, ``boundary_evictions_of_locals``,
        ``double_forfeited_profit``) plus ``boundary_decided_early`` —
        boundary events dispatched before every shard had finished.
    """

    mode: str = "two-phase"
    streaming: dict = field(default_factory=dict)


class StreamedShardedDriver:
    """Replay traces across streaming shard workers and merge the outcome.

    Parameters
    ----------
    shards:
        Number of shards (>= 1).
    shard_by:
        Partition strategy, ``"subtree"`` or ``"layer"``.
    processes:
        Phase-A worker count.  ``None`` uses ``min(shards, cpu_count)``;
        ``<= 1`` runs the stream inline (deterministic either way — the
        watermark handshake makes fork and inline byte-identical).
        Fork workers need the ``fork`` start method (POSIX); elsewhere
        the driver falls back to inline.
    boundary:
        ``"two-phase"`` (byte-identical to
        :class:`~repro.sharding.driver.ShardedDriver`) or ``"eager"``
        (cut-crossers decided at arrival-time watermarks).
    emit_every:
        Worker delta/watermark batch size (events per message).
    """

    def __init__(self, shards: int, shard_by: str = "subtree",
                 processes: int | None = None,
                 boundary: str = "two-phase", emit_every: int = 64):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if boundary not in ("two-phase", "eager"):
            raise ValueError(
                f"boundary must be 'two-phase' or 'eager', got {boundary!r}")
        if emit_every < 1:
            raise ValueError(f"emit_every must be >= 1, got {emit_every}")
        self.shards = shards
        self.planner = ShardPlanner(shard_by)
        self.processes = processes
        self.boundary = boundary
        self.emit_every = emit_every

    # ------------------------------------------------------------------

    def run(self, trace: EventTrace, policy: str,
            params: dict | None = None, *,
            verify: bool = True) -> StreamedReplayResult:
        """Replay ``trace`` through ``policy`` across streaming shards."""
        params = dict(params or {})
        boundary_policy = make_policy(policy, **params)  # validates early
        plan = self.planner.plan(trace.problem, self.shards)
        (shard_events, shard_gidx, boundary_events, boundary_gidx,
         _locals_of) = _split_streams(plan, trace)
        metas = [_shard_meta(plan, trace, s) for s in range(plan.n_shards)]
        # Subproblem demand containers are trace prep (the two-phase
        # driver builds them inside ``plan.subtrace``, outside its wall
        # window); the geometry/ledger builds below stay inside.
        for s in range(plan.n_shards):
            plan.subproblem(s)

        t0 = time.perf_counter()
        geometry = SharedGeometry(trace.problem, plan)
        views = [geometry.shard_view(s) for s in range(plan.n_shards)]
        coordinator = geometry.coordinator

        nproc = self.processes
        if nproc is None:
            import os

            nproc = min(plan.n_shards, os.cpu_count() or 1)
        nproc = min(nproc, plan.n_shards)
        use_fork = False
        if nproc > 1:
            import multiprocessing as mp

            use_fork = "fork" in mp.get_all_start_methods()

        runner = self._run_forked if use_fork else self._run_inline
        (shard_results, boundary_result, absorb_s, mirror,
         stats) = runner(trace, plan, geometry, views, metas,
                         shard_events, shard_gidx,
                         boundary_events, boundary_gidx,
                         policy, params, boundary_policy, verify)
        wall = time.perf_counter() - t0

        broker_certificate = stats.pop("_certificate", None)
        merged = ShardedDriver._merge(
            trace, shard_results, boundary_result, wall,
            broker_certificate=broker_certificate)
        if mirror is not None and (mirror.withdrawn_count
                                   or mirror.double_forfeited):
            merged = self._adjust_for_conflicts(merged, mirror)
        if self.boundary == "eager":
            # Boundary work overlaps phase A: the wall clock *is* the
            # critical path.
            critical = wall
        else:
            critical = (max(r.metrics.elapsed_s for r in shard_results)
                        + absorb_s
                        + (boundary_result.metrics.elapsed_s
                           if boundary_result else 0.0))
        policy_stats = {
            "shards": [dict(r.policy_stats) for r in shard_results],
            "boundary": (dict(boundary_result.policy_stats)
                         if boundary_result else {}),
            "absorbed": stats.pop("_absorbed"),
            "streaming": stats,
        }
        return StreamedReplayResult(
            plan=plan.summary(),
            shard_results=shard_results,
            boundary_result=boundary_result,
            merged=merged,
            merged_solution=coordinator.snapshot(),
            policy_stats=policy_stats,
            wall_s=wall,
            critical_path_s=critical,
            mode=self.boundary,
            streaming=stats,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _adjust_for_conflicts(merged: ReplayMetrics,
                              mirror: _CoordinatorMirror) -> ReplayMetrics:
        """Fold eager-mode conflict accounting into the merged metrics.

        Withdrawn admissions (mirrors the coordinator refused) are
        subtracted from acceptance and realized profit; a demand both
        boundary-evicted and shard-evicted had its profit forfeited on
        both rows, so one copy is added back.
        """
        wd = mirror.withdrawn_count
        accepted = merged.accepted - wd
        realized = (merged.realized_profit - mirror.withdrawn_profit
                    + mirror.double_forfeited)
        return dc_replace(
            merged,
            accepted=accepted,
            rejected=merged.rejected + wd,
            acceptance_ratio=(accepted / merged.arrivals
                              if merged.arrivals else 0.0),
            realized_profit=realized,
            forfeited_profit=merged.forfeited_profit - mirror.double_forfeited,
            penalty_adjusted_profit=realized - merged.penalty_paid,
        )

    # ------------------------------------------------------------------
    # Inline transport
    # ------------------------------------------------------------------

    def _run_inline(self, trace, plan, geometry, views, metas,
                    shard_events, shard_gidx, boundary_events,
                    boundary_gidx, policy, params, boundary_policy, verify):
        n = plan.n_shards
        stats: dict = {"transport": "inline", "emit_every": self.emit_every,
                       "messages": 0, "deltas": 0,
                       "watermarks": [len(ev) for ev in shard_events]}
        if self.boundary == "two-phase":
            shard_results = []
            for s in range(n):
                with _tracing.span("shard.phaseA", shard=s):
                    policy_s = make_policy(policy, **params)
                    session = AdmissionSession(views[s].problem, policy_s,
                                               ledger=views[s],
                                               trace_meta=metas[s])
                    session.feed_many(shard_events[s])
                    shard_results.append(session.close(verify=verify))
            return self._finish_two_phase(
                trace, plan, geometry, shard_results, boundary_policy,
                verify, stats)

        # Eager: one pass over the global stream, mirroring each shard
        # delta before the next event and dispatching boundary events in
        # place — the ordering the forked merge loop reproduces.
        mirror = _CoordinatorMirror(geometry.coordinator, plan)
        eager = _EagerBoundary(geometry.coordinator, boundary_policy,
                               trace.meta, plan.boundary_demands, mirror)
        sessions = []
        for s in range(n):
            policy_s = make_policy(policy, **params)
            sessions.append(AdmissionSession(views[s].problem, policy_s,
                                             ledger=views[s],
                                             trace_meta=metas[s]))
        locals_of: dict[int, tuple[int, int]] = {}
        for s, ids in enumerate(plan.shard_demands):
            for k, d in enumerate(ids):
                locals_of[d] = (s, k)
        has_boundary = bool(plan.boundary_demands)
        decided_early = 0

        def feed_local(s, event, released_candidate):
            led = views[s]
            a0, e0 = len(led.admission_log), len(led.eviction_log)
            sessions[s].feed(event)
            released = None
            if (released_candidate is not None
                    and led.was_admitted(released_candidate)
                    and not led.was_evicted(released_candidate)):
                released = released_candidate
            admits = led.admission_log[a0:]
            evicts = led.eviction_log[e0:]
            if admits or evicts or released is not None:
                stats["deltas"] += 1
                mirror.apply(s, admits, evicts, released)

        for ev in trace.events:
            if isinstance(ev, Tick):
                for s in range(n):
                    feed_local(s, ev, None)
                if has_boundary:
                    eager.feed(ev)
                    decided_early += 1
            else:
                info = locals_of.get(ev.demand_id)
                if info is None:
                    eager.feed(ev)
                    decided_early += 1
                else:
                    s, local = info
                    if isinstance(ev, Arrival):
                        feed_local(s, Arrival(ev.time, local), None)
                    else:
                        feed_local(s, Departure(ev.time, local), local)
        shard_results = []
        for s in range(n):
            led = views[s]
            a0, e0 = len(led.admission_log), len(led.eviction_log)
            shard_results.append(sessions[s].close(verify=verify))
            mirror.apply(s, led.admission_log[a0:], led.eviction_log[e0:],
                         None)
        boundary_result = eager.close(verify=verify)
        stats.update(self._eager_stats(mirror, decided_early))
        stats["_absorbed"] = {"count": 0, "profit": 0.0}
        stats["_certificate"] = eager.certificate
        return shard_results, boundary_result, 0.0, mirror, stats

    # ------------------------------------------------------------------
    # Forked transport
    # ------------------------------------------------------------------

    def _run_forked(self, trace, plan, geometry, views, metas,
                    shard_events, shard_gidx, boundary_events,
                    boundary_gidx, policy, params, boundary_policy, verify):
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        queue = ctx.Queue()
        n = plan.n_shards
        procs = [
            ctx.Process(
                target=_stream_worker,
                args=(s, shard_events[s], views[s], views[s].problem,
                      metas[s], policy, params, verify, self.emit_every,
                      queue, self.boundary == "eager"),
                daemon=True,
            )
            for s in range(n)
        ]
        for p in procs:
            p.start()

        stats: dict = {"transport": "fork", "emit_every": self.emit_every,
                       "messages": 0, "deltas": 0,
                       "watermarks": [0] * n}
        eager = self.boundary == "eager"
        mirror = (_CoordinatorMirror(geometry.coordinator, plan)
                  if eager else None)
        eager_loop = (_EagerBoundary(geometry.coordinator, boundary_policy,
                                     trace.meta, plan.boundary_demands,
                                     mirror)
                      if eager else None)
        shard_results: list = [None] * n
        tails: list = [None] * n
        worker_spans: list = [None] * n
        pending: list[list] = [[] for _ in range(n)]  # (gidx, rec) FIFO
        heads = [0] * n  # consumed prefix of pending[s]
        watermark = [0] * n  # events the worker confirmed processed
        done = [False] * n
        b = 0  # next boundary event
        decided_early = 0

        def next_unconfirmed(s: int) -> float:
            """Global index of shard ``s``'s next *unprocessed* event —
            the lower bound on any delta it may still produce."""
            if done[s]:
                return float("inf")
            w = watermark[s]
            return (shard_gidx[s][w] if w < len(shard_gidx[s])
                    else float("inf"))

        def drain_applicable() -> None:
            """Apply every delta / boundary event whose global order is
            settled: a unit at index ``g`` runs once no shard can still
            produce a delta that must precede it (the demand-id
            handshake that makes the merge timing-independent)."""
            nonlocal b, decided_early
            while True:
                best = None  # (gidx, order, kind, payload)
                for s in range(n):
                    if heads[s] < len(pending[s]):
                        g, rec = pending[s][heads[s]]
                        if best is None or (g, s) < best[:2]:
                            best = (g, s, "delta", rec)
                if eager and b < len(boundary_events):
                    g = boundary_gidx[b]
                    if best is None or (g, n) < best[:2]:
                        best = (g, n, "boundary", boundary_events[b])
                if best is None:
                    return
                g, order, kind, payload = best
                for s in range(n):
                    if s == order:
                        continue
                    u = next_unconfirmed(s)
                    if u < g or (u == g and s < order):
                        return  # shard s may still emit an earlier unit
                if kind == "delta":
                    s = order
                    heads[s] += 1
                    if mirror is not None:
                        _k, admits, evicts, released = payload
                        mirror.apply(s, admits, evicts, released)
                else:
                    if not all(done):
                        decided_early += 1
                    eager_loop.feed(payload)
                    b += 1

        remaining = n
        empties_after_death = 0
        while remaining:
            try:
                msg = queue.get(timeout=1.0)
            except Exception:  # queue.Empty — poll worker liveness
                dead = [s for s, p in enumerate(procs)
                        if not p.is_alive() and not done[s]]
                if dead:
                    # A feeder thread may still be flushing: give the
                    # queue one more beat before declaring the loss.
                    empties_after_death += 1
                    if empties_after_death >= 2:
                        for p in procs:
                            p.terminate()
                        raise RuntimeError(
                            f"shard worker(s) {dead} exited without a "
                            "result") from None
                continue
            empties_after_death = 0
            stats["messages"] += 1
            kind = msg[0]
            if kind == "delta":
                _, s, k_done, recs = msg
                watermark[s] = k_done
                stats["deltas"] += len(recs)
                if eager:
                    pending[s].extend(
                        (shard_gidx[s][rec[0]], rec) for rec in recs)
            elif kind == "done":
                _, s, result, tail_admits, tail_evicts, spans = msg
                shard_results[s] = result
                tails[s] = (tail_admits, tail_evicts)
                worker_spans[s] = spans
                done[s] = True
                remaining -= 1
            else:  # error
                _, s, detail = msg
                for p in procs:
                    p.terminate()
                raise RuntimeError(f"shard worker {s} failed:\n{detail}")
            if eager:
                drain_applicable()
        if eager:
            drain_applicable()
        for p in procs:
            p.join()
        stats["watermarks"] = list(watermark)
        if _tracing.RECORDER.enabled:
            # Merge the shipped per-shard rings at the final barrier, in
            # shard order — before the serialized tail work records its
            # own spans, so the merged sequence matches what the inline
            # transport (shard 0 fully, then shard 1, ...) would record.
            for spans in worker_spans:
                if spans:
                    _tracing.RECORDER.extend(spans)

        if not eager:
            return self._finish_two_phase(
                trace, plan, geometry, shard_results, boundary_policy,
                verify, stats)

        assert b == len(boundary_events)
        for s in range(n):
            tail_admits, tail_evicts = tails[s]
            mirror.apply(s, tail_admits, tail_evicts, None)
        boundary_result = eager_loop.close(verify=verify)
        stats.update(self._eager_stats(mirror, decided_early))
        stats["_absorbed"] = {"count": 0, "profit": 0.0}
        stats["_certificate"] = eager_loop.certificate
        return shard_results, boundary_result, 0.0, mirror, stats

    # ------------------------------------------------------------------
    # Shared tails
    # ------------------------------------------------------------------

    def _finish_two_phase(self, trace, plan, geometry, shard_results,
                          boundary_policy, verify, stats):
        """Absorb the shard finals and run the serialized boundary pass
        on the shared coordinator — the exact
        :class:`~repro.sharding.ledger.BoundaryBroker` sequence."""
        coordinator = geometry.coordinator
        t_absorb = time.perf_counter()
        with _tracing.span("shard.absorb"):
            count, profit = _absorb_results(coordinator, plan, shard_results)
        absorb_s = time.perf_counter() - t_absorb
        events = plan.boundary_events(trace)
        with _tracing.span("shard.phaseB", events=len(events)):
            session = AdmissionSession.over_ledger(
                coordinator, boundary_policy, trace_meta=trace.meta)
            session.feed_many(events)
            result = session.close(verify=verify)
        boundary_result = result if events else None
        stats["_absorbed"] = {"count": count, "profit": profit}
        stats["_certificate"] = session.certificate
        return shard_results, boundary_result, absorb_s, None, stats

    @staticmethod
    def _eager_stats(mirror: _CoordinatorMirror, decided_early: int) -> dict:
        return {
            "boundary_decided_early": decided_early,
            "withdrawn": {"count": mirror.withdrawn_count,
                          "profit": mirror.withdrawn_profit},
            "boundary_evictions_of_locals": len(mirror.boundary_evicted),
            "double_forfeited_profit": mirror.double_forfeited,
        }
