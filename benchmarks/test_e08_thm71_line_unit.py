"""E8 (Theorem 7.1): line-networks with windows, unit height — (4+ε).

Measured ratios against the MILP optimum over window tightness and
resource counts, plus the round-complexity series in Lmax/Lmin (the line
algorithm's epoch count is ⌈log(Lmax/Lmin)⌉, not log n).
"""

from __future__ import annotations

import math

from repro import random_line_problem, solve_line_unit, solve_optimal
from repro.core.solution import verify_line_solution

from common import emit, geomean

EPS = 0.1


def run_experiment():
    rows = []
    ratios_all = []
    for label, kwargs in [
        ("tight windows", dict(window_slack=0.0)),
        ("loose windows", dict(window_slack=2.0)),
        ("r=1", dict(r=1)),
        ("r=3", dict(r=3)),
        ("long jobs", dict(min_len=6, max_len=12)),
        ("short jobs", dict(min_len=1, max_len=3)),
    ]:
        base = dict(n_slots=36, m=16, r=2, max_len=9)
        base.update(kwargs)
        ratios, rounds = [], []
        for seed in range(3):
            p = random_line_problem(seed=seed, **base)
            sol = solve_line_unit(p, epsilon=EPS, seed=seed)
            verify_line_solution(p, sol, unit_height=True)
            opt = solve_optimal(p)
            ratios.append(opt.profit / max(sol.profit, 1e-12))
            rounds.append(sol.stats["total_rounds"])
        ratios_all.extend(ratios)
        rows.append([label, geomean(ratios), max(ratios),
                     sum(rounds) / len(rounds)])

    # Epoch count tracks log(Lmax/Lmin).
    epoch_series = []
    for lmax in [2, 8, 32]:
        p = random_line_problem(n_slots=128, m=60, r=1, seed=9,
                                min_len=1, max_len=lmax)
        sol = solve_line_unit(p, epsilon=0.2, seed=9)
        epoch_series.append((lmax, sol.stats["epochs"]))
        rows.append([f"epochs @ Lmax={lmax}", "-", "-", sol.stats["epochs"]])

    emit(
        "E08",
        f"Theorem 7.1: line + windows, unit height (4+ε), ε={EPS}",
        ["workload", "OPT/ALG geo", "OPT/ALG max", "avg rounds / epochs"],
        rows,
        notes=(
            f"Paper bound: OPT/ALG ≤ 4/(1-ε) = {4/(1-EPS):.2f}; epochs = "
            "⌈log(Lmax/Lmin)⌉+1 (length buckets), independent of n."
        ),
    )
    return ratios_all, epoch_series


def test_thm71_line_unit_ratio(benchmark):
    ratios, epoch_series = benchmark.pedantic(run_experiment, rounds=1,
                                              iterations=1)
    bound = 4 / (1 - EPS)
    assert all(r <= bound + 1e-6 for r in ratios)
    assert geomean(ratios) < 2.5
    for lmax, epochs in epoch_series:
        assert epochs <= math.ceil(math.log2(lmax)) + 1
