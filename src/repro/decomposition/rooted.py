"""Root-fixing tree decomposition (Section 4.2, first construction).

Pick any vertex ``g`` and let ``H`` be ``T`` itself rooted at ``g``.  Every
component ``C(z)`` is the ``T``-subtree below ``z``, whose only outside
neighbour is ``z``'s parent — so the pivot size is ``θ = 1``, but the depth
can be as large as ``n`` (e.g. on a path rooted at an end).  The
sequential Appendix-A algorithm implicitly uses this decomposition.
"""

from __future__ import annotations

from ..network.tree import TreeNetwork
from .base import TreeDecomposition

__all__ = ["root_fixing_decomposition"]


def root_fixing_decomposition(tree: TreeNetwork, root: int = 0) -> TreeDecomposition:
    """``T`` rooted at ``root``: pivot size 1, depth up to ``n``.

    Parameters
    ----------
    tree:
        The tree-network to decompose.
    root:
        The vertex ``g`` to root at (the paper picks it arbitrarily).
    """
    if not (0 <= root < tree.n):
        raise ValueError(f"root {root} outside 0..{tree.n - 1}")
    parent = [-1] * tree.n
    seen = [False] * tree.n
    seen[root] = True
    stack = [root]
    while stack:
        x = stack.pop()
        for y in tree.adj[x]:
            if not seen[y]:
                seen[y] = True
                parent[y] = x
                stack.append(y)
    return TreeDecomposition(tree, parent, name="root-fixing")
