"""Tests for the declarative solver registry."""

from __future__ import annotations

import pytest

from repro import (
    random_line_problem,
    random_tree_problem,
    solve_sequential_tree,
    solve_tree_unit,
)
from repro.algorithms import registry


REQUIRED_NAMES = {
    "tree-unit", "tree-narrow", "tree-arbitrary", "sequential",
    "line-unit", "line-narrow", "line-arbitrary",
    "ps-baseline", "ps-line-unit", "ps-line-arbitrary",
    "greedy", "exact",
}


class TestRegistryContents:
    def test_required_names_registered(self):
        assert REQUIRED_NAMES <= set(registry.names())

    def test_specs_have_descriptions(self):
        for spec in registry.specs():
            assert spec.description
            assert spec.family in ("tree", "line", "any")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="tree-unit"):
            registry.get("no-such-solver")

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            registry.register("tree-unit", family="tree", description="dup")(
                lambda p: None
            )


class TestResolution:
    def test_auto_tree_unit(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=0)
        assert registry.resolve("auto", p).name == "tree-unit"

    def test_auto_tree_arbitrary(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=0, height_regime="mixed")
        assert registry.resolve("auto", p).name == "tree-arbitrary"

    def test_auto_line(self):
        p = random_line_problem(n_slots=16, m=6, r=1, seed=0)
        assert registry.resolve("auto", p).name == "line-unit"

    def test_family_mismatch_rejected(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=0)
        with pytest.raises(ValueError, match="needs a line problem"):
            registry.resolve("line-unit", p)
        lp = random_line_problem(n_slots=16, m=6, r=1, seed=0)
        with pytest.raises(ValueError, match="needs a tree problem"):
            registry.resolve("tree-unit", lp)

    def test_any_family_accepts_both(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=0)
        lp = random_line_problem(n_slots=16, m=6, r=1, seed=0)
        assert registry.resolve("greedy", p).name == "greedy"
        assert registry.resolve("greedy", lp).name == "greedy"


class TestDispatch:
    def test_matches_direct_call(self):
        p = random_tree_problem(n=14, m=10, r=2, seed=3)
        via_registry = registry.solve("tree-unit", p, epsilon=0.2, seed=3)
        direct = solve_tree_unit(p, epsilon=0.2, seed=3)
        assert via_registry.profit == direct.profit
        assert [d.instance_id for d in via_registry.selected] == [
            d.instance_id for d in direct.selected
        ]

    def test_kwargs_filtered_per_solver(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=4)
        # sequential accepts neither epsilon nor mis; they must be dropped.
        via_registry = registry.solve(
            "sequential", p, epsilon=0.3, mis="luby", seed=9, hmin=0.2
        )
        direct = solve_sequential_tree(p)
        assert via_registry.profit == direct.profit

    def test_ps_baseline_dispatches_on_regime(self):
        unit = random_line_problem(n_slots=20, m=8, r=1, seed=5)
        mixed = random_line_problem(n_slots=20, m=8, r=1, seed=5,
                                    height_regime="mixed")
        s1 = registry.solve("ps-baseline", unit, epsilon=0.2, seed=5)
        s2 = registry.solve("ps-baseline", mixed, epsilon=0.2, seed=5)
        assert "ps-line-unit" in s1.stats["algorithm"]
        assert "arbitrary" in s2.stats["algorithm"]
