"""Sharded admission engine: fan one trace across decomposition cut lines.

Layering (bottom-up):

* :mod:`~repro.sharding.planner` — :class:`ShardPlanner` /
  :class:`ShardPlan`: partition a problem's edges along Section-4
  decomposition cut lines (balancer subtrees or depth layers; timeline
  blocks on lines), classify demands as shard-local or cut-crossing,
  and materialize per-shard sub-problems and sub-traces;
* :mod:`~repro.sharding.ledger` — :class:`ShardedLedger` (one
  :class:`~repro.online.state.CapacityLedger` per shard plus the exact
  global coordinator view) and :class:`BoundaryBroker` (the only code
  path that serializes cut-crossing demands);
* :mod:`~repro.sharding.driver` — :class:`ShardedDriver`: phase-A
  process-pool replay of the local sub-traces through unmodified
  policies, phase-B serialized boundary replay, merged + verified
  metrics;
* :mod:`~repro.sharding.streaming` — :class:`StreamedShardedDriver`:
  one shared conflict-index build serving every shard
  (:class:`SharedGeometry` + sliced views), fork workers streaming
  per-event deltas and watermarks over queues, and an optional eager
  boundary mode that decides cut-crossers as soon as every shard's
  watermark passes their arrival time.
"""

from .driver import ShardedDriver, ShardedReplayResult
from .ledger import BoundaryBroker, ShardedLedger
from .planner import SHARD_STRATEGIES, ShardPlan, ShardPlanner
from .streaming import (SharedGeometry, StreamedReplayResult,
                        StreamedShardedDriver)

__all__ = [
    "SHARD_STRATEGIES",
    "BoundaryBroker",
    "ShardPlan",
    "ShardPlanner",
    "SharedGeometry",
    "ShardedDriver",
    "ShardedLedger",
    "ShardedReplayResult",
    "StreamedReplayResult",
    "StreamedShardedDriver",
]
