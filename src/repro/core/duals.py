"""Dual variable store for the primal-dual machinery (Sections 3 and 6).

The dual LP has a variable ``alpha(a)`` per demand and ``beta(e)`` per
(global) edge.  The dual constraint of instance ``d`` is

* unit case (Section 3.1):      ``alpha(a_d) + Σ_{e: d∼e} beta(e) >= p(d)``
* height case (Section 6.1):    ``alpha(a_d) + h(d)·Σ_{e: d∼e} beta(e) >= p(d)``

:class:`DualState` stores the assignment in dense NumPy arrays over
interned demand/edge ids, computes constraint left-hand sides and slacks
(single instances or whole populations at once), applies the two raising
rules of the paper — per instance, or batched over an entire MIS with one
scatter-add — and reports the dual objective and the realised slackness
parameter ``λ`` (Section 3.2).  Lemma 3.1 / Lemma 6.1 turn
``objective / λ`` into an upper bound on OPT; benchmarks report that
certificate alongside measured profits.

The ``alpha``/``beta`` attributes remain mapping views keyed by the
original demand/edge identifiers, so callers written against the sparse
dict representation keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["DualState"]


class _DualView(Mapping):
    """Read-only dict façade over a dense dual array.

    Contains exactly the entries that have ever been raised, keyed by the
    original (demand or edge) identifiers.
    """

    def __init__(self, keys: list, index: dict, values: np.ndarray,
                 touched: np.ndarray) -> None:
        self._keys = keys
        self._index = index
        self._values = values
        self._touched = touched

    def __getitem__(self, key: Any) -> float:
        i = self._index.get(key)
        if i is None or i >= len(self._touched) or not self._touched[i]:
            raise KeyError(key)
        return float(self._values[i])

    def __iter__(self) -> Iterator:
        for i in np.nonzero(self._touched)[0]:
            yield self._keys[i]

    def __len__(self) -> int:
        return int(self._touched.sum())


class DualState:
    """Dense ``(alpha, beta)`` assignment plus raise bookkeeping.

    Parameters
    ----------
    profits:
        ``profits[iid]`` = profit of instance ``iid``.
    heights:
        ``heights[iid]`` = height of instance ``iid`` (all 1.0 for unit).
    demand_of:
        ``demand_of[iid]`` = demand id of instance ``iid``.
    edges_of:
        ``edges_of[iid]`` = global edges instance ``iid`` is active on.
    log_raises:
        Keep the per-raise ``raise_log``; turn off in benchmarks where
        only the dual values matter.
    """

    def __init__(
        self,
        profits: Sequence[float],
        heights: Sequence[float],
        demand_of: Sequence[int],
        edges_of: Sequence[Iterable],
        log_raises: bool = True,
    ) -> None:
        self.profits = [float(p) for p in profits]
        self.heights = [float(h) for h in heights]
        self.demand_of = list(demand_of)
        self.edges_of = [tuple(e) for e in edges_of]
        if not (
            len(self.profits)
            == len(self.heights)
            == len(self.demand_of)
            == len(self.edges_of)
        ):
            raise ValueError("profits/heights/demand_of/edges_of lengths differ")
        n = len(self.profits)
        self._profits = np.asarray(self.profits, dtype=np.float64)
        self._heights = np.asarray(self.heights, dtype=np.float64)

        self._demand_keys: list = []
        self._demand_index: dict = {}
        dix = np.empty(n, dtype=np.int64)
        for i, a in enumerate(self.demand_of):
            j = self._demand_index.get(a)
            if j is None:
                j = len(self._demand_keys)
                self._demand_index[a] = j
                self._demand_keys.append(a)
            dix[i] = j
        self._dix = dix

        self._edge_keys: list = []
        self._edge_index: dict = {}
        flat: list[int] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, edges in enumerate(self.edges_of):
            for e in edges:
                j = self._edge_index.get(e)
                if j is None:
                    j = len(self._edge_keys)
                    self._edge_index[e] = j
                    self._edge_keys.append(e)
                flat.append(j)
            indptr[i + 1] = len(flat)
        self._flat = np.asarray(flat, dtype=np.int64)
        self._indptr = indptr

        self._alpha_arr = np.zeros(len(self._demand_keys), dtype=np.float64)
        self._alpha_touched = np.zeros(len(self._demand_keys), dtype=bool)
        self._beta_arr = np.zeros(len(self._edge_keys), dtype=np.float64)
        self._beta_touched = np.zeros(len(self._edge_keys), dtype=bool)

        self._crit_flat: np.ndarray | None = None
        self._crit_indptr: np.ndarray | None = None
        self._crit_tuples: list[tuple] | None = None

        self._log_raises = log_raises
        #: per-instance record of raises: (iid, delta, critical edges, beta bump)
        self.raise_log: list[tuple[int, float, tuple, float]] = []

    # ------------------------------------------------------------------
    # Dict-compatible views
    # ------------------------------------------------------------------

    @property
    def alpha(self) -> Mapping:
        """Raised ``alpha`` entries, keyed by demand id."""
        return _DualView(self._demand_keys, self._demand_index,
                         self._alpha_arr, self._alpha_touched)

    @property
    def beta(self) -> Mapping:
        """Raised ``beta`` entries, keyed by global edge."""
        return _DualView(self._edge_keys, self._edge_index,
                         self._beta_arr, self._beta_touched)

    def _edge_id(self, e: Any) -> int:
        j = self._edge_index.get(e)
        if j is None:
            # An off-route critical edge: intern it and grow the arrays.
            j = len(self._edge_keys)
            self._edge_index[e] = j
            self._edge_keys.append(e)
            self._beta_arr = np.append(self._beta_arr, 0.0)
            self._beta_touched = np.append(self._beta_touched, False)
        return j

    # ------------------------------------------------------------------
    # Constraint evaluation
    # ------------------------------------------------------------------

    def lhs(self, iid: int) -> float:
        """LHS of instance ``iid``'s dual constraint (height-weighted)."""
        beta_sum = 0.0
        beta, flat = self._beta_arr, self._flat
        for k in range(self._indptr[iid], self._indptr[iid + 1]):
            beta_sum += beta[flat[k]]
        return float(
            self._alpha_arr[self._dix[iid]] + self.heights[iid] * beta_sum
        )

    def make_plan(self, iids: Sequence[int] | np.ndarray) -> tuple:
        """Precomputed gather indices for repeated batch queries.

        The engine probes the same group every step of a stage; the CSR
        gather positions depend only on the id array, so computing them
        once per group removes the per-step index arithmetic.
        """
        arr = np.asarray(iids, dtype=np.int64)
        starts = self._indptr[arr]
        counts = self._indptr[arr + 1] - starts
        seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        total = int(counts.sum())
        if total:
            offsets = np.repeat(starts - seg_starts, counts)
            edge_ids = self._flat[np.arange(total) + offsets]
        else:
            edge_ids = np.zeros(0, dtype=np.int64)
        return (arr, edge_ids, seg_starts[counts > 0], counts,
                self._dix[arr], self._heights[arr], self._profits[arr])

    def lhs_batch(self, iids: Sequence[int] | np.ndarray | None = None,
                  plan: tuple | None = None) -> np.ndarray:
        """Vectorized LHS for an array of instance ids (or a saved plan)."""
        if plan is None:
            plan = self.make_plan(iids)
        arr, edge_ids, seg_starts, counts, dix, heights, _ = plan
        if len(arr) == 0:
            return np.zeros(0, dtype=np.float64)
        sums = np.zeros(len(arr), dtype=np.float64)
        if len(edge_ids):
            sums[counts > 0] = np.add.reduceat(
                self._beta_arr[edge_ids], seg_starts
            )
        return self._alpha_arr[dix] + heights * sums

    def slack(self, iid: int) -> float:
        """``p(d) - LHS``; positive while the constraint is unsatisfied."""
        return self.profits[iid] - self.lhs(iid)

    def satisfied(self, iid: int, xi: float = 1.0) -> bool:
        """Whether instance ``iid`` is ``xi``-satisfied: ``LHS >= xi·p``."""
        return self.lhs(iid) >= xi * self.profits[iid] - 1e-12

    def unsatisfied_mask(self, iids: Sequence[int] | np.ndarray,
                         target: float, eps: float = 1e-12,
                         plan: tuple | None = None) -> np.ndarray:
        """Boolean array: which instances are below ``target``-satisfaction."""
        if plan is None:
            plan = self.make_plan(iids)
        profits = plan[6]
        return self.lhs_batch(plan=plan) < target * profits - eps

    def realized_lambda(self, population: Iterable[int] | None = None) -> float:
        """Measured slackness ``λ``: ``min_d LHS(d)/p(d)`` (capped at 1).

        Section 3.2's parameter; the approximation certificates of
        Lemmas 3.1 and 6.1 divide by this.
        """
        if population is not None:
            arr = np.asarray(list(population), dtype=np.int64)
        else:
            arr = np.arange(len(self.profits), dtype=np.int64)
        if len(arr) == 0:
            return 1.0
        ratios = self.lhs_batch(arr) / self._profits[arr]
        return float(min(1.0, ratios.min()))

    # ------------------------------------------------------------------
    # Raising rules
    # ------------------------------------------------------------------

    def raise_unit(
        self, iid: int, critical: Sequence, include_alpha: bool = True
    ) -> float:
        """Section 3.2's raise: δ = slack/(|π|+1); α and each β(e∈π) += δ.

        With ``include_alpha=False`` (the Appendix-A single-tree
        improvement, where at most one instance per demand exists) only
        the β variables are raised and δ = slack/|π|.

        Returns the applied δ.  Tightens the constraint exactly when the
        critical edges are a subset of the instance's active edges.
        """
        s = self.slack(iid)
        if s <= 0:
            return 0.0
        denom = len(critical) + (1 if include_alpha else 0)
        if denom == 0:
            raise ValueError(
                f"instance {iid}: cannot raise with no critical edges and "
                "no alpha"
            )
        delta = s / denom
        if include_alpha:
            a = self._dix[iid]
            self._alpha_arr[a] += delta
            self._alpha_touched[a] = True
        for e in critical:
            j = self._edge_id(e)
            self._beta_arr[j] += delta
            self._beta_touched[j] = True
        if self._log_raises:
            self.raise_log.append((iid, delta, tuple(critical), delta))
        return delta

    def raise_narrow(self, iid: int, critical: Sequence) -> float:
        """Section 6.1's raise for narrow instances.

        δ = slack / (1 + 2·h·|π|²); α += δ and each β(e∈π) += 2|π|δ, which
        tightens the height-weighted constraint
        (α gains δ, the β-sum gains |π|·2|π|δ, scaled by h).
        Returns the applied δ.
        """
        s = self.slack(iid)
        if s <= 0:
            return 0.0
        k = len(critical)
        h = self.heights[iid]
        delta = s / (1.0 + 2.0 * h * k * k)
        a = self._dix[iid]
        self._alpha_arr[a] += delta
        self._alpha_touched[a] = True
        bump = 2.0 * k * delta
        for e in critical:
            j = self._edge_id(e)
            self._beta_arr[j] += bump
            self._beta_touched[j] = True
        if self._log_raises:
            self.raise_log.append((iid, delta, tuple(critical), bump))
        return delta

    # ------------------------------------------------------------------
    # Batched raising (whole MIS at once)
    # ------------------------------------------------------------------

    def set_critical(self, critical: Mapping[int, Sequence]) -> None:
        """Register the layered decomposition's ``π(d)`` sets.

        Required before the ``*_batch`` raising rules; builds a CSR copy
        of the critical edges so a whole MIS raise is one scatter-add.
        """
        n = len(self.profits)
        tuples: list[tuple] = []
        flat: list[int] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for iid in range(n):
            crit = tuple(critical.get(iid, ()))
            tuples.append(crit)
            for e in crit:
                flat.append(self._edge_id(e))
            indptr[iid + 1] = len(flat)
        self._crit_flat = np.asarray(flat, dtype=np.int64)
        self._crit_indptr = indptr
        self._crit_tuples = tuples

    def _crit_slices(self, arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._crit_indptr is None:
            raise RuntimeError("call set_critical() before batched raises")
        starts = self._crit_indptr[arr]
        counts = self._crit_indptr[arr + 1] - starts
        total = int(counts.sum())
        if total:
            offsets = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            )
            edges = self._crit_flat[np.arange(total) + offsets]
        else:
            edges = np.zeros(0, dtype=np.int64)
        return edges, counts

    def _log_batch(self, arr: np.ndarray, deltas: np.ndarray,
                   bumps: np.ndarray) -> None:
        if not self._log_raises:
            return
        tuples = self._crit_tuples
        for iid, delta, bump in zip(arr.tolist(), deltas.tolist(),
                                    bumps.tolist()):
            self.raise_log.append((iid, delta, tuples[iid], bump))

    def raise_unit_batch(self, iids: Sequence[int] | np.ndarray,
                         include_alpha: bool = True) -> np.ndarray:
        """Apply :meth:`raise_unit` to a whole MIS in one array pass.

        The instances must be pairwise non-conflicting (one MIS step), so
        their α/β updates touch disjoint entries and the batched result
        equals the sequential one.  Returns the applied δ per instance.
        """
        arr = np.asarray(iids, dtype=np.int64)
        if len(arr) == 0:
            return np.zeros(0, dtype=np.float64)
        s = self._profits[arr] - self.lhs_batch(arr)
        live = s > 0
        arr, s = arr[live], s[live]
        if len(arr) == 0:
            return np.zeros(0, dtype=np.float64)
        edges, counts = self._crit_slices(arr)
        denom = counts + (1 if include_alpha else 0)
        if np.any(denom == 0):
            bad = arr[denom == 0][0]
            raise ValueError(
                f"instance {bad}: cannot raise with no critical edges and "
                "no alpha"
            )
        deltas = s / denom
        if include_alpha:
            d = self._dix[arr]
            np.add.at(self._alpha_arr, d, deltas)
            self._alpha_touched[d] = True
        bumps = np.repeat(deltas, counts)
        np.add.at(self._beta_arr, edges, bumps)
        self._beta_touched[edges] = True
        self._log_batch(arr, deltas, deltas)
        return deltas

    def raise_narrow_batch(self, iids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Apply :meth:`raise_narrow` to a whole MIS in one array pass."""
        arr = np.asarray(iids, dtype=np.int64)
        if len(arr) == 0:
            return np.zeros(0, dtype=np.float64)
        s = self._profits[arr] - self.lhs_batch(arr)
        live = s > 0
        arr, s = arr[live], s[live]
        if len(arr) == 0:
            return np.zeros(0, dtype=np.float64)
        edges, counts = self._crit_slices(arr)
        h = self._heights[arr]
        deltas = s / (1.0 + 2.0 * h * counts * counts)
        d = self._dix[arr]
        np.add.at(self._alpha_arr, d, deltas)
        self._alpha_touched[d] = True
        per_edge = 2.0 * counts * deltas
        np.add.at(self._beta_arr, edges, np.repeat(per_edge, counts))
        self._beta_touched[edges] = True
        self._log_batch(arr, deltas, per_edge)
        return deltas

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------

    def objective(self) -> float:
        """Dual objective ``Σ alpha(a) + Σ beta(e)`` of the assignment."""
        return float(
            self._alpha_arr[self._alpha_touched].sum()
            + self._beta_arr[self._beta_touched].sum()
        )

    def opt_upper_bound(self, population: Iterable[int] | None = None) -> float:
        """Weak-duality certificate: ``objective / λ`` upper-bounds OPT.

        Scaling the assignment by ``1/λ`` yields a feasible dual solution
        (proof of Lemma 3.1), whose objective dominates the primal optimum.
        """
        lam = self.realized_lambda(population)
        if lam <= 0:
            return float("inf")
        return self.objective() / lam
