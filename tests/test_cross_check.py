"""Randomized cross-checks: vectorized engine ≡ frozen scalar reference.

For 200+ random small instances spanning both problem families, all MIS
backends and both raising rules, the refactored vectorized engine must
return *byte-identical* selected sets and profits to the pre-refactor
scalar path kept in ``tests/helpers.py`` — same instances, same order,
same floats.
"""

from __future__ import annotations

import pytest

from repro import (
    compile_line,
    compile_tree,
    random_line_problem,
    random_tree_problem,
)
from repro.algorithms.framework import EngineConfig, TwoPhaseEngine

from helpers import ScalarTwoPhaseEngine


def _run_both(inp, cfg):
    vec_sel, vec_stats = TwoPhaseEngine(inp, cfg).run()
    ref_sel, ref_stats = ScalarTwoPhaseEngine(inp, cfg).run()
    return (vec_sel, vec_stats), (ref_sel, ref_stats)


def _assert_identical(inp, cfg, label):
    (vec_sel, _), (ref_sel, _) = _run_both(inp, cfg)
    vec_ids = [d.instance_id for d in vec_sel]
    ref_ids = [d.instance_id for d in ref_sel]
    assert vec_ids == ref_ids, f"{label}: selected sets differ"
    vec_profit = sum(d.profit for d in vec_sel)
    ref_profit = sum(d.profit for d in ref_sel)
    assert vec_profit == ref_profit, f"{label}: profits differ bitwise"


class TestTreeUnitCrossCheck:
    @pytest.mark.parametrize("seed", range(40))
    def test_byte_identical(self, seed):
        p = random_tree_problem(n=12, m=8, r=2, seed=seed)
        inp = compile_tree(p)
        mis = ("luby", "greedy", "priority")[seed % 3]
        cfg = EngineConfig(rule="unit", epsilon=0.15, mis=mis, seed=seed)
        _assert_identical(inp, cfg, f"tree-unit seed={seed} mis={mis}")


class TestLineUnitCrossCheck:
    @pytest.mark.parametrize("seed", range(40))
    def test_byte_identical(self, seed):
        p = random_line_problem(n_slots=18, m=7, r=2, seed=seed, max_len=6)
        inp = compile_line(p)
        mis = ("luby", "greedy", "priority")[seed % 3]
        cfg = EngineConfig(rule="unit", epsilon=0.15, mis=mis, seed=seed)
        _assert_identical(inp, cfg, f"line-unit seed={seed} mis={mis}")


class TestNarrowCrossCheck:
    @pytest.mark.parametrize("seed", range(30))
    def test_tree_narrow(self, seed):
        p = random_tree_problem(n=12, m=8, r=1, seed=seed,
                                height_regime="narrow", hmin=0.15)
        inp = compile_tree(p, instance_filter=lambda d: d.narrow)
        cfg = EngineConfig(rule="narrow", epsilon=0.2, hmin=0.15,
                           mis=("luby", "greedy")[seed % 2], seed=seed,
                           capacity_phase2=True)
        _assert_identical(inp, cfg, f"tree-narrow seed={seed}")

    @pytest.mark.parametrize("seed", range(30))
    def test_line_narrow(self, seed):
        p = random_line_problem(n_slots=16, m=7, r=1, seed=seed, max_len=5,
                                height_regime="narrow", hmin=0.1)
        inp = compile_line(p, instance_filter=lambda d: d.narrow)
        cfg = EngineConfig(rule="narrow", epsilon=0.2, hmin=0.1,
                           mis=("luby", "greedy")[seed % 2], seed=seed,
                           capacity_phase2=True)
        _assert_identical(inp, cfg, f"line-narrow seed={seed}")


class TestSingleStageCrossCheck:
    @pytest.mark.parametrize("seed", range(30))
    def test_ps_style_single_stage(self, seed):
        p = random_line_problem(n_slots=18, m=8, r=2, seed=seed, max_len=6)
        inp = compile_line(p)
        cfg = EngineConfig(rule="unit", single_stage_target=1 / 5.1,
                           mis=("luby", "greedy")[seed % 2], seed=seed)
        _assert_identical(inp, cfg, f"single-stage seed={seed}")

    @pytest.mark.parametrize("seed", range(30))
    def test_sequential_style_full_target(self, seed):
        p = random_tree_problem(n=12, m=7, r=1, seed=seed, profit_ratio=32.0)
        inp = compile_tree(p)
        cfg = EngineConfig(rule="unit", single_stage_target=1.0,
                           mis="greedy", raise_alpha=(seed % 2 == 0))
        _assert_identical(inp, cfg, f"sequential-style seed={seed}")


class TestMixedRegimeCrossCheck:
    @pytest.mark.parametrize("seed", range(30))
    def test_mixed_heights_unit_engine(self, seed):
        p = random_tree_problem(n=14, m=9, r=2, seed=seed,
                                height_regime="mixed")
        inp = compile_tree(p)
        cfg = EngineConfig(rule="unit", epsilon=0.1,
                           mis=("luby", "greedy")[seed % 2], seed=seed)
        _assert_identical(inp, cfg, f"mixed seed={seed}")
