"""Tests for layered decompositions (Lemma 4.2/4.3 and the Section 7 line
construction), checked with the brute-force interference validator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LineProblem,
    balancing_decomposition,
    ideal_decomposition,
    line_layers,
    make_tree,
    random_line_problem,
    random_tree_problem,
    root_fixing_decomposition,
    tree_layers,
)
from repro.decomposition.validate import check_layered_decomposition


def _tree_edges_of(problem):
    # Single-network problems: tree_layers emits *local* edge keys, so the
    # validator's edge space must be local too.
    return {
        d.instance_id: frozenset(d.path_edges) for d in problem.instances()
    }


def _line_edges_of(problem):
    return {
        d.instance_id: frozenset((d.network_id, t) for t in range(d.start, d.end + 1))
        for d in problem.instances()
    }


class TestTreeLayers:
    def test_delta_at_most_six_with_ideal(self):
        p = random_tree_problem(n=40, m=60, r=1, seed=2)
        td = ideal_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        assert ld.delta <= 6
        assert ld.length <= 2 * math.ceil(math.log2(40)) + 1

    def test_interference_property_ideal(self):
        p = random_tree_problem(n=24, m=40, r=1, seed=3)
        td = ideal_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        check_layered_decomposition(ld, _tree_edges_of(p))

    def test_interference_property_root_fixing(self):
        p = random_tree_problem(n=24, m=40, r=1, seed=4)
        td = root_fixing_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        assert ld.delta <= 4  # 2(θ+1) with θ=1
        check_layered_decomposition(ld, _tree_edges_of(p))

    def test_interference_property_balancing(self):
        p = random_tree_problem(n=24, m=40, r=1, seed=5)
        td = balancing_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        check_layered_decomposition(ld, _tree_edges_of(p))

    def test_critical_edges_on_route(self):
        p = random_tree_problem(n=30, m=50, r=1, seed=6)
        td = ideal_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        for d in p.instances():
            assert set(ld.critical[d.instance_id]) <= set(d.path_edges)
            assert len(ld.critical[d.instance_id]) >= 1

    def test_wrong_network_rejected(self):
        p = random_tree_problem(n=10, m=5, r=2, seed=7)
        td = ideal_decomposition(p.networks[0])
        bad = [d for d in p.instances() if d.network_id == 1]
        with pytest.raises(ValueError, match="network"):
            tree_layers(td, bad)

    def test_groups_partition(self):
        p = random_tree_problem(n=30, m=25, r=1, seed=8)
        td = ideal_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        flat = sorted(i for g in ld.groups for i in g)
        assert flat == [d.instance_id for d in p.instances()]

    def test_deepest_captures_first(self):
        # Instances captured deeper in H must land in earlier groups.
        p = random_tree_problem(n=30, m=25, r=1, seed=9)
        td = ideal_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        insts = {d.instance_id: d for d in p.instances()}
        for k, grp in enumerate(ld.groups):
            for iid in grp:
                d = insts[iid]
                z = td.capture(d.u, d.v)
                assert td.depth[z] == td.max_depth - k


class TestLineLayers:
    def test_delta_at_most_three(self):
        p = random_line_problem(n_slots=60, m=40, r=2, seed=1, max_len=16)
        ld = line_layers(p.instances())
        assert ld.delta <= 3

    def test_length_bound(self):
        p = random_line_problem(n_slots=128, m=40, r=1, seed=2, min_len=2, max_len=64)
        ld = line_layers(p.instances())
        lmin, lmax = p.length_range()
        # Instance lengths == processing times here, so the bound applies.
        assert ld.length <= math.ceil(math.log2(lmax / lmin)) + 1

    def test_interference_property(self):
        p = random_line_problem(n_slots=40, m=30, r=2, seed=3, max_len=12)
        ld = line_layers(p.instances())
        # Local edge space for the validator: (resource, slot).
        edges = _line_edges_of(p)
        crit_global = {
            iid: tuple((p.instances()[iid].network_id, t) for t in crit)
            for iid, crit in ld.critical.items()
        }
        from repro.decomposition.layered import LayeredDecomposition

        gl = LayeredDecomposition(groups=ld.groups, critical=crit_global)
        check_layered_decomposition(gl, edges)

    def test_shortest_first(self):
        p = random_line_problem(n_slots=60, m=40, r=1, seed=4, min_len=1, max_len=30)
        ld = line_layers(p.instances())
        insts = p.instances()
        prev_max = 0
        for grp in ld.groups:
            if not grp:
                continue
            lo = min(insts[i].length for i in grp)
            assert lo >= prev_max / 2  # doubling buckets
            prev_max = max(insts[i].length for i in grp)

    def test_unit_length_instances(self):
        # Length-1 instances: critical set collapses to a single slot.
        res = random_line_problem(n_slots=10, m=8, r=1, seed=5, min_len=1, max_len=1)
        ld = line_layers(res.instances())
        assert ld.length == 1
        assert all(len(c) == 1 for c in ld.critical.values())

    def test_out_of_range_length_rejected(self):
        p = random_line_problem(n_slots=30, m=10, r=1, seed=6, min_len=2, max_len=8)
        with pytest.raises(ValueError, match="outside declared"):
            line_layers(p.instances(), l_min=4, l_max=8)

    def test_empty(self):
        ld = line_layers([])
        assert ld.length == 0 and ld.delta == 0


@given(
    n=st.integers(min_value=4, max_value=40),
    m=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_tree_layers_interference_property_random(n, m, seed):
    """Lemma 4.3 as a property: ∆ ≤ 6 and interference always hold."""
    p = random_tree_problem(n=n, m=m, r=1, seed=seed)
    td = ideal_decomposition(p.networks[0])
    ld = tree_layers(td, p.instances())
    assert ld.delta <= 6
    check_layered_decomposition(ld, _tree_edges_of(p))


@given(
    n_slots=st.integers(min_value=4, max_value=50),
    m=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_line_layers_interference_property_random(n_slots, m, seed):
    p = random_line_problem(n_slots=n_slots, m=m, r=1, seed=seed,
                            max_len=max(1, n_slots // 2))
    insts = p.instances()
    ld = line_layers(insts)
    assert ld.delta <= 3
    from repro.decomposition.layered import LayeredDecomposition

    gl = LayeredDecomposition(
        groups=ld.groups,
        critical={
            iid: tuple((insts[iid].network_id, t) for t in crit)
            for iid, crit in ld.critical.items()
        },
    )
    check_layered_decomposition(gl, {
        d.instance_id: frozenset((d.network_id, t) for t in range(d.start, d.end + 1))
        for d in insts
    })
