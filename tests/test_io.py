"""Round-trip tests for JSON serialization."""

from __future__ import annotations

import pytest

from repro import random_line_problem, random_tree_problem, solve_tree_unit
from repro.io import (
    load_problem,
    load_solution,
    problem_from_dict,
    problem_to_dict,
    save_problem,
    save_solution,
    solution_from_dict,
    solution_to_dict,
)


class TestProblemRoundTrip:
    @pytest.mark.parametrize("seed", range(3))
    def test_tree_round_trip(self, seed):
        p = random_tree_problem(n=12, m=8, r=2, seed=seed,
                                height_regime="mixed", access_prob=0.7)
        q = problem_from_dict(problem_to_dict(p))
        assert q.n == p.n
        assert q.access == p.access
        for a, b in zip(p.demands, q.demands):
            assert (a.u, a.v, a.profit, a.height) == (b.u, b.v, b.profit, b.height)
        for na, nb in zip(p.networks, q.networks):
            assert na.edges == nb.edges
        # Instance expansion is identical.
        assert [
            (d.demand_id, d.network_id, d.path_edges) for d in p.instances()
        ] == [(d.demand_id, d.network_id, d.path_edges) for d in q.instances()]

    @pytest.mark.parametrize("seed", range(3))
    def test_line_round_trip(self, seed):
        p = random_line_problem(n_slots=20, m=8, r=2, seed=seed,
                                height_regime="narrow", max_len=6)
        q = problem_from_dict(problem_to_dict(p))
        assert q.n_slots == p.n_slots
        assert len(q.instances()) == len(p.instances())
        for a, b in zip(p.demands, q.demands):
            assert (a.release, a.deadline, a.proc_time, a.profit, a.height) == (
                b.release, b.deadline, b.proc_time, b.profit, b.height
            )

    def test_file_round_trip(self, tmp_path):
        p = random_tree_problem(n=10, m=6, r=1, seed=5)
        path = tmp_path / "problem.json"
        save_problem(p, str(path))
        q = load_problem(str(path))
        assert q.n == p.n

    def test_bad_version_rejected(self):
        doc = problem_to_dict(random_tree_problem(n=6, m=2, r=1, seed=0))
        doc["format"] = 99
        with pytest.raises(ValueError, match="version"):
            problem_from_dict(doc)

    def test_bad_kind_rejected(self):
        doc = problem_to_dict(random_tree_problem(n=6, m=2, r=1, seed=0))
        doc["kind"] = "hypergraph"
        with pytest.raises(ValueError, match="kind"):
            problem_from_dict(doc)


class TestSolutionRoundTrip:
    def test_tree_solution(self, tmp_path):
        p = random_tree_problem(n=14, m=10, r=2, seed=7)
        sol = solve_tree_unit(p, epsilon=0.2, seed=1)
        path = tmp_path / "solution.json"
        save_solution(sol, str(path))
        back = load_solution(str(path), p)
        assert back.profit == pytest.approx(sol.profit)
        assert sorted(d.demand_id for d in back.selected) == sorted(
            d.demand_id for d in sol.selected
        )
        # Routes are re-bound to the problem, so verification still works.
        from repro import verify_tree_solution

        verify_tree_solution(p, back)

    def test_unknown_selection_rejected(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=8)
        sol = solve_tree_unit(p, epsilon=0.2, seed=2)
        doc = solution_to_dict(sol)
        doc["selected"].append(
            {"kind": "tree", "demand_id": 999, "network_id": 0, "u": 0, "v": 1}
        )
        with pytest.raises(ValueError, match="does not exist"):
            solution_from_dict(doc, p)

    def test_stats_survive_json(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=9)
        sol = solve_tree_unit(p, epsilon=0.2, seed=3)
        doc = solution_to_dict(sol)
        import json

        json.dumps(doc)  # everything JSON-safe
        back = solution_from_dict(doc, p)
        assert back.stats["algorithm"] == sol.stats["algorithm"]
