"""Pluggable admission policies for the streaming driver.

Three built-in policies, selectable by name through :func:`make_policy`
(the CLI's ``replay --policy`` and the replay runner dispatch here):

* ``greedy-threshold`` — admit a demand iff some instance fits the
  residual capacity and its profit density (profit / route length)
  clears a fixed threshold.  Thresholds trade acceptance for profit.
* ``dual-gated`` — online primal-dual admission.  Every edge carries an
  exponential price in its current load (the classic online packing
  price function); a demand is admitted iff its profit beats the
  height-weighted price of some feasible route.  Prices need no extra
  state: they are evaluated from the ledger's live loads, so departures
  automatically deflate them.
* ``batch-resolve`` — buffer arrivals and periodically hand the buffer
  to any registry solver on a subproblem over the buffered demands, then
  admit whatever of the solver's selection still fits.  Nothing already
  admitted is ever preempted.  On a departure-free trace, the ``exact``
  solver with a single final flush reproduces the offline optimum
  (with departures, buffered demands that leave before the flush are
  dropped, so the flush optimizes only the survivors).

A policy mutates the shared :class:`~repro.online.state.CapacityLedger`
only through ``admit``; the driver owns releases.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.instance import LineProblem, TreeProblem
from .state import CapacityLedger

__all__ = [
    "AdmissionPolicy",
    "GreedyThreshold",
    "DualGated",
    "BatchResolve",
    "POLICY_NAMES",
    "make_policy",
]

#: Stable policy names, as accepted by :func:`make_policy` and the CLI.
POLICY_NAMES = ("greedy-threshold", "dual-gated", "batch-resolve")


class AdmissionPolicy:
    """Base class: event hooks over a bound :class:`CapacityLedger`."""

    name = "abstract"

    def bind(self, ledger: CapacityLedger) -> None:
        """Attach to a ledger; called once before the replay starts."""
        self.ledger = ledger
        self.stats: dict = {}

    def on_arrival(self, demand_id: int) -> int | None:
        """Decide on an arriving demand; return the admitted instance id
        (or ``None`` when rejected or deferred)."""
        raise NotImplementedError

    def on_departure(self, demand_id: int) -> None:
        """Called after the driver released a departing demand."""

    def on_tick(self, now: float) -> None:
        """Called on :class:`~repro.online.events.Tick` events."""

    def finish(self) -> None:
        """Called once after the last event (final flush point)."""


class GreedyThreshold(AdmissionPolicy):
    """First-fit admission gated by a profit-density threshold.

    Parameters
    ----------
    threshold:
        Minimum profit per route edge; 0 (default) admits anything that
        fits, ``inf`` rejects everything.
    """

    name = "greedy-threshold"

    def __init__(self, threshold: float = 0.0):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = float(threshold)

    def on_arrival(self, demand_id: int) -> int | None:
        return self.ledger.try_admit(demand_id, min_density=self.threshold)


class DualGated(AdmissionPolicy):
    """Online primal-dual admission with exponential edge prices.

    The price of an edge at load ``ℓ`` is ``(pmin / L) · (μ^ℓ − 1)``
    where ``L`` is the longest route and ``μ = max(2, L · pmax/pmin)``:
    an empty edge is free, a full edge prices at ≈ ``pmax``, so the gate
    ramps from "admit everything" to "only the most profitable demands"
    exactly as the network fills.  A demand is admitted through the
    feasible instance with the cheapest route price, iff its profit
    strictly beats ``eta`` times that price (height-weighted).

    Because prices are a pure function of the ledger's live loads, a
    departure instantly lowers the gate on the edges it frees.

    Parameters
    ----------
    eta:
        Gate stiffness; >1 demands a margin over the dual price, <1
        relaxes toward greedy.  Default 1.0.
    mu:
        Price base override; ``None`` derives it from the problem's
        profit spread and route lengths as above.
    """

    name = "dual-gated"

    def __init__(self, eta: float = 1.0, mu: float | None = None):
        if eta <= 0:
            raise ValueError("eta must be positive")
        self.eta = float(eta)
        self._mu_override = mu

    def bind(self, ledger: CapacityLedger) -> None:
        super().bind(ledger)
        problem = ledger.problem
        if problem.num_demands:
            pmin, pmax = problem.profit_range()
        else:
            pmin = pmax = 1.0
        lengths = [max(len(ledger.index.edges_of(d.instance_id)), 1)
                   for d in ledger.instances]
        L = max(lengths, default=1)
        self.mu = (float(self._mu_override) if self._mu_override is not None
                   else max(2.0, L * pmax / max(pmin, 1e-12)))
        self._scale = pmin / L
        self.stats = {"gated": 0, "capacity_blocked": 0, "max_gate": 0.0}

    def route_price(self, iid: int) -> float:
        """Height-weighted exponential price of ``iid``'s route now."""
        loads = self.ledger.route_loads(iid)
        if len(loads) == 0:
            return 0.0
        price = self._scale * float(
            np.sum(np.power(self.mu, loads) - 1.0)
        )
        return self.ledger.instances[iid].height * price

    def on_arrival(self, demand_id: int) -> int | None:
        ledger = self.ledger
        cands = ledger.candidates(demand_id)
        ok = ledger.feasible(cands)
        if not ok.any():
            self.stats["capacity_blocked"] += 1
            return None
        best, best_price = None, math.inf
        for iid in cands[ok].tolist():
            price = self.route_price(iid)
            if price < best_price:
                best, best_price = iid, price
        self.stats["max_gate"] = max(self.stats["max_gate"], best_price)
        profit = ledger.instances[best].profit
        if profit <= self.eta * best_price:
            self.stats["gated"] += 1
            return None
        ledger.admit(best)
        return best


class BatchResolve(AdmissionPolicy):
    """Buffer arrivals; periodically re-solve and admit the winners.

    Every ``resolve_every`` buffered arrivals (and on every tick, and
    once at the end of the trace) the buffer becomes a subproblem over
    the same networks/access sets, any registry solver optimizes it, and
    the selected instances are admitted greedily in profit order —
    skipping whatever no longer fits next to the already-admitted set.
    Admitted demands are never preempted; buffered demands that depart
    before a flush are dropped (they left unserved).

    Parameters
    ----------
    solver:
        Registry name (``"auto"``, ``"exact"``, ``"greedy"``, ...).
    resolve_every:
        Flush the buffer whenever it reaches this many demands; ``0``
        defers everything to ticks and the final flush.
    solver_params:
        Extra keyword arguments for the solver (epsilon, seed, ...).
    """

    name = "batch-resolve"

    def __init__(self, solver: str = "auto", resolve_every: int = 256,
                 solver_params: dict | None = None):
        if resolve_every < 0:
            raise ValueError("resolve_every must be >= 0")
        self.solver = solver
        self.resolve_every = int(resolve_every)
        self.solver_params = dict(solver_params or {})

    def bind(self, ledger: CapacityLedger) -> None:
        super().bind(ledger)
        self.buffer: list[int] = []
        # Companion membership set: departures must not scan the buffer
        # (it can hold every live arrival in final-flush-only mode).
        self._buffered: set[int] = set()
        self.stats = {"flushes": 0, "buffered": 0, "displaced": 0}
        problem = ledger.problem
        self._lookup: dict[tuple, int] = {}
        for inst in ledger.instances:
            if isinstance(problem, TreeProblem):
                key = (inst.demand_id, inst.network_id)
            else:
                key = (inst.demand_id, inst.network_id, inst.start, inst.end)
            self._lookup[key] = inst.instance_id

    def on_arrival(self, demand_id: int) -> int | None:
        self.buffer.append(demand_id)
        self._buffered.add(demand_id)
        self.stats["buffered"] += 1
        if self.resolve_every and len(self.buffer) >= self.resolve_every:
            self._flush()
        return None

    def on_departure(self, demand_id: int) -> None:
        self._buffered.discard(demand_id)

    def on_tick(self, now: float) -> None:
        self._flush()

    def finish(self) -> None:
        self._flush()

    # ------------------------------------------------------------------

    def _subproblem(self, demand_ids: list[int]):
        """The buffered demands as a standalone problem (ids densified)."""
        from dataclasses import replace

        p = self.ledger.problem
        demands = [
            replace(p.demands[d], demand_id=i)
            for i, d in enumerate(demand_ids)
        ]
        access = [p.access[d] for d in demand_ids]
        if isinstance(p, TreeProblem):
            return TreeProblem(n=p.n, networks=p.networks, demands=demands,
                               access=access)
        return LineProblem(n_slots=p.n_slots, resources=p.resources,
                           demands=demands, access=access)

    def _flush(self) -> None:
        from ..algorithms import registry

        # Departed demands were only unlinked from the membership set;
        # filter them out here, once per flush.
        demand_ids = [d for d in self.buffer if d in self._buffered]
        self.buffer.clear()
        self._buffered.clear()
        if not demand_ids:
            return
        self.stats["flushes"] += 1
        sub = self._subproblem(demand_ids)
        solution = registry.solve(self.solver, sub, **self.solver_params)
        chosen = sorted(solution.selected, key=lambda d: (-d.profit, d.demand_id))
        ledger = self.ledger
        for inst in chosen:
            orig = demand_ids[inst.demand_id]
            if isinstance(ledger.problem, TreeProblem):
                key = (orig, inst.network_id)
            else:
                key = (orig, inst.network_id, inst.start, inst.end)
            iid = self._lookup[key]
            if ledger.feasible([iid])[0]:
                ledger.admit(iid)
            else:
                self.stats["displaced"] += 1


def make_policy(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate a policy by registry name.

    >>> make_policy("dual-gated", eta=1.2)
    """
    if name == "greedy-threshold":
        return GreedyThreshold(**kwargs)
    if name == "dual-gated":
        return DualGated(**kwargs)
    if name == "batch-resolve":
        return BatchResolve(**kwargs)
    raise ValueError(
        f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}"
    )
