"""CI smoke: serve a trace, ``kill -9`` mid-stream, resume, diff metrics.

The end-to-end warm-restart story across real process boundaries:

1. generate + save a short trace, record the plain ``repro replay``
   metrics for it;
2. start ``repro serve --journal`` as a subprocess, feed it the first
   half of the trace's events as stdin requests (reading each response),
   then SIGKILL it — no shutdown hooks, exactly the failure the journal
   exists for;
3. ``repro resume --journal`` in a fresh process: recover, finish the
   trace, write the final metrics;
4. diff the resumed metrics (and policy stats) against the plain replay,
   ignoring only wall-clock timing fields.

Exit code 0 iff the metrics match exactly.

Run from the repo root::

    PYTHONPATH=src python tests/smoke_service_restart.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile

POLICY = "dual-gated"
EVENTS = 300
KILL_AFTER = 140


def main() -> int:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    sys.path.insert(0, src)
    from repro.io import event_to_dict, save_trace
    from repro.online import deterministic_metrics, generate_trace

    def deterministic(doc: dict) -> dict:
        doc = deterministic_metrics(doc)
        doc.pop("resumed_at", None)
        return doc

    with tempfile.TemporaryDirectory() as tmp:
        trace = generate_trace("line", events=EVENTS, seed=9,
                               departure_prob=0.4)
        trace_path = os.path.join(tmp, "trace.json")
        save_trace(trace, trace_path)
        plain_path = os.path.join(tmp, "plain.json")
        journal = os.path.join(tmp, "smoke.journal")
        resumed_path = os.path.join(tmp, "resumed.json")

        subprocess.run(
            [sys.executable, "-m", "repro", "replay", trace_path,
             "--policy", POLICY, "-o", plain_path],
            env=env, check=True, stdout=subprocess.DEVNULL,
        )

        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--trace", trace_path,
             "--policy", POLICY, "--journal", journal],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=env, text=True,
        )
        for ev in trace.events[:KILL_AFTER]:
            server.stdin.write(json.dumps(
                {"op": "submit", "event": event_to_dict(ev)}) + "\n")
            server.stdin.flush()
            resp = json.loads(server.stdout.readline())
            if not resp.get("ok"):
                print(f"FAIL: server refused an event: {resp}")
                server.kill()
                return 1
        server.send_signal(signal.SIGKILL)
        server.wait()
        print(f"served {KILL_AFTER}/{len(trace.events)} events, "
              "killed the service with SIGKILL")

        subprocess.run(
            [sys.executable, "-m", "repro", "resume", "--journal", journal,
             "-o", resumed_path],
            env=env, check=True, stdout=subprocess.DEVNULL,
        )
        with open(plain_path) as fh:
            plain = json.load(fh)
        with open(resumed_path) as fh:
            resumed = json.load(fh)
        if resumed.get("resumed_at") != KILL_AFTER:
            print(f"FAIL: expected resume at {KILL_AFTER}, "
                  f"got {resumed.get('resumed_at')}")
            return 1
        a, b = deterministic(plain), deterministic(resumed)
        if a != b:
            diff = {k for k in set(a) | set(b) if a.get(k) != b.get(k)}
            print(f"FAIL: resumed metrics diverge on {sorted(diff)}")
            for k in sorted(diff):
                print(f"  {k}: plain={a.get(k)!r} resumed={b.get(k)!r}")
            return 1
        print(f"OK: warm restart reproduced the uninterrupted replay "
              f"(profit {plain['realized_profit']:.2f}, "
              f"{plain['accepted']}/{plain['arrivals']} accepted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
