"""Dual variable store for the primal-dual machinery (Sections 3 and 6).

The dual LP has a variable ``alpha(a)`` per demand and ``beta(e)`` per
(global) edge.  The dual constraint of instance ``d`` is

* unit case (Section 3.1):      ``alpha(a_d) + Σ_{e: d∼e} beta(e) >= p(d)``
* height case (Section 6.1):    ``alpha(a_d) + h(d)·Σ_{e: d∼e} beta(e) >= p(d)``

:class:`DualState` stores the assignment sparsely, computes constraint
left-hand sides and slacks, applies the two raising rules of the paper,
and reports the dual objective and the realised slackness parameter
``λ`` — the largest value such that every constraint is λ-satisfied
(Section 3.2).  Lemma 3.1 / Lemma 6.1 turn ``objective / λ`` into an upper
bound on OPT; benchmarks report that certificate alongside measured
profits.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["DualState"]


class DualState:
    """Sparse ``(alpha, beta)`` assignment plus raise bookkeeping.

    Parameters
    ----------
    profits:
        ``profits[iid]`` = profit of instance ``iid``.
    heights:
        ``heights[iid]`` = height of instance ``iid`` (all 1.0 for unit).
    demand_of:
        ``demand_of[iid]`` = demand id of instance ``iid``.
    edges_of:
        ``edges_of[iid]`` = global edges instance ``iid`` is active on.
    """

    def __init__(
        self,
        profits: Sequence[float],
        heights: Sequence[float],
        demand_of: Sequence[int],
        edges_of: Sequence[Iterable],
    ):
        self.profits = [float(p) for p in profits]
        self.heights = [float(h) for h in heights]
        self.demand_of = list(demand_of)
        self.edges_of = [tuple(e) for e in edges_of]
        if not (
            len(self.profits)
            == len(self.heights)
            == len(self.demand_of)
            == len(self.edges_of)
        ):
            raise ValueError("profits/heights/demand_of/edges_of lengths differ")
        self.alpha: dict[int, float] = {}
        self.beta: dict[object, float] = {}
        #: per-instance record of raises: (delta, critical edges, beta bump)
        self.raise_log: list[tuple[int, float, tuple, float]] = []

    # ------------------------------------------------------------------
    # Constraint evaluation
    # ------------------------------------------------------------------

    def lhs(self, iid: int) -> float:
        """LHS of instance ``iid``'s dual constraint (height-weighted)."""
        beta_sum = 0.0
        beta = self.beta
        for e in self.edges_of[iid]:
            b = beta.get(e)
            if b is not None:
                beta_sum += b
        return self.alpha.get(self.demand_of[iid], 0.0) + self.heights[iid] * beta_sum

    def slack(self, iid: int) -> float:
        """``p(d) - LHS``; positive while the constraint is unsatisfied."""
        return self.profits[iid] - self.lhs(iid)

    def satisfied(self, iid: int, xi: float = 1.0) -> bool:
        """Whether instance ``iid`` is ``xi``-satisfied: ``LHS >= xi·p``."""
        return self.lhs(iid) >= xi * self.profits[iid] - 1e-12

    def realized_lambda(self, population: Iterable[int] | None = None) -> float:
        """Measured slackness ``λ``: ``min_d LHS(d)/p(d)`` (capped at 1).

        Section 3.2's parameter; the approximation certificates of
        Lemmas 3.1 and 6.1 divide by this.
        """
        iids = population if population is not None else range(len(self.profits))
        lam = 1.0
        for iid in iids:
            lam = min(lam, self.lhs(iid) / self.profits[iid])
        return lam

    # ------------------------------------------------------------------
    # Raising rules
    # ------------------------------------------------------------------

    def raise_unit(
        self, iid: int, critical: Sequence, include_alpha: bool = True
    ) -> float:
        """Section 3.2's raise: δ = slack/(|π|+1); α and each β(e∈π) += δ.

        With ``include_alpha=False`` (the Appendix-A single-tree
        improvement, where at most one instance per demand exists) only
        the β variables are raised and δ = slack/|π|.

        Returns the applied δ.  Tightens the constraint exactly when the
        critical edges are a subset of the instance's active edges.
        """
        s = self.slack(iid)
        if s <= 0:
            return 0.0
        denom = len(critical) + (1 if include_alpha else 0)
        if denom == 0:
            raise ValueError(
                f"instance {iid}: cannot raise with no critical edges and "
                "no alpha"
            )
        delta = s / denom
        if include_alpha:
            a = self.demand_of[iid]
            self.alpha[a] = self.alpha.get(a, 0.0) + delta
        for e in critical:
            self.beta[e] = self.beta.get(e, 0.0) + delta
        self.raise_log.append((iid, delta, tuple(critical), delta))
        return delta

    def raise_narrow(self, iid: int, critical: Sequence) -> float:
        """Section 6.1's raise for narrow instances.

        δ = slack / (1 + 2·h·|π|²); α += δ and each β(e∈π) += 2|π|δ, which
        tightens the height-weighted constraint
        (α gains δ, the β-sum gains |π|·2|π|δ, scaled by h).
        Returns the applied δ.
        """
        s = self.slack(iid)
        if s <= 0:
            return 0.0
        k = len(critical)
        h = self.heights[iid]
        delta = s / (1.0 + 2.0 * h * k * k)
        a = self.demand_of[iid]
        self.alpha[a] = self.alpha.get(a, 0.0) + delta
        bump = 2.0 * k * delta
        for e in critical:
            self.beta[e] = self.beta.get(e, 0.0) + bump
        self.raise_log.append((iid, delta, tuple(critical), bump))
        return delta

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------

    def objective(self) -> float:
        """Dual objective ``Σ alpha(a) + Σ beta(e)`` of the assignment."""
        return sum(self.alpha.values()) + sum(self.beta.values())

    def opt_upper_bound(self, population: Iterable[int] | None = None) -> float:
        """Weak-duality certificate: ``objective / λ`` upper-bounds OPT.

        Scaling the assignment by ``1/λ`` yields a feasible dual solution
        (proof of Lemma 3.1), whose objective dominates the primal optimum.
        """
        lam = self.realized_lambda(population)
        if lam <= 0:
            return float("inf")
        return self.objective() / lam
