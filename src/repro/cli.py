"""Command-line interface.

```
python -m repro generate  --kind tree --n 32 --m 24 --r 2 -o problem.json
python -m repro solve     problem.json --algorithm tree-unit --epsilon 0.1
python -m repro compare   problem.json
python -m repro sweep     a.json b.json --solvers tree-unit,sequential --seeds 0,1,2
python -m repro bench     --smoke
python -m repro replay    --policy dual-gated --events 10000
python -m repro replay    trace.json --shards 4 --shard-by subtree
python -m repro serve     --trace trace.json --policy dual-gated --journal j.log
python -m repro serve     --trace trace.json --journal j.bin --format binary \
                          --sync-window 64 --checkpoint-every 5000
python -m repro serve     --trace trace.json --port 7777 --async \
                          --obs --metrics-port 9100
python -m repro resume    --journal j.log -o metrics.json
python -m repro compact   --journal j.log
python -m repro top       --port 7777
python -m repro trace     --port 7777 --last 500 -o spans.json
python -m repro sweep-preemption --factors 1.2,2.0 --penalties 0,0.25
python -m repro decompose --topology caterpillar --n 32
```

``solve`` prints the solution summary (profit, rounds, λ, the dual
certificate) and optionally writes the solution JSON; ``compare`` runs
the paper's algorithm, the relevant baseline, greedy, and the exact
optimum side by side; ``sweep`` fans (instance, solver, seed) jobs across
a process pool with result caching; ``bench`` times the vectorized hot
path; ``replay`` streams an event trace through an online admission
policy (generating and optionally saving the trace on the fly), and
with ``--shards N`` fans it across the sharded admission engine;
``serve`` runs the long-lived admission service — JSON-lines requests
on stdin (or one TCP client with ``--port``), a write-ahead admission
journal (JSON-lines or binary, group-committed, optionally
checkpointed), and an optional sharded-coordinator backend —
``resume`` warm-restarts a killed service from its journal (seeking to
the last checkpoint and replaying only the tail) and finishes the
trace, and ``compact`` rewrites a journal as header + one checkpoint;
``sweep-preemption`` grids preemption factor × penalty over saved
traces and reports where preemption stops paying; ``decompose`` prints
the Section 4 decomposition table; ``top`` is a live optimality
dashboard over a serving TCP service (polls ``{"op": "stats"}``) and
``trace`` pulls the service's flight-recorder ring as Chrome
``trace_event`` JSON (load in Perfetto / ``about:tracing``).

Algorithm names are resolved through the solver registry
(:mod:`repro.algorithms.registry`); ``--algorithm help`` or the epilog of
``solve --help`` lists them.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.instance import TreeProblem

__all__ = ["main", "build_parser"]


def _int_arg(name: str, minimum: int | None = None):
    """An argparse ``type`` that fails with a friendly message, not a
    traceback, on non-integers and out-of-range values."""

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{name} must be an integer, got {text!r}"
            )
        if minimum is not None and value < minimum:
            raise argparse.ArgumentTypeError(
                f"{name} must be >= {minimum}, got {value}"
            )
        return value

    return parse


def _float_arg(name: str, lo: float | None = None, hi: float | None = None):
    """Like :func:`_int_arg` for floats, with an optional closed range."""

    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{name} must be a number, got {text!r}"
            )
        if (lo is not None and value < lo) or (hi is not None and value > hi):
            span = (f"in [{lo}, {hi}]" if hi is not None else f">= {lo}")
            raise argparse.ArgumentTypeError(
                f"{name} must be {span}, got {value}"
            )
        return value

    return parse


def _float_list(name: str, lo: float | None = None):
    """Parse ``--factors 1.0,1.2`` with a friendly error on bad entries."""

    def parse(text: str) -> list[float]:
        values: list[float] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                values.append(float(part))
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"{name} must be comma-separated numbers, got {part!r}"
                )
            if lo is not None and values[-1] < lo:
                raise argparse.ArgumentTypeError(
                    f"{name} entries must be >= {lo}, got {values[-1]}"
                )
        if not values:
            raise argparse.ArgumentTypeError(f"need at least one {name} value")
        return values

    return parse


def _seed_list(text: str) -> list[int]:
    """Parse ``--seeds 0,1,2`` with a friendly error on bad entries."""
    seeds: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            seeds.append(int(part))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"seeds must be comma-separated integers, got {part!r}"
            )
        if seeds[-1] < 0:
            raise argparse.ArgumentTypeError(
                f"seeds must be non-negative, got {seeds[-1]}"
            )
    if not seeds:
        raise argparse.ArgumentTypeError("need at least one seed")
    return seeds


def _apply_policy_args(kwargs: dict, entries, command: str) -> dict:
    """Fold repeated ``--policy-arg KEY=VALUE`` entries into ``kwargs``
    (values parsed as JSON when possible), with friendly errors."""
    for entry in entries:
        key, sep, value = entry.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"{command}: --policy-arg wants KEY=VALUE, got {entry!r}"
            )
        try:
            kwargs[key] = json.loads(value)
        except json.JSONDecodeError:
            kwargs[key] = value
    return kwargs


def _add_obs_flags(parser) -> None:
    """The observability flags ``serve`` and ``resume`` share."""
    parser.add_argument("--obs", action="store_true",
                        help="enable the flight recorder + request-latency "
                             "histogram (off by default; the hot path then "
                             "pays only one flag check)")
    parser.add_argument("--obs-dump", default=None, metavar="PATH",
                        help="write the span ring to PATH as Chrome trace "
                             "JSON at process exit (implies --obs)")
    parser.add_argument("--metrics-port",
                        type=_int_arg("metrics-port", minimum=0),
                        default=None, metavar="N",
                        help="serve Prometheus text metrics on this HTTP "
                             "port (0 = ephemeral; implies --obs)")


def _setup_obs(args) -> None:
    """Flip the recorder on (and arm the exit dump) before the service
    is built, so warm-restart replay spans are captured too."""
    from .obs import enable, install_crash_dump

    if args.obs or args.obs_dump or args.metrics_port is not None:
        enable()
    if args.obs_dump:
        install_crash_dump(args.obs_dump)


def _start_metrics(args, service) -> None:
    from .obs import start_metrics_server

    if args.metrics_port is None:
        return
    server = start_metrics_server(service.registry, port=args.metrics_port,
                                  on_scrape=service._sync_metrics)
    host, port = server.server_address[:2]
    print(f"metrics on http://{host}:{port}/", file=sys.stderr, flush=True)


def _registry_epilog() -> str:
    from .algorithms import registry

    lines = ["registered solvers:"]
    for spec in registry.specs():
        lines.append(f"  {spec.name:<18} [{spec.family:^4}] {spec.description}")
    lines.append("  auto               picks the paper's algorithm for the "
                 "problem family/heights")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    from .algorithms import registry

    p = argparse.ArgumentParser(
        prog="repro",
        description="Distributed scheduling on line and tree networks "
                    "(arXiv:1205.1924 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a random problem as JSON")
    gen.add_argument("--kind", choices=["tree", "line"], default="tree")
    gen.add_argument("--n", type=int, default=32,
                     help="vertices (tree) / timeslots (line)")
    gen.add_argument("--m", type=int, default=24, help="demands")
    gen.add_argument("--r", type=int, default=2, help="networks/resources")
    gen.add_argument("--topology", default="random")
    gen.add_argument("--heights", default="unit",
                     choices=["unit", "narrow", "wide", "mixed", "bimodal"])
    gen.add_argument("--profit-ratio", type=float, default=10.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)

    solver_names = ["auto"] + registry.names()
    sol = sub.add_parser(
        "solve",
        help="solve a problem JSON",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sol.add_argument("problem")
    sol.add_argument("--algorithm", default="auto", choices=solver_names,
                     metavar="NAME",
                     help="registry solver name (see epilog), default: auto")
    sol.add_argument("--epsilon", type=float, default=0.1)
    sol.add_argument("--seed", type=int, default=0)
    sol.add_argument("--mis", default="luby",
                     choices=["luby", "greedy", "priority"])
    sol.add_argument("--save-solution", default=None)

    cmp_ = sub.add_parser("compare", help="run algorithms side by side")
    cmp_.add_argument("problem")
    cmp_.add_argument("--epsilon", type=float, default=0.1)
    cmp_.add_argument("--seed", type=int, default=0)

    swp = sub.add_parser(
        "sweep",
        help="run a (problem × solver × seed) grid through the batch runner",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    swp.add_argument("problems", nargs="+", help="problem JSON files")
    swp.add_argument("--solvers", default="auto",
                     help="comma-separated registry names (default: auto)")
    swp.add_argument("--seeds", type=_seed_list, default=[0],
                     help="comma-separated seeds (default: 0)")
    swp.add_argument("--epsilon", type=float, default=0.1)
    swp.add_argument("--mis", default="luby",
                     choices=["luby", "greedy", "priority"])
    swp.add_argument("--processes", type=_int_arg("processes", minimum=0),
                     default=None,
                     help="pool size (default: CPU count; 0 or 1 = inline)")
    swp.add_argument("--cache-dir", default=None,
                     help="memoise results keyed by instance hash + config")
    swp.add_argument("-o", "--output", default=None,
                     help="write structured JSON results here")

    ben = sub.add_parser("bench",
                         help="time the vectorized hot path (see "
                              "benchmarks/bench_hot_path.py)")
    ben.add_argument("--smoke", action="store_true",
                     help="small instances, seconds instead of minutes")
    ben.add_argument("-o", "--output", default="BENCH_hotpath.json")

    from .online.events import ARRIVAL_PROCESSES
    from .online.policies import POLICY_NAMES

    rep = sub.add_parser(
        "replay",
        help="stream an event trace through an online admission policy",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    rep.add_argument("trace", nargs="?", default=None,
                     help="trace JSON (from --save-trace); omit to "
                          "generate one")
    rep.add_argument("--policy", default="dual-gated", choices=POLICY_NAMES)
    rep.add_argument("--events", type=_int_arg("events", minimum=1),
                     default=10000,
                     help="event budget for generated traces "
                          "(default: 10000)")
    rep.add_argument("--process", default="poisson",
                     choices=ARRIVAL_PROCESSES)
    rep.add_argument("--kind", choices=["tree", "line"], default="line")
    rep.add_argument("--seed", type=_int_arg("seed", minimum=0),
                     default=0)
    rep.add_argument("--departures",
                     type=_float_arg("departures", lo=0.0, hi=1.0),
                     default=0.3,
                     help="per-arrival departure probability "
                          "(default: 0.3)")
    rep.add_argument("--threshold",
                     type=_float_arg("threshold", lo=0.0), default=0.0,
                     help="greedy-threshold / preempt-density: min profit "
                          "per route edge")
    rep.add_argument("--eta", type=_float_arg("eta", lo=1e-9),
                     default=1.0,
                     help="dual-gated / preempt-dual-gated: gate "
                          "stiffness (default: 1.0)")
    rep.add_argument("--preempt-factor",
                     type=_float_arg("preempt-factor", lo=1e-9),
                     default=1.2,
                     help="preempt-density: admit a blocked arrival only "
                          "when its profit exceeds this multiple of the "
                          "victims' total (default: 1.2)")
    rep.add_argument("--penalty",
                     type=_float_arg("penalty", lo=0.0), default=0.0,
                     help="preemptive policies: fraction of each "
                          "evictee's profit charged as compensation "
                          "(default: 0.0)")
    rep.add_argument("--policy-arg", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="extra policy constructor argument (repeatable; "
                          "values parsed as JSON when possible)")
    rep.add_argument("--solver", default="greedy", metavar="NAME",
                     help="batch-resolve: registry solver for re-solves "
                          "(default: greedy; see epilog)")
    rep.add_argument("--resolve-every",
                     type=_int_arg("resolve-every", minimum=0), default=512,
                     help="batch-resolve: flush cadence in buffered "
                          "arrivals (default: 512; 0 = final flush only)")
    rep.add_argument("--offline", default=None, metavar="NAME",
                     help="also compute the offline benchmark with this "
                          "registry solver (e.g. exact, greedy)")
    from .sharding import SHARD_STRATEGIES

    rep.add_argument("--shards", type=_int_arg("shards", minimum=1),
                     default=1,
                     help="fan the replay across this many shard workers "
                          "(default: 1 = the single-ledger driver)")
    rep.add_argument("--shard-by", default="subtree",
                     choices=SHARD_STRATEGIES,
                     help="partition strategy: balancer subtrees or "
                          "decomposition layers (default: subtree)")
    rep.add_argument("--processes", type=_int_arg("processes", minimum=0),
                     default=None,
                     help="shard worker pool size (default: min(shards, "
                          "CPU count); 0 or 1 = inline)")
    rep.add_argument("--save-trace", default=None,
                     help="write the (generated) trace JSON here")
    rep.add_argument("-o", "--output", default=None,
                     help="write the metrics JSON here")

    srv = sub.add_parser(
        "serve",
        help="run the long-lived admission service over a trace's "
             "demand population",
        epilog="request protocol: one JSON object per stdin line, e.g. "
               '{"op": "admit", "demand": 3, "time": 1.5} — ops: admit, '
               "release, tick, submit, feed (batched events), query, "
               "stats, snapshot, close, trace, explain; one JSON "
               "response per line on stdout",
    )
    srv.add_argument("--trace", required=True,
                     help="trace JSON holding the frozen demand "
                          "population (repro replay --save-trace "
                          "writes one)")
    srv.add_argument("--policy", default="greedy-threshold",
                     choices=POLICY_NAMES)
    srv.add_argument("--policy-arg", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="policy constructor argument (repeatable; "
                          "values parsed as JSON when possible)")
    srv.add_argument("--journal", default=None,
                     help="append-only admission journal (enables "
                          "warm restart via `repro resume`)")
    srv.add_argument("--shards", type=_int_arg("shards", minimum=1),
                     default=1,
                     help="run the sharded coordinator backend with "
                          "this many per-shard ledgers (default: 1)")
    srv.add_argument("--shard-by", default="subtree",
                     choices=SHARD_STRATEGIES)
    srv.add_argument("--port", type=_int_arg("port", minimum=0),
                     default=None,
                     help="serve TCP clients on this port (0 = "
                          "ephemeral) instead of stdin/stdout; "
                          "sequential reconnects unless --async")
    srv.add_argument("--async", action="store_true", dest="async_server",
                     help="with --port: multiplex many concurrent "
                          "clients on one event loop (per-connection "
                          "backpressure, fair round-robin dispatch, "
                          "request-id echo)")
    srv.add_argument("--max-clients",
                     type=_int_arg("max-clients", minimum=1), default=128,
                     help="with --async: concurrent-connection cap "
                          "(default: 128)")
    srv.add_argument("--max-line-bytes",
                     type=_int_arg("max-line-bytes", minimum=2),
                     default=1 << 20,
                     help="request-line byte cap; longer lines get a "
                          'friendly {"ok": false} response '
                          "(default: 1 MiB)")
    srv.add_argument("--sync", action="store_true",
                     help="fsync the journal at every commit "
                          "(power-loss durability; slower)")
    from .io import JOURNAL_FORMATS

    srv.add_argument("--format", default="jsonl", choices=JOURNAL_FORMATS,
                     dest="journal_format",
                     help="journal codec (default: jsonl; binary is "
                          "smaller and faster)")
    srv.add_argument("--sync-window",
                     type=_int_arg("sync-window", minimum=1), default=1,
                     help="group commit: flush/fsync the journal every N "
                          "buffered events (default: 1 = per record)")
    srv.add_argument("--sync-interval-ms",
                     type=_float_arg("sync-interval-ms", lo=1e-6),
                     default=None,
                     help="group commit: also commit once the oldest "
                          "buffered event is this many ms old")
    srv.add_argument("--checkpoint-every",
                     type=_int_arg("checkpoint-every", minimum=0),
                     default=0,
                     help="append a state checkpoint to the journal "
                          "every N events, so resume replays only the "
                          "tail (default: 0 = off)")
    _add_obs_flags(srv)

    res = sub.add_parser(
        "resume",
        help="warm-restart a killed service from its admission journal",
    )
    res.add_argument("--journal", required=True,
                     help="journal written by `repro serve --journal` "
                          "(either codec, auto-detected)")
    res.add_argument("--serve", action="store_true",
                     help="keep serving requests on stdin after the "
                          "restart instead of finishing the trace")
    res.add_argument("--port", type=_int_arg("port", minimum=0),
                     default=None,
                     help="with --serve: serve TCP clients on this "
                          "port instead of stdin")
    res.add_argument("--async", action="store_true", dest="async_server",
                     help="with --serve --port: the concurrent "
                          "multi-client event loop")
    res.add_argument("--max-clients",
                     type=_int_arg("max-clients", minimum=1), default=128,
                     help="with --async: concurrent-connection cap "
                          "(default: 128)")
    res.add_argument("--max-line-bytes",
                     type=_int_arg("max-line-bytes", minimum=2),
                     default=1 << 20,
                     help="request-line byte cap (default: 1 MiB)")
    res.add_argument("--sync", action="store_true",
                     help="fsync the journal at every commit")
    res.add_argument("--sync-window",
                     type=_int_arg("sync-window", minimum=1), default=1,
                     help="group-commit window for appended events "
                          "(default: 1)")
    res.add_argument("--sync-interval-ms",
                     type=_float_arg("sync-interval-ms", lo=1e-6),
                     default=None,
                     help="group-commit interval for appended events")
    res.add_argument("--checkpoint-every",
                     type=_int_arg("checkpoint-every", minimum=0),
                     default=None,
                     help="override the checkpoint cadence recorded in "
                          "the journal header")
    res.add_argument("-o", "--output", default=None,
                     help="write the final metrics JSON here")
    _add_obs_flags(res)

    top = sub.add_parser(
        "top",
        help="live optimality dashboard over a serving TCP service",
        epilog="polls {\"op\": \"stats\"} once per interval and renders "
               "event/admit/evict rates, realized profit vs the live "
               "dual upper bound (the optimality gap), commit lag and "
               "per-client server health; Ctrl-C exits",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=_int_arg("port", minimum=1),
                     required=True,
                     help="the service's TCP port (repro serve --port)")
    top.add_argument("--interval",
                     type=_float_arg("interval", lo=0.05), default=1.0,
                     help="refresh period in seconds (default: 1.0)")
    top.add_argument("--count", type=_int_arg("count", minimum=1),
                     default=None,
                     help="render this many frames then exit "
                          "(default: until Ctrl-C)")

    trc = sub.add_parser(
        "trace",
        help="dump a serving service's flight-recorder ring as Chrome "
             "trace JSON",
        epilog="the output loads in Perfetto (ui.perfetto.dev) or "
               "chrome://tracing; spans cover policy decisions, ledger "
               "admits/evicts, journal commits, shard phases and "
               "connection dispatch",
    )
    trc.add_argument("--host", default="127.0.0.1")
    trc.add_argument("--port", type=_int_arg("port", minimum=1),
                     required=True,
                     help="the service's TCP port (repro serve --port)")
    trc.add_argument("--last", type=_int_arg("last", minimum=1),
                     default=None,
                     help="only the newest N spans (default: the whole "
                          "surviving ring)")
    trc.add_argument("-o", "--output", default=None,
                     help="write the trace JSON here (default: stdout)")

    cpt = sub.add_parser(
        "compact",
        help="rewrite an admission journal as header + one checkpoint",
        epilog="resume then restores the checkpoint instead of replaying "
               "the whole history; safe on journals with torn tails",
    )
    cpt.add_argument("--journal", required=True,
                     help="journal to compact (replaced atomically)")
    cpt.add_argument("--format", default=None, choices=JOURNAL_FORMATS,
                     dest="journal_format",
                     help="convert the codec while compacting "
                          "(default: keep the existing one)")

    swp_p = sub.add_parser(
        "sweep-preemption",
        help="sweep preemption factor × penalty grids over saved traces",
        epilog="with no trace arguments the pinned tests/data corpus "
               "(relative to the working directory) is used",
    )
    swp_p.add_argument("traces", nargs="*",
                       help="trace JSON files (default: the pinned "
                            "tests/data corpus)")
    swp_p.add_argument("--policy", default="preempt-density",
                       choices=["preempt-density", "preempt-dual-gated"])
    swp_p.add_argument("--factors", type=_float_list("factors", lo=1e-9),
                       default=[1.0, 1.2, 1.5, 2.0],
                       help="preempt-density factors (default: "
                            "1.0,1.2,1.5,2.0; ignored for "
                            "preempt-dual-gated)")
    swp_p.add_argument("--penalties", type=_float_list("penalties", lo=0.0),
                       default=[0.0, 0.1, 0.25, 0.5],
                       help="compensation fractions (default: "
                            "0.0,0.1,0.25,0.5)")
    swp_p.add_argument("--baseline", default="greedy-threshold",
                       help="non-preemptive yardstick policy "
                            "(default: greedy-threshold)")
    swp_p.add_argument("--offline", default=None, metavar="NAME",
                       help="offline benchmark solver for the ratio "
                            "columns (e.g. exact, greedy)")
    swp_p.add_argument("--processes", type=_int_arg("processes", minimum=0),
                       default=None,
                       help="pool size (default: CPU count; 0/1 = inline)")
    swp_p.add_argument("--cache-dir", default=None,
                       help="memoise replay results here")
    swp_p.add_argument("-o", "--output", default=None,
                       help="write structured JSON results here")

    dec = sub.add_parser("decompose",
                         help="Section 4 decomposition table for a topology")
    dec.add_argument("--topology", default="random")
    dec.add_argument("--n", type=int, default=32)
    dec.add_argument("--seed", type=_int_arg("seed", minimum=0),
                     default=0)

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant checker over the source tree")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: src/)")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule ids to skip")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="findings as human text or a JSON document")
    lint.add_argument("--explain", metavar="RULE", default=None,
                      help="print a rule's rationale and its bad/good "
                           "fixture examples, then exit")
    lint.add_argument("--list-rules", action="store_true",
                      help="list every registered rule and exit")
    lint.add_argument("-o", "--output", default=None,
                      help="also write the JSON findings document here")
    return p


def _generate(args) -> int:
    from .io import save_problem
    from .workloads import random_line_problem, random_tree_problem

    if args.kind == "tree":
        problem = random_tree_problem(
            n=args.n, m=args.m, r=args.r, topology=args.topology,
            seed=args.seed, profit_ratio=args.profit_ratio,
            height_regime=args.heights,
        )
    else:
        problem = random_line_problem(
            n_slots=args.n, m=args.m, r=args.r, seed=args.seed,
            profit_ratio=args.profit_ratio, height_regime=args.heights,
        )
    save_problem(problem, args.output)
    print(f"wrote {args.kind} problem ({args.m} demands, {args.r} networks) "
          f"to {args.output}")
    return 0


def _solve(args) -> int:
    from .algorithms import registry
    from .core.solution import verify_line_solution, verify_tree_solution
    from .io import load_problem, save_solution
    from .report import render_solution_summary

    problem = load_problem(args.problem)
    try:
        spec = registry.resolve(args.algorithm, problem)
    except ValueError as exc:
        raise SystemExit(str(exc))
    sol = registry.solve(
        spec.name, problem,
        epsilon=args.epsilon, seed=args.seed, mis=args.mis,
    )
    if isinstance(problem, TreeProblem):
        verify_tree_solution(problem, sol, unit_height=False)
    else:
        verify_line_solution(problem, sol, unit_height=False)
    print(render_solution_summary(sol))
    if args.save_solution:
        save_solution(sol, args.save_solution)
        print(f"solution written to {args.save_solution}")
    return 0


def _compare(args) -> int:
    from .algorithms import registry
    from .io import load_problem
    from .report import render_comparison

    problem = load_problem(args.problem)
    kw = dict(epsilon=args.epsilon, seed=args.seed)
    entries = []
    if isinstance(problem, TreeProblem):
        main_name = "tree-unit" if problem.unit_height else "tree-arbitrary"
        main_label = ("tree-unit (7+ε)" if problem.unit_height
                      else "tree-arbitrary (80+ε)")
        entries.append((main_label, registry.solve(main_name, problem, **kw)))
        entries.append(("sequential (App. A)",
                        registry.solve("sequential", problem)))
    else:
        main_name = "line-unit" if problem.unit_height else "line-arbitrary"
        main_label = ("line-unit (4+ε)" if problem.unit_height
                      else "line-arbitrary (23+ε)")
        entries.append((main_label, registry.solve(main_name, problem, **kw)))
        entries.append(("Panconesi–Sozio",
                        registry.solve("ps-baseline", problem, **kw)))
    entries.append(("greedy (density)", registry.solve("greedy", problem)))
    opt = registry.solve("exact", problem)
    print(render_comparison(entries, opt=opt.profit))
    return 0


def _sweep(args) -> int:
    from .algorithms import registry
    from .runners import BatchRunner, Job
    from .report import render_sweep

    solvers = [s.strip() for s in args.solvers.split(",") if s.strip()]
    seeds = args.seeds
    params = {"epsilon": args.epsilon, "mis": args.mis}

    from .io import load_problem

    jobs: list[Job] = []
    skipped: list[str] = []
    for path in args.problems:
        problem = load_problem(path)
        for name in solvers:
            try:
                # Same resolution as `solve` — auto, family gating and all.
                spec = registry.resolve(name, problem)
            except KeyError as exc:
                raise SystemExit(f"sweep: {exc.args[0]}")
            except ValueError:
                skipped.append(f"{name} on {path}")
                continue
            for seed in seeds:
                jobs.append(Job(problem=path, solver=spec.name,
                                params=dict(params), seed=seed))
    if skipped:
        print("skipped (family mismatch): " + ", ".join(skipped))
    runner = BatchRunner(processes=args.processes, cache_dir=args.cache_dir)
    results = runner.run(jobs)
    print(render_sweep(results))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump([r.to_dict() for r in results], fh, indent=2)
        print(f"results written to {args.output}")
    return 1 if any(r.error for r in results) else 0


def _bench(args) -> int:
    from .runners import run_hotpath_bench

    report = run_hotpath_bench(smoke=args.smoke, out_path=args.output)
    for name, case in report["cases"].items():
        line = (f"{name:>5}: {case['instances']} instances, "
                f"pop {case['population']}")
        if "speedup" in case:
            line += (f" | conflict x{case['speedup_conflict']:.1f}"
                     f" | duals x{case['speedup_duals']:.1f}"
                     f" | total x{case['speedup']:.1f}")
        else:
            line += f" | vectorized {case['vectorized_total_s'] * 1e3:.1f} ms"
        print(line)
    if "combined_speedup" in report:
        print(f"combined speedup: x{report['combined_speedup']:.1f}")
    else:
        print("scalar reference unavailable — vectorized timings only")
    print(f"written to {args.output}")
    return 0


def _replay(args) -> int:
    from .algorithms import registry
    from .io import load_trace, save_trace
    from .online import generate_trace, make_policy, replay, with_offline
    from .report import render_replay

    policy_kwargs: dict = {
        "greedy-threshold": lambda: {"threshold": args.threshold},
        "dual-gated": lambda: {"eta": args.eta},
        "batch-resolve": lambda: {
            "solver": args.solver,
            "resolve_every": args.resolve_every,
            "solver_params": {"seed": args.seed},
        },
        "preempt-density": lambda: {
            "factor": args.preempt_factor,
            "penalty": args.penalty,
            "threshold": args.threshold,
        },
        "preempt-dual-gated": lambda: {
            "eta": args.eta,
            "penalty": args.penalty,
        },
    }[args.policy]()
    _apply_policy_args(policy_kwargs, args.policy_arg, "replay")
    # Bad kwargs (e.g. a misspelled --policy-arg name) surface as the
    # same friendly errors bad solver names get, not a raw traceback —
    # and before the (possibly expensive) trace is generated or loaded.
    try:
        policy = make_policy(args.policy, **policy_kwargs)
    except ValueError as exc:
        raise SystemExit(f"replay: {exc}")

    if args.trace:
        trace = load_trace(args.trace)
    else:
        trace = generate_trace(
            args.kind, events=args.events, process=args.process,
            seed=args.seed, departure_prob=args.departures,
        )
        print(f"generated {args.process} {args.kind} trace: "
              f"{len(trace.events)} events, {trace.num_arrivals} arrivals, "
              f"{trace.num_departures} departures")
    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"trace written to {args.save_trace}")

    # Validate solver names against the trace's problem family up front —
    # friendly errors instead of a traceback after the replay has run.
    for name in filter(None, [args.offline,
                              args.solver if args.policy == "batch-resolve"
                              else None]):
        try:
            registry.resolve(name, trace.problem)
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"replay: {exc.args[0]}")

    if args.shards > 1:
        return _replay_sharded(args, trace, policy_kwargs)

    result = replay(trace, policy)
    metrics = result.metrics
    if args.offline:
        from .online import offline_optimum

        metrics = with_offline(
            metrics, offline_optimum(trace, args.offline, seed=args.seed)
        )
    print(render_replay([metrics]))
    if args.output:
        doc = metrics.to_dict()
        doc["policy_stats"] = result.policy_stats
        doc["trace_meta"] = result.trace_meta
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"metrics written to {args.output}")
    return 0


def _replay_sharded(args, trace, policy_kwargs: dict) -> int:
    """The ``replay --shards N`` branch: plan, fan out, merge, render."""
    from .online import with_offline
    from .report import render_sharded_replay
    from .sharding import ShardedDriver

    driver = ShardedDriver(args.shards, shard_by=args.shard_by,
                           processes=args.processes)
    result = driver.run(trace, args.policy, policy_kwargs)
    merged = result.merged
    if args.offline:
        from .online import offline_optimum

        merged = with_offline(
            merged, offline_optimum(trace, args.offline, seed=args.seed)
        )
    print(render_sharded_replay(result, merged))
    if args.output:
        doc = {
            "plan": result.plan,
            "shards": [r.metrics.to_dict() for r in result.shard_results],
            "boundary": (result.boundary_result.metrics.to_dict()
                         if result.boundary_result else None),
            "merged": merged.to_dict(),
            "policy_stats": result.policy_stats,
            "wall_s": result.wall_s,
            "critical_path_s": result.critical_path_s,
            "critical_path_events_per_sec":
                result.critical_path_events_per_sec,
            "trace_meta": dict(trace.meta),
        }
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"metrics written to {args.output}")
    return 0


def _serve(args) -> int:
    """The ``serve`` subcommand: a journaled service over stdin/socket."""
    import os

    from .io import load_trace
    from .online.policies import make_policy
    from .service import AdmissionService

    policy_kwargs = _apply_policy_args({}, args.policy_arg, "serve")
    try:
        make_policy(args.policy, **policy_kwargs)  # validate early
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    _setup_obs(args)
    trace = load_trace(args.trace)
    try:
        service = AdmissionService(
            trace, args.policy, policy_kwargs,
            journal_path=args.journal,
            shards=args.shards, shard_by=args.shard_by, sync=args.sync,
            fmt=args.journal_format, sync_window=args.sync_window,
            sync_interval_ms=args.sync_interval_ms,
            checkpoint_every=args.checkpoint_every,
        )
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    # Banners go to stderr: stdout is the response channel.
    print(f"serving {os.path.basename(args.trace)} "
          f"({trace.num_arrivals} demands) with {args.policy}"
          + (f", journal {args.journal}" if args.journal else "")
          + (f", {args.shards} shards" if args.shards > 1 else ""),
          file=sys.stderr)
    _start_metrics(args, service)
    _run_transport(service, args)
    return 0


def _run_transport(service, args) -> None:
    """Pick the serve transport from the parsed flags (shared by
    ``serve`` and ``resume --serve``)."""
    import sys

    from .service import serve_async, serve_socket, serve_stdio

    if args.port is None:
        if args.async_server:
            raise SystemExit("serve: --async requires --port")
        serve_stdio(service, max_line_bytes=args.max_line_bytes)
        return

    def announce(addr):
        print(f"listening on {addr[0]}:{addr[1]}"
              + (" (async, max-clients "
                 f"{args.max_clients})" if args.async_server else ""),
              file=sys.stderr, flush=True)

    if args.async_server:
        serve_async(service, port=args.port,
                    max_clients=args.max_clients,
                    max_line_bytes=args.max_line_bytes,
                    announce=announce,
                    log=lambda msg: print(f"serve: {msg}",
                                          file=sys.stderr, flush=True))
    else:
        serve_socket(service, port=args.port, announce=announce,
                     max_line_bytes=args.max_line_bytes)


def _resume(args) -> int:
    """The ``resume`` subcommand: warm restart + finish (or keep serving)."""
    from .report import render_replay
    from .service import AdmissionService

    _setup_obs(args)
    try:
        service = AdmissionService.resume(
            args.journal, sync=args.sync,
            sync_window=args.sync_window,
            sync_interval_ms=args.sync_interval_ms,
            checkpoint_every=args.checkpoint_every,
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"resume: {exc}")
    resumed_at = service.position
    print(f"recovered {resumed_at} journaled events "
          f"({service.policy_name}, "
          f"{service.trace.problem.num_demands} demands)",
          file=sys.stderr)
    _start_metrics(args, service)
    if args.serve:
        _run_transport(service, args)
        return 0
    result = service.run_remaining()
    print(render_replay([result.metrics]))
    if args.output:
        doc = result.metrics.to_dict()
        doc["policy_stats"] = result.policy_stats
        doc["trace_meta"] = result.trace_meta
        doc["resumed_at"] = resumed_at
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"metrics written to {args.output}")
    return 0


def _top(args) -> int:
    """The ``top`` subcommand: the live optimality dashboard."""
    from .obs import run_top

    try:
        run_top(args.host, args.port, interval=args.interval,
                iterations=args.count)
    except (OSError, RuntimeError) as exc:
        raise SystemExit(f"top: {exc}")
    return 0


def _trace_cmd(args) -> int:
    """The ``trace`` subcommand: pull the span ring as Chrome trace
    JSON."""
    from .obs import request_once

    req: dict = {"op": "trace"}
    if args.last is not None:
        req["last"] = args.last
    try:
        resp = request_once(args.host, args.port, req)
    except OSError as exc:
        raise SystemExit(f"trace: {exc}")
    if not resp.get("ok"):
        raise SystemExit(f"trace: service said {resp.get('error')!r}")
    doc = resp["trace"]
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(doc, fh)
        print(f"{resp['spans']} spans written to {args.output} "
              "(open in Perfetto / chrome://tracing)")
    else:
        json.dump(doc, sys.stdout)
        print()
    return 0


def _compact(args) -> int:
    """The ``compact`` subcommand: fold a journal into one checkpoint."""
    from .service import AdmissionService

    try:
        info = AdmissionService.compact(args.journal,
                                        fmt=args.journal_format)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"compact: {exc}")
    print(f"compacted {args.journal}: {info['position']} events folded "
          f"into one checkpoint, {info['bytes_before']} -> "
          f"{info['bytes_after']} bytes ({info['format']})")
    return 0


def _sweep_preemption(args) -> int:
    """Factor × penalty preemption sweep over saved traces.

    A thin wrapper over the :class:`~repro.runners.replay.ReplayRunner`
    grid: one baseline row per trace plus one row per (factor, penalty)
    cell, rendered through the shared sweep table, followed by a
    break-even summary of where preemption stops paying (judged on
    penalty-adjusted profit vs the baseline).
    """
    import glob
    import os

    from .report import render_sweep
    from .runners.replay import ReplayJob, ReplayRunner

    traces = list(args.traces)
    if not traces:
        traces = sorted(glob.glob(os.path.join("tests", "data",
                                               "trace_*.json")))
        if not traces:
            raise SystemExit(
                "sweep-preemption: no traces given and no pinned corpus "
                "found under tests/data/ — pass trace JSON files "
                "(repro replay --save-trace writes them)"
            )
    factors = args.factors if args.policy == "preempt-density" else [None]
    jobs: list[ReplayJob] = []
    for path in traces:
        stem = os.path.splitext(os.path.basename(path))[0]
        jobs.append(ReplayJob(trace=path, policy=args.baseline,
                              label=f"{stem} baseline"))
        for f in factors:
            for q in args.penalties:
                params = {"penalty": q}
                tag = f"q={q:g}"
                if f is not None:
                    params["factor"] = f
                    tag = f"f={f:g} {tag}"
                jobs.append(ReplayJob(trace=path, policy=args.policy,
                                      params=params,
                                      label=f"{stem} {tag}"))
    runner = ReplayRunner(processes=args.processes,
                          cache_dir=args.cache_dir,
                          offline=args.offline)
    results = runner.run(jobs)
    print(render_sweep(results))

    def adj(r):
        return (r.stats or {}).get("penalty_adjusted_profit", r.profit)

    per_trace = len(results) // len(traces)
    print()
    for i, path in enumerate(traces):
        stem = os.path.splitext(os.path.basename(path))[0]
        block = results[i * per_trace:(i + 1) * per_trace]
        base, grid = block[0], block[1:]
        if base.error:
            # A zero-profit errored baseline would make every grid cell
            # look like a win; say what happened instead.
            print(f"{stem}: baseline {args.baseline} failed — "
                  "no break-even summary (see the error column above)")
            continue
        cells = len(args.penalties)
        for j, f in enumerate(factors):
            row = grid[j * cells:(j + 1) * cells]
            paying = [q for q, r in zip(args.penalties, row)
                      if not r.error and adj(r) > adj(base)]
            label = f"factor {f:g}" if f is not None else args.policy
            if paying:
                print(f"{stem}: {label} beats {args.baseline} up to "
                      f"penalty {max(paying):g}")
            else:
                print(f"{stem}: {label} never beats {args.baseline} — "
                      "preemption stops paying")
    if args.output:
        with open(args.output, "w") as fh:
            json.dump([r.to_dict() for r in results], fh, indent=2)
        print(f"results written to {args.output}")
    return 1 if any(r.error for r in results) else 0


def _decompose(args) -> int:
    from .decomposition import (
        balancing_decomposition,
        ideal_decomposition,
        root_fixing_decomposition,
    )
    from .report import render_decomposition
    from .workloads import make_tree

    tree = make_tree(args.n, args.topology, seed=args.seed)
    print(f"{args.topology} tree on {args.n} vertices")
    print(f"{'construction':<14}{'depth':>7}{'pivot θ':>9}")
    print("-" * 30)
    for name, builder in [("root-fixing", root_fixing_decomposition),
                          ("balancing", balancing_decomposition),
                          ("ideal", ideal_decomposition)]:
        td = builder(tree)
        print(f"{name:<14}{td.max_depth:>7}{td.pivot_size:>9}")
    print()
    print(render_decomposition(ideal_decomposition(tree)))
    return 0


def _lint(args) -> int:
    from pathlib import Path

    from .analysis import get_rule, iter_rules, lint_paths, render_explain

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  {rule.name}")
        return 0
    if args.explain:
        try:
            rule = get_rule(args.explain.strip())
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        print(render_explain(rule), end="")
        return 0

    def rule_set(spec):
        if spec is None:
            return None
        ids = {part.strip() for part in spec.split(",") if part.strip()}
        for rule_id in ids:
            get_rule(rule_id)  # raise on unknown ids up front
        return ids

    try:
        select = rule_set(args.select)
        ignore = rule_set(args.ignore)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    report = lint_paths(paths, select=select, ignore=ignore)
    if args.output:
        Path(args.output).write_text(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _generate,
        "solve": _solve,
        "compare": _compare,
        "sweep": _sweep,
        "bench": _bench,
        "replay": _replay,
        "serve": _serve,
        "resume": _resume,
        "compact": _compact,
        "top": _top,
        "trace": _trace_cmd,
        "sweep-preemption": _sweep_preemption,
        "decompose": _decompose,
        "lint": _lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
