"""Parallel batch execution of (trace, policy, seed) replay jobs.

The online analogue of :class:`~repro.runners.batch.BatchRunner`: a
sweep over traces × admission policies × seeds is embarrassingly
parallel, every job being "load a trace, replay it through a policy,
record acceptance/profit/latency".  :class:`ReplayRunner` reuses the
batch runner's process pool and content-addressed result cache, and
returns the same :class:`~repro.runners.batch.RunResult` records (policy
name in the ``solver`` slot, the full metrics dict in ``stats``) so
:func:`repro.report.render_sweep` tabulates replay sweeps unchanged —
including the competitive-ratio columns when an offline benchmark
solver is configured, and the eviction/penalty-adjusted-profit columns
when preemptive policies ran, so non-preemptive and preemptive rows on
the same traces land side by side in one table.

Offline benchmark profits are computed once per distinct trace in the
parent process and injected into every job sharing that trace, so an
``exact`` benchmark is paid once per trace, not once per job.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Sequence

from .batch import (
    BatchRunner,
    RunResult,
    _document_of,
    _json_safe,
    _label_of,
    _params_with_seed,
)

__all__ = ["ReplayJob", "ReplayRunner"]


@dataclass(frozen=True)
class ReplayJob:
    """One replay: a trace, a policy name, policy parameters.

    Attributes
    ----------
    trace:
        Path to a trace JSON file (``repro.io.save_trace``), or the
        in-memory trace document (``repro.io.trace_to_dict`` form).
    policy:
        Any :data:`~repro.online.policies.POLICY_NAMES` entry —
        ``"greedy-threshold"``, ``"dual-gated"``, ``"batch-resolve"``,
        ``"preempt-density"`` or ``"preempt-dual-gated"``.
    params:
        Keyword arguments for the policy constructor; for
        ``batch-resolve`` this includes ``solver`` / ``resolve_every`` /
        ``solver_params``, for the preemptive policies ``factor`` /
        ``penalty``.  Misspelled keys are reported as friendly errors in
        the job's ``error`` slot, not raised as ``TypeError``.
    seed:
        Convenience alias merged into
        ``params["solver_params"]["seed"]`` (batch-resolve) — recorded
        for all policies so sweep rows stay distinguishable.
    label:
        Display name for reports; defaults to the trace file stem.
    """

    trace: object
    policy: str
    params: dict = field(default_factory=dict)
    seed: int | None = None
    label: str = ""

    def document(self) -> dict:
        """The trace as a JSON document (loaded from disk at most once)."""
        return _document_of(self, self.trace)

    def effective_params(self) -> dict:
        return _params_with_seed(self.params, self.seed)

    def display_label(self) -> str:
        return _label_of(self.label, self.trace)

    def trace_key(self) -> str:
        """Content hash of the trace alone (offline-benchmark memo key).

        Memoised on the job — traces can be multi-MB documents, and the
        runner consults this key several times per job.
        """
        cached = getattr(self, "_trace_key", None)
        if cached is None:
            blob = json.dumps(self.document(), sort_keys=True)
            cached = hashlib.sha256(blob.encode()).hexdigest()
            object.__setattr__(self, "_trace_key", cached)
        return cached

    def cache_key(self) -> str:
        """Content hash of (trace, policy, config) — the memo key."""
        cached = getattr(self, "_cache_key", None)
        if cached is None:
            blob = json.dumps(
                {
                    "trace": self.trace_key(),
                    "policy": self.policy,
                    "params": _json_safe(self.effective_params()),
                },
                sort_keys=True,
            )
            cached = hashlib.sha256(blob.encode()).hexdigest()
            object.__setattr__(self, "_cache_key", cached)
        return cached


def _build_policy(policy: str, params: dict):
    from ..online import make_policy

    params = dict(params)
    seed = params.pop("seed", None)
    if policy == "batch-resolve" and seed is not None:
        solver_params = dict(params.get("solver_params") or {})
        solver_params.setdefault("seed", seed)
        params["solver_params"] = solver_params
    return make_policy(policy, **params)


def _execute_replay(payload: dict) -> dict:
    """Worker body: replay one job from its serialised payload."""
    from ..io import trace_from_dict
    from ..online import replay, with_offline

    start = time.perf_counter()
    try:
        trace = trace_from_dict(payload["document"])
        policy = _build_policy(payload["policy"], payload["params"])
        result = replay(trace, policy)
        metrics = result.metrics
        if payload.get("offline_profit") is not None:
            metrics = with_offline(metrics, payload["offline_profit"])
        stats = metrics.to_dict()
        stats["policy_stats"] = _json_safe(result.policy_stats)
        return {
            "label": payload["label"],
            "solver": payload["policy"],
            "key": payload["key"],
            "params": payload["params"],
            "profit": metrics.realized_profit,
            "size": metrics.accepted,
            "stats": stats,
            "elapsed": time.perf_counter() - start,
            "cache_hit": False,
            "error": None,
        }
    except Exception:
        return {
            "label": payload["label"],
            "solver": payload["policy"],
            "key": payload["key"],
            "params": payload["params"],
            "profit": 0.0,
            "size": 0,
            "stats": {},
            "elapsed": time.perf_counter() - start,
            "cache_hit": False,
            "error": traceback.format_exc(),
        }


class ReplayRunner(BatchRunner):
    """Run :class:`ReplayJob` lists in parallel, with memoisation.

    Parameters
    ----------
    processes, cache_dir:
        As in :class:`~repro.runners.batch.BatchRunner`.
    offline:
        Registry solver name for the per-trace offline benchmark
        (``None`` skips it).  Computed inline in the parent, at most
        once per distinct trace, and only when some job sharing the
        trace actually misses the cache.
    offline_params:
        Keyword arguments for the benchmark solver.
    """

    #: The shared :meth:`BatchRunner.run` loop fans this worker out.
    _worker = staticmethod(_execute_replay)

    def __init__(self, processes: int | None = None,
                 cache_dir: str | None = None,
                 offline: str | None = None,
                 offline_params: dict | None = None):
        super().__init__(processes=processes, cache_dir=cache_dir)
        self.offline = offline
        self.offline_params = dict(offline_params or {})
        self._offline_profits_by_trace: dict[str, float] = {}
        self._digest_by_docid: dict[int, str] = {}

    def _trace_digest(self, job: ReplayJob) -> str:
        """``job.trace_key()``, shared across jobs referencing the same
        in-memory document — a grid of 30 jobs over one trace hashes the
        (potentially multi-MB) document once, not 30 times."""
        cached = getattr(job, "_trace_key", None)
        if cached is not None:
            return cached
        doc_id = id(job.document())  # documents stay alive via the jobs
        digest = self._digest_by_docid.get(doc_id)
        if digest is None:
            digest = job.trace_key()
            self._digest_by_docid[doc_id] = digest
        else:
            object.__setattr__(job, "_trace_key", digest)
        return digest

    def _offline_for(self, job: ReplayJob) -> float | None:
        """The trace's offline-benchmark profit, computed lazily.

        Only cache-miss jobs reach here (via :meth:`_payload`), so a
        fully-cached sweep never pays the benchmark solve; distinct
        traces are still benchmarked at most once per runner.
        """
        if self.offline is None:
            return None
        profits = self._offline_profits_by_trace
        key = self._trace_digest(job)
        if key not in profits:
            from ..io import trace_from_dict
            from ..online import offline_optimum

            trace = trace_from_dict(job.document())
            profits[key] = offline_optimum(
                trace, self.offline, **self.offline_params
            )
        return profits[key]

    def _job_key(self, job: ReplayJob) -> str:
        """The memo key; mixes in the offline-benchmark configuration so
        toggling the benchmark never serves stale cached ratios."""
        self._trace_digest(job)  # seed the per-job memo before hashing
        if self.offline is None:
            return job.cache_key()
        blob = json.dumps(
            {"base": job.cache_key(), "offline": self.offline,
             "offline_params": _json_safe(self.offline_params)},
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _payload(self, job: ReplayJob, key: str) -> dict:
        return {
            "document": job.document(),
            "policy": job.policy,
            "params": job.effective_params(),
            "label": job.display_label(),
            "key": key,
            "offline_profit": self._offline_for(job),
        }

    def run_grid(
        self,
        traces: Sequence,
        policies: Sequence[str],
        seeds: Sequence[int | None] = (None,),
        params: dict | None = None,
    ) -> list[RunResult]:
        """Cartesian sweep: every trace × policy × seed."""
        jobs = [
            ReplayJob(trace=t, policy=p, params=dict(params or {}), seed=seed)
            for t in traces
            for p in policies
            for seed in seeds
        ]
        return self.run(jobs)
