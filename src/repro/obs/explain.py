"""Decision provenance: why is demand *k* in (or out of) the system?

:func:`explain_demand` assembles, at query time, the record a live
``{"op": "explain", "demand": k}`` request returns: the demand's
current status, every candidate instance with the policy-visible
inputs (route length, profit density, feasibility *now*), the dual
prices a price-carrying policy would charge those routes, the gate
comparison the policy would apply, and — for preemptive policies — the
victims the ledger's cheapest-density preemption plan would consider.

Everything here is a **pure read**: candidate probes, route prices and
preemption plans are query functions of the ledger/policy state, so an
explain request never perturbs the replay (the determinism contract
the observability layer lives under).  The record describes the world
*as it stands*: for a rejected demand it answers "what would happen if
it arrived again right now", which separates capacity blocking from
price/threshold gating — the two rejection modes the paper's policies
distinguish.
"""

from __future__ import annotations

__all__ = ["explain_demand"]


def _policy_view(policy) -> dict:
    """The gate parameters a policy exposes (JSON-safe, best effort)."""
    view = {"name": policy.name}
    for attr in ("threshold", "eta", "mu", "factor", "penalty"):
        value = getattr(policy, attr, None)
        if isinstance(value, (int, float)):
            view[attr] = float(value)
    return view


def _status(ledger, demand_id: int, arrived, departed) -> str:
    if ledger.is_admitted(demand_id):
        return "admitted"
    if ledger.was_evicted(demand_id):
        return "evicted"
    if ledger.was_admitted(demand_id):
        return "departed"
    if demand_id in departed:
        return "rejected"  # came and went without ever being admitted
    if demand_id in arrived:
        return "rejected"
    return "not-arrived"


def explain_demand(problem, ledger, policy, demand_id: int, *,
                   arrived=frozenset(), departed=frozenset()) -> dict:
    """One demand's decision-provenance record (pure query).

    Parameters mirror what the service holds: the frozen ``problem``,
    the live ``ledger`` and bound ``policy``, plus the service's
    arrived/departed stream sets (so status distinguishes "rejected"
    from "not arrived yet").
    """
    if not (0 <= demand_id < problem.num_demands):
        raise ValueError(f"unknown demand {demand_id}")
    demand = problem.demands[demand_id]
    price_of = getattr(policy, "route_price", None)
    preemptive = callable(getattr(policy, "_execute_preemption", None))
    eta = getattr(policy, "eta", None)
    threshold = getattr(policy, "threshold", None)

    cands = ledger.candidates(demand_id)
    ok = ledger.feasible(cands)
    candidates = []
    any_feasible = False
    any_passes = False
    for iid, feas in zip(cands.tolist(), ok.tolist()):
        length = ledger.route_length(iid)
        profit = float(ledger.instances[iid].profit)
        density = profit / length
        row = {
            "instance": iid,
            "feasible": bool(feas),
            "route_length": length,
            "density": density,
        }
        if callable(price_of):
            price = float(price_of(iid))
            row["price"] = price
            if eta is not None:
                row["gate"] = eta * price
                row["passes_gate"] = profit > eta * price
        if threshold is not None:
            row["passes_threshold"] = density >= threshold
        if not feas and preemptive:
            victims = ledger.preemption_plan(iid)
            row["preemption_victims"] = victims
        candidates.append(row)
        passes = row.get("passes_gate", True) and row.get(
            "passes_threshold", True)
        if feas:
            any_feasible = True
            if passes:
                any_passes = True

    status = _status(ledger, demand_id, arrived, departed)
    doc = {
        "demand": demand_id,
        "status": status,
        "profit": float(demand.profit),
        "policy": _policy_view(policy),
        "candidates": candidates,
        "instance": ledger.admitted_instance(demand_id),
    }
    if status in ("rejected", "not-arrived"):
        # The would-it-fit-now verdict: capacity blocking vs gating.
        if not any_feasible:
            doc["verdict"] = "capacity-blocked"
        elif not any_passes:
            doc["verdict"] = ("gated" if callable(price_of)
                              else "below-threshold")
        else:
            doc["verdict"] = "admittable-now"
    else:
        doc["verdict"] = status
    return doc
