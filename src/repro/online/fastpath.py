"""Columnar batch-decision fast path: vectorized admission over
conflict-free runs.

The scalar event loop (``session.feed`` → ``policy.on_arrival`` →
``ledger.admit``) costs ~15–20µs of interpreter work per event.  This
module removes that bottleneck for the two stateless-per-event policies
(``greedy-threshold`` and ``dual-gated``) without changing a single
decision bit:

* :class:`DemandGeometry` — per-demand candidate/route/footprint CSR
  arrays resolved **once** per ledger against the shared
  :class:`~repro.core.conflict.ConflictIndex` (cached on the ledger, so
  every session over the same ledger — including the sharded boundary
  broker — reuses one build);
* :class:`TraceArrays` — a columnar view of one event batch (kinds,
  demand ids, per-event conflict footprints);
* :func:`conflict_free_runs` — splits consecutive events into *maximal*
  runs whose footprints are pairwise disjoint, so every decision inside
  a run reads exactly the loads it would have read under one-at-a-time
  processing;
* batch kernels :func:`batch_greedy_threshold` and
  :func:`batch_dual_gated` — gather/segment-reduce replicas of the
  scalar decision paths, bit-for-bit (see the float notes below);
* :class:`FastFeeder` — the executor ``AdmissionSession.feed_many``
  engages when the policy advertises a batch kernel.

Bit-exactness ground rules (each empirically verified against this
container's NumPy):

* ``np.add.reduceat`` reduces every segment identically whether it
  sums one segment or many, independent of segment position and buffer
  alignment (it does *not* match ``np.sum``'s pairwise blocking, which
  is why the scalar ``DualGated._price_from_loads`` itself sums through
  a single-segment ``reduceat`` — both paths then share one reduction
  definition and match bit for bit by construction);
* elementwise ufuncs (``np.power``) are position-invariant, so pricing
  every gathered route edge in one call matches per-route calls;
* ``max``/``min`` reductions are order-independent, so
  ``maximum.reduceat`` feasibility probes and first-min selection keys
  are exact;
* within a run, routes are edge-disjoint, so batched scatter-adds touch
  every load position exactly once — the same single float add the
  scalar loop performs.

The executor amortizes per-run overhead by *pre-gathering* per chunk:
candidate rows, route edges, heights and selection keys for every
batchable arrival in a chunk are flattened once (:func:`_prepare`),
so each run reduces to a load gather plus a handful of segment
reductions over contiguous slices.

A *footprint* is the union of every candidate route of a demand plus a
per-demand sentinel pseudo-edge: two events of the same demand always
conflict (the arrival/departure bookkeeping is order-dependent), and
any two demands whose admitted-or-considered routes could share an edge
conflict.  Splitting finer than first-footprint-overlap is always
sound; :func:`conflict_free_runs` is exactly maximal, and the property
tests pin that.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs import tracing as _tracing
from .events import Arrival, Departure, Tick

__all__ = [
    "DemandGeometry",
    "TraceArrays",
    "FastFeeder",
    "BATCH_KERNELS",
    "conflict_free_runs",
    "geometry_of",
]

#: Events columnarized (and segmented) per pass; a chunk boundary is a
#: forced run boundary — a finer split, which is always sound.
CHUNK = 32768

#: Runs shorter than this are executed through the scalar dispatcher:
#: the vectorized kernels pay ~a dozen NumPy-call overheads per run,
#: which only amortize over enough events.  Either execution is
#: bit-identical, so this is purely a throughput knob.
MIN_VECTOR_RUN = 2

_INT_MAX = np.iinfo(np.int64).max

#: The ledger's capacity bound: an admission is blocked when the route's
#: peak load plus the instance height exceeds this (the exact comparison
#: :meth:`ActiveConflictSet.blocked_mask` performs).
_CAP = 1.0 + 1e-9


# ----------------------------------------------------------------------
# Static per-demand geometry
# ----------------------------------------------------------------------


class DemandGeometry:
    """Candidate/route/footprint CSR arrays over a ledger's population.

    Everything here is static (routes, profits, densities never change),
    resolved once against the ledger's shared
    :class:`~repro.core.conflict.ConflictIndex` and reused by every
    batch.  Demand ids index the CSR directly (the trace contract:
    ``0 .. num_demands-1``; shard-sliced subproblems densify to the same
    convention).
    """

    def __init__(self, ledger) -> None:
        index = ledger.index
        problem = ledger.problem
        D = int(problem.num_demands)
        I = len(ledger.instances)
        E = int(index.num_edges)
        self.num_demands = D
        self.num_instances = I
        self.num_edges = E

        # --- per-demand candidate CSR (ascending instance ids, exactly
        # the order ledger.candidates() reports) -----------------------
        counts = np.zeros(D, dtype=np.int64)
        for inst in ledger.instances:
            counts[inst.demand_id] += 1
        self.cand_indptr = np.zeros(D + 1, dtype=np.int64)
        np.cumsum(counts, out=self.cand_indptr[1:])
        cand_iids = np.empty(I, dtype=np.int64)
        fill = self.cand_indptr[:-1].copy()
        for inst in ledger.instances:
            d = inst.demand_id
            cand_iids[fill[d]] = inst.instance_id
            fill[d] += 1
        self.cand_iids = cand_iids

        # --- per-candidate columns (aligned with cand_iids) -----------
        indptr = index._indptr
        route_counts = (indptr[1:] - indptr[:-1])[cand_iids]
        self.cand_route_len = np.maximum(route_counts, 1)
        profits = np.asarray(
            [float(d.profit) for d in ledger.instances], dtype=np.float64
        )
        self.cand_profit = profits[cand_iids]
        self.cand_height = index._heights[cand_iids].astype(
            np.float64, copy=True
        )
        self.cand_dix = index._dix[cand_iids]
        # route_length / density exactly as the ledger caches them:
        # max(route, 1) and profit / route_length (one float64 divide).
        self.cand_density = self.cand_profit / self.cand_route_len.astype(
            np.float64
        )
        # Greedy's (route_length, iid) ranking as one sortable int64.
        self.cand_selkey = self.cand_route_len * np.int64(I) + cand_iids
        # blocked_mask's single- vs multi-candidate asymmetry: the
        # single-candidate probe skips the load test on an empty route,
        # the batched probe applies it.  True where the load test
        # applies (nonempty route, or demand with several candidates).
        self.cand_apply = (route_counts > 0) | np.repeat(
            counts > 1, counts
        )

        # --- per-candidate route CSR (the index's own edge rows,
        # re-packed in candidate order) --------------------------------
        self.rr_indptr = np.zeros(I + 1, dtype=np.int64)
        np.cumsum(route_counts, out=self.rr_indptr[1:])
        total = int(self.rr_indptr[-1])
        if total:
            offsets = np.repeat(
                indptr[cand_iids] - self.rr_indptr[:-1], route_counts
            )
            self.rr_edges = index._flat_edges[
                np.arange(total, dtype=np.int64) + offsets
            ]
        else:
            self.rr_edges = np.zeros(0, dtype=np.int64)

        # --- per-demand conflict footprints ---------------------------
        # Union of every candidate route of the demand, deduped in one
        # global argsort pass, plus a sentinel pseudo-edge ``E + d`` so
        # two events of the same demand always conflict.  Stamps range
        # over ``E + D``.
        if total:
            owner = np.repeat(
                np.repeat(
                    np.arange(D, dtype=np.int64),
                    counts,
                ),
                route_counts,
            )
            key = owner * np.int64(E) + self.rr_edges
            key = np.sort(key)
            keep = np.empty(len(key), dtype=bool)
            keep[0] = True
            np.not_equal(key[1:], key[:-1], out=keep[1:])
            uniq = key[keep]
            owner_u = uniq // E
            edge_u = uniq - owner_u * E
        else:
            uniq = np.zeros(0, dtype=np.int64)
            owner_u = np.zeros(0, dtype=np.int64)
            edge_u = np.zeros(0, dtype=np.int64)
        counts_u = np.bincount(owner_u, minlength=D).astype(np.int64)
        fp_counts = counts_u + 1  # +1 for the sentinel
        self.fp_indptr = np.zeros(D + 1, dtype=np.int64)
        np.cumsum(fp_counts, out=self.fp_indptr[1:])
        fp_edges = np.empty(int(self.fp_indptr[-1]), dtype=np.int64)
        fp_edges[self.fp_indptr[:-1]] = E + np.arange(D, dtype=np.int64)
        if len(uniq):
            u_starts = np.zeros(D, dtype=np.int64)
            np.cumsum(counts_u[:-1], out=u_starts[1:])
            dest = (
                self.fp_indptr[owner_u]
                + 1
                + (np.arange(len(uniq), dtype=np.int64) - u_starts[owner_u])
            )
            fp_edges[dest] = edge_u
        self.fp_edges = fp_edges
        self.fp_counts = fp_counts


def geometry_of(ledger) -> DemandGeometry:
    """The ledger's cached :class:`DemandGeometry` (built on first use).

    Cached on the ledger itself so every session attached to it — the
    replay driver, the service, the sharded boundary broker — shares one
    build.  Route geometry never changes, so the cache never
    invalidates.
    """
    geom = getattr(ledger, "_fastpath_geometry", None)
    if geom is None:
        geom = DemandGeometry(ledger)
        ledger._fastpath_geometry = geom
    return geom


# ----------------------------------------------------------------------
# Columnar event batches
# ----------------------------------------------------------------------


_KIND_ARRIVAL = 0
_KIND_DEPARTURE = 1
_KIND_TICK = 2
_KIND_OTHER = 3


class TraceArrays:
    """One event batch as columns: kinds, demand ids, footprints.

    ``batchable[i]`` is False for anything the kernels must not touch —
    unknown event types, out-of-range demand ids, demands without
    candidates — which the executor routes through the scalar
    dispatcher one at a time (reproducing the scalar path's exact
    behaviour, errors included).
    """

    __slots__ = ("events", "kinds", "demand", "batchable",
                 "fp_indptr", "fp_edges")

    def __init__(self, events, kinds, demand, batchable,
                 fp_indptr, fp_edges) -> None:
        self.events = events
        self.kinds = kinds
        self.demand = demand
        self.batchable = batchable
        self.fp_indptr = fp_indptr
        self.fp_edges = fp_edges

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def from_events(cls, events: list, geom: DemandGeometry) -> "TraceArrays":
        """Columnarize one batch against ``geom``'s footprint CSR."""
        n = len(events)
        D = geom.num_demands
        # Exact-type dispatch (the event classes are final by
        # convention; subclasses would fall to _KIND_OTHER and the
        # scalar dispatcher, which handles anything).
        kind_of = {Arrival: _KIND_ARRIVAL, Departure: _KIND_DEPARTURE,
                   Tick: _KIND_TICK}.get
        kl = [kind_of(type(ev), _KIND_OTHER) for ev in events]
        dl = [ev.demand_id if k <= _KIND_DEPARTURE else -1
              for k, ev in zip(kl, events)]
        kinds = np.asarray(kl, dtype=np.int8)
        demand = np.asarray(dl, dtype=np.int64)
        # Demand-carrying events with ids outside the population go
        # through the scalar dispatcher (which raises or no-ops exactly
        # as it always did).
        batchable = (kinds == _KIND_TICK) | (
            (demand >= 0) & (demand < D)
        )
        has_demand = batchable & (demand >= 0)
        # An arrival of a demand with no candidate instances raises in
        # the scalar path (``candidates()`` KeyError); leave it there.
        ok = batchable & has_demand
        cnt = np.zeros(n, dtype=np.int64)
        cnt[ok] = geom.fp_counts[demand[ok]]
        arrivals_no_cand = (
            batchable & (kinds == _KIND_ARRIVAL) & has_demand
        )
        arrivals_no_cand[arrivals_no_cand] = (
            geom.cand_indptr[demand[arrivals_no_cand] + 1]
            == geom.cand_indptr[demand[arrivals_no_cand]]
        )
        if arrivals_no_cand.any():
            batchable &= ~arrivals_no_cand
            cnt[arrivals_no_cand] = 0
        fp_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(cnt, out=fp_indptr[1:])
        total = int(fp_indptr[-1])
        if total:
            ok = cnt > 0
            starts = geom.fp_indptr[demand[ok]]
            offsets = np.repeat(starts - fp_indptr[:-1][ok], cnt[ok])
            fp_edges = geom.fp_edges[
                np.arange(total, dtype=np.int64) + offsets
            ]
        else:
            fp_edges = np.zeros(0, dtype=np.int64)
        return cls(events, kinds, demand, batchable, fp_indptr, fp_edges)


def conflict_free_runs(ta: TraceArrays, lo: int = 0,
                       hi: int | None = None) -> list[tuple[int, int]]:
    """Maximal conflict-free runs of ``ta.events[lo:hi]``.

    Returns half-open ``(start, stop)`` index pairs covering
    ``[lo, hi)`` in order.  Within a run every pair of events has
    disjoint footprints; each run boundary sits exactly at the first
    event whose footprint overlaps the current run (*exact maximality*
    — any finer split is sound, any coarser would reorder conflicting
    decisions).

    One argsort over the stretch's footprint entries: sorting by
    ``(edge, event)`` makes each entry's nearest earlier same-edge
    holder its sort-predecessor; the per-event max of those predecessors
    is the latest earlier conflicting event, and a boundary is needed
    exactly when it falls inside the current run.
    """
    if hi is None:
        hi = len(ta)
    n = hi - lo
    if n <= 0:
        return []
    if n == 1:
        return [(lo, hi)]
    f0 = int(ta.fp_indptr[lo])
    f1 = int(ta.fp_indptr[hi])
    edges = ta.fp_edges[f0:f1]
    if len(edges) == 0:
        return [(lo, hi)]
    indptr = ta.fp_indptr[lo:hi + 1] - f0
    counts = indptr[1:] - indptr[:-1]
    owner = np.repeat(np.arange(n, dtype=np.int64), counts)
    order = np.argsort(edges * np.int64(n) + owner)
    s_edges = edges[order]
    s_owner = owner[order]
    prev_vals = np.full(len(edges), -1, dtype=np.int64)
    same = s_edges[1:] == s_edges[:-1]
    prev_vals[1:][same] = s_owner[:-1][same]
    prev_flat = np.empty(len(edges), dtype=np.int64)
    prev_flat[order] = prev_vals
    max_prev = np.full(n, -1, dtype=np.int64)
    nonempty = counts > 0
    if nonempty.any():
        max_prev[nonempty] = np.maximum.reduceat(
            prev_flat, indptr[:-1][nonempty]
        )
    runs: list[tuple[int, int]] = []
    run_start = 0
    mp = max_prev.tolist()
    for i in range(1, n):
        if mp[i] >= run_start:
            runs.append((lo + run_start, lo + i))
            run_start = i
    runs.append((lo + run_start, hi))
    return runs


# ----------------------------------------------------------------------
# Batch decision kernels
# ----------------------------------------------------------------------


class _ChunkPlan:
    """Pre-gathered candidate/route columns for one batch of arrivals.

    Built once per chunk by :func:`_prepare`; every per-run kernel call
    then works on contiguous slices of these arrays, so the run-time
    work is one load gather plus a handful of segment reductions.  All
    arrays are flat in *chunk arrival order*:

    * ``demands``/``ccnt``/``dix`` — per arrival;
    * ``cstart`` — arrival → candidate-range prefix (length n+1);
    * ``gidx``/``height``/``pos`` (+ per-kernel ``gkey`` or
      ``profit``/``iid``) — per candidate;
    * ``estart`` — candidate → route-edge-range prefix (length C+1);
    * ``edges`` — flat route edge ids per candidate.

    ``has_empty`` flags chunks containing empty-route candidates; only
    those pay the masked reductions (and the ``apply`` exemption mask
    replicating ``blocked_mask``'s single- vs multi-candidate
    asymmetry).
    """

    __slots__ = ("demands", "ccnt", "dix", "cstart", "gidx", "height",
                 "pos", "aidx", "estart", "edges", "earange",
                 "has_empty", "apply", "gkey", "profit", "iid")


def _prepare(feeder: "FastFeeder", demands: np.ndarray) -> _ChunkPlan:
    """Flatten the candidate rows of ``demands`` against the geometry."""
    geom = feeder.geom
    p = _ChunkPlan()
    p.demands = demands
    ci0 = geom.cand_indptr[demands]
    ccnt = geom.cand_indptr[demands + 1] - ci0
    cstart = np.zeros(len(demands) + 1, dtype=np.int64)
    np.cumsum(ccnt, out=cstart[1:])
    C = int(cstart[-1])
    gidx = np.arange(C, dtype=np.int64) + np.repeat(ci0 - cstart[:-1], ccnt)
    p.ccnt = ccnt
    p.cstart = cstart
    p.gidx = gidx
    p.dix = geom.cand_dix[gidx[cstart[:-1]]]
    r0 = geom.rr_indptr[gidx]
    r_cnt = geom.rr_indptr[gidx + 1] - r0
    estart = np.zeros(C + 1, dtype=np.int64)
    np.cumsum(r_cnt, out=estart[1:])
    total = int(estart[-1])
    if total:
        p.edges = geom.rr_edges[
            np.arange(total, dtype=np.int64) + np.repeat(r0 - estart[:-1],
                                                         r_cnt)
        ]
    else:
        p.edges = np.zeros(0, dtype=np.int64)
    p.estart = estart
    p.height = geom.cand_height[gidx]
    p.pos = np.arange(C, dtype=np.int64)
    p.earange = np.arange(total, dtype=np.int64)
    p.has_empty = bool((r_cnt == 0).any())
    p.apply = geom.cand_apply[gidx] if p.has_empty else None
    if feeder.gkey is not None:
        p.gkey = feeder.gkey[gidx]
        p.aidx = p.profit = p.iid = None
    else:
        p.gkey = None
        # Per-candidate arrival index: lets the kernels expand a
        # per-arrival column to candidates with one gather instead of a
        # per-run ``np.repeat``.
        p.aidx = np.repeat(
            np.arange(len(demands), dtype=np.int64), ccnt
        )
        p.profit = geom.cand_profit[gidx]
        p.iid = geom.cand_iids[gidx]
    return p


def _kernel_greedy(feeder: "FastFeeder", plan: _ChunkPlan,
                   i0: int, i1: int) -> np.ndarray:
    """Vectorized ``GreedyThreshold.on_arrival`` over one run's arrivals.

    Arrivals ``[i0, i1)`` of the plan (all distinct demands, pairwise
    footprint-disjoint).  Returns the admitted instance ids in event
    order; the ledger is mutated exactly as the scalar ``try_admit``
    sequence would have mutated it.  The density floor is pre-folded
    into ``plan.gkey`` (below-threshold candidates carry ``_INT_MAX``),
    and the already-admitted early return is applied per arrival — the
    currently-admitted check is subsumed, since a demand in the system
    is by invariant in the ever-admitted set.
    """
    ledger = feeder.ledger
    cstart = plan.cstart
    estart = plan.estart
    c0 = cstart[i0]
    c1 = cstart[i1]
    e0 = estart[c0]
    loads = ledger.active._load[plan.edges[e0:estart[c1]]]
    # The feasibility probe: per-candidate route peak via one segment
    # max (the rare empty-route chunks take the masked shape, where
    # empty segments stay 0.0 exactly as the scalar probe sees them).
    rel = estart[c0:c1] - e0
    if not plan.has_empty:
        seg_max = np.maximum.reduceat(loads, rel)
    else:
        seg_max = np.zeros(c1 - c0, dtype=np.float64)
        ne = (estart[c0 + 1:c1 + 1] - estart[c0:c1]) > 0
        if loads.size:
            seg_max[ne] = np.maximum.reduceat(loads, rel[ne])
    blocked = seg_max + plan.height[c0:c1] > _CAP
    if plan.has_empty:
        blocked &= plan.apply[c0:c1]
    key = np.where(blocked, _INT_MAX, plan.gkey[c0:c1])
    best = np.minimum.reduceat(key, cstart[i0:i1] - c0)
    sel = np.nonzero(best != _INT_MAX)[0]
    if not len(sel):
        return _EMPTY_IIDS
    dems = plan.demands[i0 + sel].tolist()
    ever = ledger._ever_admitted
    if ever:
        keep = [k for k, d in enumerate(dems) if d not in ever]
        if len(keep) != len(dems):
            if not keep:
                return _EMPTY_IIDS
            sel = sel[np.asarray(keep, dtype=np.int64)]
            dems = [dems[k] for k in keep]
    best_iids = best[sel] % feeder.num_instances
    ledger.admit_many(best_iids, _prechecked=True, _demands=dems)
    return best_iids


def _kernel_dual(feeder: "FastFeeder", plan: _ChunkPlan,
                 i0: int, i1: int) -> np.ndarray:
    """Vectorized ``DualGated.on_arrival`` over one run's arrivals.

    Same candidate ranking (first strict price minimum in candidate
    order), same gate (``profit <= eta * price``), same stats counters
    and ``max_gate`` trajectory, same peak-load notes — computed from
    the run-entry loads, which within a conflict-free run are exactly
    the loads the scalar loop would observe event by event.  The
    demand-in-system block is applied per arrival (every candidate of
    such a demand is blocked in the scalar probe, so the arrival counts
    as capacity-blocked either way).
    """
    ledger = feeder.ledger
    policy = feeder.policy
    cstart = plan.cstart
    estart = plan.estart
    c0 = cstart[i0]
    c1 = cstart[i1]
    e0 = estart[c0]
    load = ledger.active._load
    loads = load[plan.edges[e0:estart[c1]]]
    h = plan.height[c0:c1]
    # Feasibility probe (see the greedy kernel for the masked shape).
    rel = estart[c0:c1] - e0
    if not plan.has_empty:
        seg_max = np.maximum.reduceat(loads, rel)
    else:
        seg_max = np.zeros(c1 - c0, dtype=np.float64)
        ne = (estart[c0 + 1:c1 + 1] - estart[c0:c1]) > 0
        if loads.size:
            seg_max[ne] = np.maximum.reduceat(loads, rel[ne])
    feasible = seg_max + h <= _CAP
    if plan.has_empty:
        # ~blocked with blocked = (load test) & apply.
        feasible |= ~plan.apply[c0:c1]
    # Price every gathered route edge in one ufunc call (elementwise,
    # position-invariant); the per-candidate sums are one multi-segment
    # reduceat — the very reduction the scalar price function performs.
    pw = np.power(policy.mu, loads) - 1.0
    if not plan.has_empty:
        sums = np.add.reduceat(pw, rel)
    else:
        sums = np.zeros(c1 - c0, dtype=np.float64)
        if loads.size:
            sums[ne] = np.add.reduceat(pw, rel[ne])
    price = h * (policy._scale * sums)
    priced = np.where(feasible, price, np.inf)
    relc = cstart[i0:i1] - c0
    best_price = np.minimum.reduceat(priced, relc)
    # An arrival has a feasible candidate iff its best price is finite
    # (feasible prices are always finite); a demand already in the
    # system blocks every candidate in the scalar probe, so it counts
    # as capacity-blocked the same way.
    has_any = best_price < np.inf
    has_any &= ~ledger.active._demand_used[plan.dix[i0:i1]]
    stats = policy.stats
    n_any = int(np.count_nonzero(has_any))
    if n_any == i1 - i0:
        # Common shape in an uncongested stretch: every arrival admits
        # a candidate, so the per-arrival compaction gathers vanish.
        ai = None
    else:
        stats["capacity_blocked"] += (i1 - i0) - n_any
        if not n_any:
            return _EMPTY_IIDS
        ai = np.nonzero(has_any)[0]
    # First strict minimum in candidate order — the scalar loop keeps
    # the first candidate attaining the minimum.  Infeasible candidates
    # carry +inf, which only ties a +inf best price — and those
    # arrivals are already excluded by ``has_any``.
    at_min = priced == best_price[plan.aidx[c0:c1] - i0]
    first = np.minimum.reduceat(
        np.where(at_min, plan.pos[c0:c1], _INT_MAX), relc
    )
    if ai is None:
        first_sel = first
        best_prices = best_price
    else:
        first_sel = first[ai]
        best_prices = best_price[ai]
    # max_gate folds in every best price seen, gated or not (max is
    # order-independent; cast keeps the stats JSON-safe floats).
    mg = float(best_prices.max())
    if mg > stats["max_gate"]:
        stats["max_gate"] = mg
    gated = plan.profit[first_sel] <= policy.eta * best_prices
    n_gated = int(np.count_nonzero(gated))
    if n_gated:
        stats["gated"] += n_gated
        if n_gated == len(gated):
            return _EMPTY_IIDS
        keep = ~gated
        first_sel = first_sel[keep]
        ai = np.nonzero(keep)[0] if ai is None else ai[keep]
    # One route-edge gather serves the load scatter-add, the holder
    # bookkeeping inputs, and the peak notes.
    r0 = estart[first_sel]
    r_cnt = estart[first_sel + 1] - r0
    total = int(r_cnt.sum())
    if total:
        csum = np.zeros(len(first_sel), dtype=np.int64)
        np.cumsum(r_cnt[:-1], out=csum[1:])
        edges = plan.edges[
            plan.earange[:total] + (r0 - csum).repeat(r_cnt)
        ]
        adds = plan.height[first_sel].repeat(r_cnt)
    else:
        edges = adds = None
    best_iids = plan.iid[first_sel]
    dems = (plan.demands[i0:i1] if ai is None
            else plan.demands[i0 + ai]).tolist()
    ledger.admit_many(
        best_iids, _prechecked=True, _demands=dems,
        _edges=edges, _adds=adds,
    )
    if total:
        # Batched ``_note_peak``: each admitted route's post-admission
        # loads equal its post-batch loads (disjointness), so one
        # gather after admit_many folds the same values into the peaks
        # as the per-admission scalar notes.  History snapshots are
        # never taken here: the policy only advertises its batch
        # kernel with ``history=False``.
        peak = policy._peak
        peak[edges] = np.maximum(peak[edges], load[edges])
    return best_iids


_EMPTY_IIDS = np.zeros(0, dtype=np.int64)


def batch_greedy_threshold(feeder: "FastFeeder",
                           demands: np.ndarray) -> np.ndarray:
    """One-shot :func:`_kernel_greedy` over ``demands`` (event order)."""
    demands = np.asarray(demands, dtype=np.int64)
    if not len(demands):
        return _EMPTY_IIDS
    return _kernel_greedy(feeder, _prepare(feeder, demands),
                          0, len(demands))


def batch_dual_gated(feeder: "FastFeeder",
                     demands: np.ndarray) -> np.ndarray:
    """One-shot :func:`_kernel_dual` over ``demands`` (event order)."""
    demands = np.asarray(demands, dtype=np.int64)
    if not len(demands):
        return _EMPTY_IIDS
    return _kernel_dual(feeder, _prepare(feeder, demands),
                        0, len(demands))


#: Kernel registry: the names policies advertise via ``batch_kernel()``.
#: Values are ``(one_shot, per_run)`` — the one-shot form takes raw
#: demand ids, the per-run form a :class:`_ChunkPlan` arrival range.
BATCH_KERNELS = {
    "greedy-threshold": (batch_greedy_threshold, _kernel_greedy),
    "dual-gated": (batch_dual_gated, _kernel_dual),
}


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


class FastFeeder:
    """Drives one session's ``feed_many`` batches through the kernels.

    Constructed by :class:`~repro.session.kernel.AdmissionSession` when
    the policy advertises a batch kernel (and keeps the base no-op
    departure/tick hooks).  Each batch is columnarized per
    :data:`CHUNK`, segmented into conflict-free runs, and executed run
    by run: departures release in one batched call, arrivals decide in
    one kernel call.  Anything the kernels must not touch — unbatchable
    events, runs shorter than :data:`MIN_VECTOR_RUN` — goes through the
    session's scalar dispatcher, which is bit-identical by definition.
    """

    def __init__(self, session, kernel_name: str) -> None:
        if kernel_name not in BATCH_KERNELS:
            raise ValueError(f"unknown batch kernel {kernel_name!r}")
        self.session = session
        self.ledger = session.ledger
        self.policy = session.policy
        self.kernel, self._krun = BATCH_KERNELS[kernel_name]
        self.geom = geometry_of(session.ledger)
        self.num_instances = self.geom.num_instances
        # Greedy's density floor is static per session: fold it into the
        # selection key once, so the kernel's eligibility test is just
        # the feasibility mask.
        if kernel_name == "greedy-threshold":
            self.gkey = np.where(
                self.geom.cand_density < self.policy.threshold,
                _INT_MAX, self.geom.cand_selkey,
            )
        else:
            self.gkey = None

    def feed(self, events) -> None:
        """Apply a whole batch (the ``feed_many`` fast route)."""
        evs = events if isinstance(events, list) else list(events)
        if evs and self.session.closed:
            raise RuntimeError("session is closed")
        for c0 in range(0, len(evs), CHUNK):
            chunk = evs[c0:c0 + CHUNK]
            ta = TraceArrays.from_events(chunk, self.geom)
            self._feed_chunk(ta)

    def _feed_chunk(self, ta: TraceArrays) -> None:
        session = self.session
        stats = session.fastpath_stats
        n = len(ta)
        batchable = ta.batchable
        # Chunk-wide pregather: candidate/route columns for every
        # batchable arrival, plus event → arrival/departure prefix maps
        # so each run's slice bounds are O(1) lookups.
        barr = batchable & (ta.kinds == _KIND_ARRIVAL)
        bdep = batchable & (ta.kinds == _KIND_DEPARTURE)
        arr_ofs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(barr, out=arr_ofs[1:])
        dep_ofs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(bdep, out=dep_ofs[1:])
        plan = _prepare(self, ta.demand[barr])
        dep_demands = ta.demand[bdep].tolist()
        arr_ofs_l = arr_ofs.tolist()
        dep_ofs_l = dep_ofs.tolist()
        bl = batchable.tolist()
        # Per-run counter updates accumulate locally and flush once per
        # chunk (the scalar dispatcher keeps updating the session
        # directly, so totals come out identical either way).
        c_events = c_arr = c_dep = c_runs = c_adm = 0
        t_first = dur_sum = 0.0
        max_run = stats["max_run_len"]
        lo = 0
        while lo < n:
            if not bl[lo]:
                stats["scalar_fallbacks"] += 1
                session._dispatch(ta.events[lo])
                lo += 1
                continue
            hi = lo
            while hi < n and bl[hi]:
                hi += 1
            for a, b in conflict_free_runs(ta, lo, hi):
                if b - a < MIN_VECTOR_RUN:
                    stats["scalar_fallbacks"] += b - a
                    dispatch = session._dispatch
                    for i in range(a, b):
                        dispatch(ta.events[i])
                else:
                    t0, dur, admitted = self._run(
                        ta, plan, arr_ofs_l, dep_ofs_l, dep_demands, a, b)
                    rn = b - a
                    c_events += rn
                    c_arr += arr_ofs_l[b] - arr_ofs_l[a]
                    c_dep += dep_ofs_l[b] - dep_ofs_l[a]
                    c_adm += admitted
                    if not c_runs:
                        t_first = t0
                    dur_sum += dur
                    c_runs += 1
                    if rn > max_run:
                        max_run = rn
            lo = hi
        if c_runs:
            session.events += c_events
            session.arrivals += c_arr
            session.departures += c_dep
            session.ticks += c_events - c_arr - c_dep
            stats["runs"] += c_runs
            stats["batched_events"] += c_events
            stats["max_run_len"] = max_run
            # One aggregated span per chunk, not one per run: per-run
            # spans cost ~2µs each, which the batch kernels made a
            # measurable slice of the hot path (the obs-overhead gate
            # caught it).  ``dur`` sums only the in-run kernel windows,
            # so scalar fallbacks interleaved between runs stay out.
            if _tracing.RECORDER.enabled:
                _tracing.record_complete(
                    "session.batch_decide", t_first, dur_sum,
                    {"events": c_events, "arrivals": c_arr,
                     "departures": c_dep, "admitted": c_adm,
                     "runs": c_runs},
                )

    def _run(self, ta: TraceArrays, plan: _ChunkPlan, arr_ofs: list,
             dep_ofs: list, dep_demands: list, a: int,
             b: int) -> tuple[float, float, int]:
        """Execute one conflict-free run of batchable events.

        Releases go first (the scalar loop performs them outside the
        decision clock too); the arrival kernel then reads loads that —
        by footprint disjointness — match what each scalar decision
        would have read in event order.  Ticks are no-ops here by
        construction (the policy keeps the base ``on_tick``).
        """
        session = self.session
        ledger = self.ledger
        t0 = time.perf_counter()
        d0 = dep_ofs[a]
        d1 = dep_ofs[b]
        if d1 > d0:
            admitted_map = ledger._admitted
            live = [d for d in dep_demands[d0:d1] if d in admitted_map]
            if live:
                ledger.release_many(live, _disjoint=True)
        i0 = arr_ofs[a]
        i1 = arr_ofs[b]
        admitted = 0
        if i1 > i0:
            admitted = len(self._krun(self, plan, i0, i1))
        dur = time.perf_counter() - t0
        n = b - a
        session.latencies.extend([dur / n] * n)
        return t0, dur, admitted
