"""Unit tests for the tree-network substrate."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TreeNetwork, make_tree
from repro.network.tree import edge_key


# ---------------------------------------------------------------------------
# Construction and validation
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_single_vertex(self):
        t = TreeNetwork(1, [])
        assert t.n == 1
        assert t.edges == frozenset()

    def test_simple_path(self):
        t = TreeNetwork(3, [(0, 1), (1, 2)])
        assert t.has_edge(0, 1)
        assert t.has_edge(2, 1)
        assert not t.has_edge(0, 2)

    def test_rejects_too_few_edges(self):
        with pytest.raises(ValueError, match="needs 2 edges"):
            TreeNetwork(3, [(0, 1)])

    def test_rejects_cycle(self):
        with pytest.raises(ValueError, match="duplicate|not connected|needs"):
            TreeNetwork(3, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_disconnected(self):
        # 5 vertices, 4 edges, but two components (one contains a cycle).
        with pytest.raises(ValueError, match="not connected"):
            TreeNetwork(5, [(0, 1), (2, 3), (3, 4), (4, 2)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            TreeNetwork(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            TreeNetwork(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of vertex range"):
            TreeNetwork(2, [(0, 5)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one vertex"):
            TreeNetwork(0, [])

    def test_degree_and_neighbors(self):
        t = TreeNetwork(4, [(0, 1), (0, 2), (0, 3)])
        assert t.degree(0) == 3
        assert set(t.neighbors(0)) == {1, 2, 3}
        assert t.degree(1) == 1


# ---------------------------------------------------------------------------
# Paths, LCA, medians, wings
# ---------------------------------------------------------------------------


class TestPaths:
    def test_path_on_path_graph(self):
        t = TreeNetwork(5, [(i, i + 1) for i in range(4)])
        assert t.path_vertices(0, 4) == [0, 1, 2, 3, 4]
        assert t.path_vertices(3, 1) == [3, 2, 1]
        assert t.path_edges(1, 3) == [(1, 2), (2, 3)]

    def test_path_endpoints_equal(self):
        t = TreeNetwork(3, [(0, 1), (1, 2)])
        assert t.path_vertices(1, 1) == [1]
        assert t.path_edges(1, 1) == []

    def test_distance(self):
        t = make_tree(20, "binary", seed=0)
        for u in range(20):
            for v in range(20):
                assert t.distance(u, v) == len(t.path_edges(u, v))

    def test_median_on_star(self):
        t = TreeNetwork(4, [(0, 1), (0, 2), (0, 3)])
        assert t.median(1, 2, 3) == 0
        assert t.median(1, 2, 0) == 0
        assert t.median(1, 1, 2) == 1

    def test_bending_point(self, paper_tree):
        # Paper Figure 6 (0-based): demand ⟨4,13⟩ → (3, 12); bending
        # point w.r.t. node 3 (paper's 3 → ours 2) is paper 2 → ours 1;
        # w.r.t. paper 9 (ours 8) it is paper 5 → ours 4.
        assert paper_tree.bending_point(2, (3, 12)) == 1
        assert paper_tree.bending_point(8, (3, 12)) == 4

    def test_wings(self, paper_tree):
        # Node 4 (paper) = ours 3 is an endpoint: one wing ⟨4,2⟩ = (1,3).
        assert paper_tree.wings(3, (3, 12)) == [edge_key(3, 1)]
        # Node 8 (paper) = ours 7 is interior: wings ⟨5,8⟩ and ⟨8,13⟩.
        wings = set(paper_tree.wings(7, (3, 12)))
        assert wings == {edge_key(4, 7), edge_key(7, 12)}

    def test_wings_rejects_off_path(self, paper_tree):
        with pytest.raises(ValueError, match="not on the path"):
            paper_tree.wings(9, (3, 12))

    def test_lca_against_networkx(self):
        t = make_tree(40, "random", seed=7)
        g = t.to_networkx()
        for u, v in [(0, 39), (5, 17), (20, 20), (3, 30)]:
            expected = nx.shortest_path(g, u, v)
            assert t.path_vertices(u, v) == expected


# ---------------------------------------------------------------------------
# Components, splits, balancers
# ---------------------------------------------------------------------------


class TestComponents:
    def test_split_component(self):
        t = TreeNetwork(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        pieces = t.split_component(2, set(range(5)))
        assert sorted(sorted(p) for p in pieces) == [[0, 1], [3, 4]]

    def test_split_requires_membership(self):
        t = TreeNetwork(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="not in component"):
            t.split_component(2, {0, 1})

    def test_component_neighbors(self):
        t = TreeNetwork(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert t.component_neighbors({1, 2}) == {0, 3}
        assert t.component_neighbors({0, 1, 2, 3, 4}) == set()

    def test_is_component(self):
        t = TreeNetwork(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert t.is_component({1, 2, 3})
        assert not t.is_component({0, 2})
        assert not t.is_component(set())

    def test_balancer_on_path(self):
        t = TreeNetwork(7, [(i, i + 1) for i in range(6)])
        z = t.find_balancer()
        pieces = t.split_component(z, set(range(7)))
        assert all(len(p) <= 3 for p in pieces)

    @pytest.mark.parametrize("topology", ["path", "star", "caterpillar",
                                          "binary", "random", "broom", "spider"])
    def test_balancer_halves_every_topology(self, topology):
        t = make_tree(33, topology, seed=3)
        z = t.find_balancer()
        pieces = t.split_component(z, set(range(33)))
        assert all(len(p) <= 16 for p in pieces), topology

    def test_balancer_on_sub_component(self):
        t = make_tree(40, "random", seed=11)
        comp = set(t.path_vertices(0, 20))
        if len(comp) >= 2:
            z = t.find_balancer(comp)
            assert z in comp
            pieces = t.split_component(z, comp)
            assert all(len(p) <= len(comp) // 2 for p in pieces)


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------


@st.composite
def random_trees(draw, max_n: int = 40):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return make_tree(n, "random", seed=seed)


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_path_symmetry(t):
    u, v = 0, t.n - 1
    assert t.path_vertices(u, v) == t.path_vertices(v, u)[::-1]


@given(random_trees(), st.data())
@settings(max_examples=40, deadline=None)
def test_median_lies_on_all_pairwise_paths(t, data):
    pick = st.integers(min_value=0, max_value=t.n - 1)
    a, b, c = data.draw(pick), data.draw(pick), data.draw(pick)
    m = t.median(a, b, c)
    for x, y in [(a, b), (b, c), (a, c)]:
        assert m in t.path_vertices(x, y)


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_balancer_invariant(t):
    z = t.find_balancer()
    pieces = t.split_component(z, set(range(t.n)))
    assert sum(len(p) for p in pieces) == t.n - 1
    assert all(len(p) <= t.n // 2 for p in pieces)


@given(random_trees(), st.data())
@settings(max_examples=40, deadline=None)
def test_path_edges_exist(t, data):
    pick = st.integers(min_value=0, max_value=t.n - 1)
    u, v = data.draw(pick), data.draw(pick)
    for a, b in t.path_edges(u, v):
        assert t.has_edge(a, b)
