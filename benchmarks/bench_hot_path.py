#!/usr/bin/env python
"""Hot-path micro-benchmark driver.

Times conflict-index construction/queries and batched dual raises on a
~5k-demand line instance and a deep-tree instance, vectorized engine core
vs the frozen scalar reference (``tests/helpers.py``), and writes
``BENCH_hotpath.json`` at the repo root so later PRs can track the perf
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_path.py [--smoke] [-o OUT]

``--smoke`` shrinks the instances for CI; the full run asserts the ≥5×
speedup the vectorization refactor claims.
"""

from __future__ import annotations

import argparse
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_ROOT, os.path.join(_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small instances (CI); skip the 5x assertion")
    parser.add_argument("-o", "--output",
                        default=os.path.join(_ROOT, "BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    from tests import helpers as scalar_reference
    from repro.runners.hotpath import run_hotpath_bench

    report = run_hotpath_bench(
        smoke=args.smoke, out_path=args.output, scalar=scalar_reference
    )
    for name, case in report["cases"].items():
        print(
            f"{name:>5}: {case['instances']} instances, pop {case['population']}"
            f" | conflict x{case['speedup_conflict']:.1f}"
            f" | duals x{case['speedup_duals']:.1f}"
            f" | total x{case['speedup']:.1f}"
        )
    print(f"combined speedup: x{report['combined_speedup']:.1f}"
          f"  (written to {args.output})")

    if not args.smoke and report["combined_speedup"] < 5.0:
        print("FAIL: combined speedup below the required 5x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
