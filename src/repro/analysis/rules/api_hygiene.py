"""API hygiene: ``__all__`` must match what a package actually exports.

``__all__`` is the public contract: it drives ``import *``, doc
tooling, and reviewers' sense of the surface area.  Two failure modes:
a name listed but never bound (an ``ImportError`` waiting inside
``import *``), and a public binding not listed (an accidental export —
or an accidentally private API).  Package ``__init__.py`` files exist
only to curate the surface, so there the rule also requires ``__all__``
to be present and complete.
"""

from __future__ import annotations

import ast

from ..base import Fixture, ParsedFile, Rule, const_str, register
from ..findings import Finding

__all__ = ["ApiHygieneRule"]


def _module_bindings(tree: ast.Module):
    """(bound names, public from-import/def names, star_import, all_node)."""
    bound: set = set()
    public: set = set()
    star = False
    all_node = None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
            if not node.name.startswith("_"):
                public.add(node.name)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    bound.add(t.id)
                    if t.id == "__all__":
                        all_node = node
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    star = True
                    continue
                name = alias.asname or alias.name
                bound.add(name)
                if not name.startswith("_"):
                    public.add(name)
    return bound, public, star, all_node


def _all_entries(all_node: ast.Assign):
    """(entries with line numbers, static) from the __all__ literal."""
    value = all_node.value
    if not isinstance(value, (ast.List, ast.Tuple)):
        return [], False
    entries = []
    for elt in value.elts:
        text = const_str(elt)
        if text is None:
            return [], False
        entries.append((text, elt.lineno, elt.col_offset))
    return entries, True


@register
class ApiHygieneRule(Rule):
    id = "API001"
    name = "all-vs-public-defs"
    rationale = (
        "__all__ is the public contract: a listed-but-unbound name "
        "breaks `import *` with an ImportError, and a public binding "
        "missing from the list is an export nobody decided on.  In "
        "package __init__.py files — which exist only to curate the "
        "surface — __all__ must be present and must exactly cover the "
        "public bindings."
    )
    scope = "file"
    default_path = "pkg/__init__.py"
    fixtures = [
        Fixture(
            bad=(
                "from .kernel import AdmissionSession, Decision\n"
                "\n"
                "__all__ = ['AdmissionSession', 'Decision', 'ReplayResult']\n"
            ),
            good=(
                "from .kernel import AdmissionSession, Decision\n"
                "\n"
                "__all__ = ['AdmissionSession', 'Decision']\n"
            ),
            note="'ReplayResult' is exported but never imported: "
                 "`import *` raises ImportError",
        ),
        Fixture(
            bad=(
                "from .kernel import AdmissionSession, Decision\n"
                "\n"
                "__all__ = ['AdmissionSession']\n"
            ),
            good=(
                "from .kernel import AdmissionSession, Decision\n"
                "\n"
                "__all__ = ['AdmissionSession', 'Decision']\n"
            ),
            note="Decision is publicly imported but unlisted — an export "
                 "nobody decided on",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        path = str(parsed.path)
        is_init = path.endswith("__init__.py")
        bound, public, star, all_node = _module_bindings(parsed.tree)
        if all_node is None:
            if is_init and public:
                yield Finding(
                    path=path, line=1, col=0, rule=self.id,
                    message=("package __init__.py has public bindings but "
                             "no __all__; the export surface must be "
                             "explicit"),
                )
            return
        entries, static = _all_entries(all_node)
        if not static:
            return  # dynamically built __all__: nothing provable
        names = {name for name, _, _ in entries}
        if not star:
            for name, line, col in entries:
                if name not in bound:
                    yield Finding(
                        path=path, line=line, col=col, rule=self.id,
                        message=(f"__all__ lists {name!r} but the module "
                                 "never binds it; `import *` would raise "
                                 "ImportError"),
                    )
        if is_init:
            for name in sorted(public - names):
                yield Finding(
                    path=path, line=all_node.lineno, col=all_node.col_offset,
                    rule=self.id,
                    message=(f"public name {name!r} is bound in this "
                             "__init__.py but missing from __all__"),
                )
