"""Two-phase sharded replay: parallel shard workers + serialized broker.

:class:`ShardedDriver` replays one event trace across ``N`` shards:

* **Phase A** — every shard's local sub-trace (cut-interior demands
  only, plus ticks) is replayed through its own
  :class:`~repro.session.AdmissionSession` (the same kernel the
  unsharded :func:`~repro.online.driver.replay` consumes) with a fresh
  policy instance, one worker per shard, fanned out over a
  :mod:`multiprocessing` pool (the
  same executor pattern as :class:`~repro.runners.replay.ReplayRunner`;
  ``processes <= 1`` runs the workers inline).  Shard edge sets are
  disjoint, so the workers never contend.
* **Phase B** — the :class:`~repro.sharding.ledger.BoundaryBroker`
  absorbs the shard finals into the coordinator ledger and serializes
  the cut-crossing demands through one more unmodified policy instance
  bound to the exact global view.  The coordinator then re-verifies the
  merged admitted set from first principles.

With ``shards=1`` every demand is local, the single sub-trace is the
original trace, and phase B is empty — the run is event-for-event
identical to the single-ledger driver (same admissions, evictions,
profits and final solution; only wall-clock timing differs).

Throughput is reported two ways: ``wall`` (this host, phases run as
scheduled) and ``critical path`` (slowest shard replay plus the
serialized absorb hand-off and boundary phase) — the latter is the
rate an ``N``-worker deployment sustains and is what the
throughput-vs-shards benchmark tracks; on a single-core host the two
differ, on an ``N``-core host they converge.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..core.solution import Solution
from ..io import trace_from_dict, trace_to_dict
from ..obs import tracing as _tracing
from ..online.events import EventTrace
from ..online.metrics import ReplayMetrics
from ..online.policies import make_policy
from ..session.kernel import AdmissionSession, ReplayResult
from .ledger import BoundaryBroker, ShardedLedger
from .planner import ShardPlan, ShardPlanner

__all__ = ["ShardedDriver", "ShardedReplayResult"]


def _run_shard_session(trace: EventTrace, policy,
                       verify: bool) -> ReplayResult:
    """One shard worker: a thin consumer of the session kernel."""
    session = AdmissionSession(trace.problem, policy,
                               trace_meta=trace.meta)
    session.feed_many(trace.events)
    return session.close(verify=verify)


def _replay_shard(payload: dict) -> ReplayResult:
    """Pool worker body: replay one shard's sub-trace from its
    serialized form."""
    trace = trace_from_dict(payload["document"])
    policy = make_policy(payload["policy"], **payload["params"])
    return _run_shard_session(trace, policy, verify=payload["verify"])


@dataclass
class ShardedReplayResult:
    """Everything one sharded replay produced.

    Attributes
    ----------
    plan:
        The :class:`~repro.sharding.planner.ShardPlan` summary dict —
        per-shard demand counts and the boundary-demand population (the
        first-order divergence scale vs the unsharded replay).
    shard_results:
        One :class:`~repro.online.driver.ReplayResult` per shard, over
        local demand ids (``trace_meta["shard"]`` names the shard).
    boundary_result:
        The broker's serialized boundary replay (counter deltas; global
        demand ids), or ``None`` when no demand crossed a cut.
    merged:
        The merged :class:`~repro.online.metrics.ReplayMetrics` — whole
        trace event counts, summed acceptance/profit/eviction counters,
        wall-clock throughput, and the conservative (max) latency tail
        across shards.
    merged_solution:
        The coordinator's final admitted set (verified feasible).
    policy_stats:
        ``{"shards": [...], "boundary": {...}, "absorbed": {...}}`` —
        per-policy counters plus the broker's absorb hand-off tally.
    wall_s / critical_path_s:
        Replay wall-clock on this host vs. the slowest-shard + absorb +
        boundary-phase sum an ``N``-worker deployment would see.
    """

    plan: dict
    shard_results: list[ReplayResult]
    boundary_result: ReplayResult | None
    merged: ReplayMetrics
    merged_solution: Solution | None
    policy_stats: dict = field(default_factory=dict)
    wall_s: float = 0.0
    critical_path_s: float = 0.0

    @property
    def critical_path_events_per_sec(self) -> float:
        """Deployment throughput: total events / critical-path seconds."""
        if self.critical_path_s <= 0:
            return 0.0
        return self.merged.events / self.critical_path_s


class ShardedDriver:
    """Replay traces across shard workers and merge the outcome.

    Parameters
    ----------
    shards:
        Number of shards (>= 1).
    shard_by:
        Partition strategy, ``"subtree"`` or ``"layer"`` (see
        :class:`~repro.sharding.planner.ShardPlanner`).
    processes:
        Phase-A pool size.  ``None`` uses ``min(shards, cpu_count)``;
        ``0`` or ``1`` replays the shards inline (deterministic, no
        fork — identical decisions either way).
    """

    def __init__(self, shards: int, shard_by: str = "subtree",
                 processes: int | None = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.planner = ShardPlanner(shard_by)
        self.processes = processes

    # ------------------------------------------------------------------

    def run(self, trace: EventTrace, policy: str,
            params: dict | None = None, *,
            verify: bool = True) -> ShardedReplayResult:
        """Replay ``trace`` through ``policy`` across the shards.

        ``policy`` is a registry name (one fresh instance is built per
        shard worker plus one for the broker); ``params`` are its
        constructor keywords — validated up front so misconfigurations
        fail before any replay work starts.
        """
        params = dict(params or {})
        boundary_policy = make_policy(policy, **params)  # validates early
        plan = self.planner.plan(trace.problem, self.shards)
        subtraces = [plan.subtrace(s, trace) for s in range(plan.n_shards)]

        t0 = time.perf_counter()
        shard_results = self._fan_out(subtraces, policy, params, verify)

        sharded = ShardedLedger(trace.problem, plan)
        broker = BoundaryBroker(sharded)
        # The absorb hand-off is serialized in any deployment (one
        # coordinator), so it belongs to the critical path alongside the
        # boundary phase.
        t_absorb = time.perf_counter()
        for s, result in enumerate(shard_results):
            broker.absorb(s, result)
        absorb_s = time.perf_counter() - t_absorb
        boundary_result = broker.replay_boundary(
            trace, boundary_policy, verify=verify
        )
        wall = time.perf_counter() - t0

        merged = self._merge(trace, shard_results, boundary_result,
                             wall, broker_certificate=broker.certificate)
        critical = (max(r.metrics.elapsed_s for r in shard_results)
                    + absorb_s
                    + (boundary_result.metrics.elapsed_s
                       if boundary_result else 0.0))
        stats = {
            "shards": [dict(r.policy_stats) for r in shard_results],
            "boundary": (dict(boundary_result.policy_stats)
                         if boundary_result else {}),
            "absorbed": {"count": broker.absorbed_count,
                         "profit": broker.absorbed_profit},
        }
        return ShardedReplayResult(
            plan=plan.summary(),
            shard_results=shard_results,
            boundary_result=boundary_result,
            merged=merged,
            merged_solution=sharded.snapshot(),
            policy_stats=stats,
            wall_s=wall,
            critical_path_s=critical,
        )

    # ------------------------------------------------------------------

    def _fan_out(self, subtraces, policy: str, params: dict,
                 verify: bool) -> list[ReplayResult]:
        """Phase A: one replay per shard, pooled or inline.

        Sub-traces cross the pool boundary as JSON documents (the
        :class:`~repro.runners.replay.ReplayRunner` pattern); inline
        execution skips the round trip entirely — the serialization is
        bit-exact, so the decisions are identical either way
        (property-tested).
        """
        nproc = self.processes
        if nproc is None:
            import os

            nproc = min(len(subtraces), os.cpu_count() or 1)
        nproc = min(nproc, len(subtraces))
        if nproc > 1:
            import multiprocessing as mp

            payloads = [
                {"document": trace_to_dict(st), "policy": policy,
                 "params": params, "verify": verify}
                for st in subtraces
            ]
            with mp.Pool(nproc) as pool:
                return pool.map(_replay_shard, payloads)
        return [_run_shard_session(st, make_policy(policy, **params),
                                   verify=verify)
                for st in subtraces]

    @staticmethod
    def _merge(trace: EventTrace,
               shard_results: list[ReplayResult],
               boundary_result: ReplayResult | None,
               wall: float,
               broker_certificate: dict | None = None) -> ReplayMetrics:
        """Merged metrics: trace-level counts + summed outcome counters.

        Boundary metrics are already deltas over the absorbed baseline,
        so a plain sum never double counts; latency percentiles cannot
        be merged exactly without raw samples, so the merged tail is the
        conservative maximum across shard and boundary rows.
        """
        with _tracing.span("boundary.merge", shards=len(shard_results)):
            return ShardedDriver._merge_rows(
                trace, shard_results, boundary_result, wall,
                broker_certificate)

    @staticmethod
    def _merge_rows(trace: EventTrace,
                    shard_results: list[ReplayResult],
                    boundary_result: ReplayResult | None,
                    wall: float,
                    broker_certificate: dict | None = None) -> ReplayMetrics:
        rows = [r.metrics for r in shard_results]
        if boundary_result is not None:
            rows.append(boundary_result.metrics)
        # The peak-based companion column (history-mode certificates)
        # merges only where the tightened bound is a single row's: the
        # multi-shard sum mixes tightened and peak semantics.
        if boundary_result is not None:
            peak = boundary_result.metrics.dual_upper_bound_peak
        elif len(shard_results) == 1:
            peak = shard_results[0].metrics.dual_upper_bound_peak
        else:
            peak = None
        arrivals = trace.num_arrivals
        accepted = sum(m.accepted for m in rows)
        # Money columns merge with fsum: the merged totals must not
        # depend on shard enumeration order.
        realized = math.fsum(m.realized_profit for m in rows)
        penalty = math.fsum(m.penalty_paid for m in rows)
        if boundary_result is not None:
            # The broker's certificate is computed on the coordinator
            # over the full population — a valid global upper bound.
            cert = boundary_result.metrics.dual_upper_bound
        elif len(shard_results) == 1:
            # One shard, nothing crossing: the run *is* the unsharded
            # replay, certificate included (event-for-event identity).
            cert = shard_results[0].metrics.dual_upper_bound
        else:
            # No demand crosses a cut: the LP separates across shards,
            # so the per-shard certificates sum to a global bound; the
            # broker still priced the coordinator over the absorbed
            # state, which is an independent valid bound — report the
            # tighter of the two.
            shard_certs = [r.metrics.dual_upper_bound for r in shard_results]
            candidates = []
            if all(c is not None for c in shard_certs):
                candidates.append(math.fsum(shard_certs))
            if broker_certificate is not None:
                candidates.append(broker_certificate["upper_bound"])
            cert = min(candidates) if candidates else None
        return ReplayMetrics(
            policy=rows[0].policy,
            events=len(trace.events),
            arrivals=arrivals,
            departures=trace.num_departures,
            ticks=len(trace.events) - arrivals - trace.num_departures,
            accepted=accepted,
            rejected=arrivals - accepted,
            acceptance_ratio=accepted / arrivals if arrivals else 0.0,
            realized_profit=realized,
            evictions=sum(m.evictions for m in rows),
            forfeited_profit=math.fsum(m.forfeited_profit for m in rows),
            penalty_paid=penalty,
            penalty_adjusted_profit=realized - penalty,
            elapsed_s=wall,
            events_per_sec=len(trace.events) / wall if wall > 0 else 0.0,
            latency_p50_us=max(m.latency_p50_us for m in rows),
            latency_p90_us=max(m.latency_p90_us for m in rows),
            latency_p99_us=max(m.latency_p99_us for m in rows),
            latency_mean_us=max(m.latency_mean_us for m in rows),
            dual_upper_bound=cert,
            dual_upper_bound_peak=peak,
        )
