"""Tests for the synchronous message-passing simulator."""

from __future__ import annotations

import pytest

from repro.distributed.messages import Kind, Message
from repro.distributed.simulator import ProcessorBase, RoundContext, SyncSimulator


class Echo(ProcessorBase):
    """Sends one greeting to every neighbour, then echoes what it hears."""

    def __init__(self, pid):
        super().__init__(pid)
        self.heard: list[int] = []
        self.greeted = False

    def on_round(self, ctx: RoundContext, inbox):
        for msg in inbox:
            self.heard.append(msg.sender)
        if not self.greeted:
            ctx.broadcast(Kind.CANDIDATE, self.pid)
            self.greeted = True
        self.wants_round = False


def triangle():
    graph = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}
    procs = {pid: Echo(pid) for pid in graph}
    return SyncSimulator(graph, procs), procs


class TestSimulator:
    def test_delivery_next_round(self):
        sim, procs = triangle()
        sim.step_round()  # everyone greets
        assert all(not p.heard for p in procs.values())
        sim.step_round()  # greetings delivered
        assert sorted(procs[0].heard) == [1, 2]

    def test_run_phase_quiesces(self):
        sim, procs = triangle()
        used = sim.run_phase("greet")
        assert used == 2  # greet round + delivery round
        assert not sim.step_round()

    def test_message_count(self):
        sim, _ = triangle()
        sim.run_phase("greet")
        assert sim.stats.messages == 6  # 3 processors × 2 neighbours

    def test_non_neighbor_send_rejected(self):
        graph = {0: {1}, 1: {0}, 2: set()}

        class Bad(ProcessorBase):
            def on_round(self, ctx, inbox):
                ctx.send(2, Kind.CANDIDATE, None)

        sim = SyncSimulator(graph, {0: Bad(0), 1: Echo(1), 2: Echo(2)})
        with pytest.raises(RuntimeError, match="share no resource"):
            sim.step_round()

    def test_asymmetric_graph_rejected(self):
        with pytest.raises(ValueError, match="asymmetric"):
            SyncSimulator({0: {1}, 1: set()}, {0: Echo(0), 1: Echo(1)})

    def test_pid_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same pids"):
            SyncSimulator({0: set()}, {1: Echo(1)})

    def test_phase_ledger(self):
        sim, _ = triangle()
        sim.run_phase("a")
        assert sim.stats.per_phase["a"] == 2

    def test_inbox_isolated_per_processor(self):
        graph = {0: {1}, 1: {0}, 2: {3}, 3: {2}}

        class Once(ProcessorBase):
            def __init__(self, pid):
                super().__init__(pid)
                self.heard = []

            def on_round(self, ctx, inbox):
                self.heard.extend(m.sender for m in inbox)
                if self.pid == 0 and not inbox:
                    ctx.send(1, Kind.CANDIDATE, None)
                self.wants_round = False

        procs = {pid: Once(pid) for pid in graph}
        sim = SyncSimulator(graph, procs)
        sim.run_phase("x")
        assert procs[1].heard == [0]
        assert procs[2].heard == [] and procs[3].heard == []
