"""End-to-end tests for the replay driver and metrics."""

from __future__ import annotations

import pytest

from repro import verify_line_solution, verify_tree_solution
from repro.online import (
    POLICY_NAMES,
    Departure,
    bursty_trace,
    generate_trace,
    make_policy,
    offline_optimum,
    poisson_trace,
    replay,
    with_offline,
)


def _policy(name):
    if name == "batch-resolve":
        return make_policy(name, solver="greedy", resolve_every=32)
    return make_policy(name)


class TestReplay:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    @pytest.mark.parametrize("kind", ["tree", "line"])
    def test_end_to_end(self, name, kind):
        tr = generate_trace(kind, events=150, seed=1, departure_prob=0.3)
        res = replay(tr, _policy(name))
        m = res.metrics
        assert m.policy == name
        assert m.events == 150
        assert m.arrivals == tr.num_arrivals
        assert m.departures == tr.num_departures
        assert m.accepted + m.rejected == m.arrivals
        assert m.acceptance_ratio == pytest.approx(m.accepted / m.arrivals)
        # Realized profit is NOT the admission-log sum — under preemption
        # the log overcounts; evicted demands forfeit theirs.
        assert m.realized_profit == pytest.approx(
            sum(tr.problem.demands[d].profit for d, _ in res.admission_log)
            - sum(tr.problem.demands[d].profit for d, _ in res.eviction_log)
        )
        assert m.forfeited_profit == pytest.approx(
            sum(tr.problem.demands[d].profit for d, _ in res.eviction_log)
        )
        assert m.evictions == len(res.eviction_log)
        assert m.penalty_adjusted_profit == pytest.approx(
            m.realized_profit - m.penalty_paid
        )
        assert m.events_per_sec > 0
        # The final admitted set is feasible from first principles.
        verify = (verify_tree_solution if kind == "tree"
                  else verify_line_solution)
        verify(tr.problem, res.final_solution, unit_height=False)

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_reproducible_under_fixed_seed(self, name):
        tr = bursty_trace("line", events=200, seed=5, departure_prob=0.4)
        a = replay(tr, _policy(name))
        b = replay(tr, _policy(name))
        assert a.admission_log == b.admission_log
        assert a.metrics.realized_profit == b.metrics.realized_profit

    def test_departed_demands_leave_final_solution(self):
        tr = poisson_trace("line", events=200, seed=2, departure_prob=0.6,
                           rate=4.0)
        res = replay(tr, make_policy("greedy-threshold"))
        departed = {ev.demand_id for ev in tr.events
                    if isinstance(ev, Departure)}
        final = {d.demand_id for d in res.final_solution.selected}
        assert not (final & departed)
        # ... but their profit still counts.
        assert res.metrics.realized_profit >= sum(
            tr.problem.demands[d].profit for d in final
        ) - 1e-9

    def test_trace_meta_echoed(self):
        tr = poisson_trace("line", events=40, seed=3)
        res = replay(tr, make_policy("greedy-threshold"))
        assert res.trace_meta["process"] == "poisson"
        assert res.trace_meta["seed"] == 3


class TestLatencyAccounting:
    def test_finish_flush_lands_in_latency_sample(self):
        """Regression: the end-of-trace finish() — batch-resolve's most
        expensive operation — must appear in the percentiles."""
        import time as _time

        from repro.online import AdmissionPolicy

        class SlowFinish(AdmissionPolicy):
            name = "slow-finish"

            def on_arrival(self, demand_id):
                return None

            def finish(self):
                _time.sleep(0.02)

        tr = poisson_trace("line", events=10, seed=1, departure_prob=0.0)
        res = replay(tr, SlowFinish())
        # 11 samples, one of them ≈ 20 ms: p99 must reflect the flush.
        assert res.metrics.latency_p99_us > 10_000.0

    def test_ledger_release_not_timed_as_policy_work(self, monkeypatch):
        """Regression: the departure branch times only on_departure();
        the driver's own ledger.release() stays outside the window."""
        import time as _time

        from repro.online.state import CapacityLedger

        original = CapacityLedger.release

        def slow_release(self, demand_id):
            _time.sleep(0.005)
            return original(self, demand_id)

        monkeypatch.setattr(CapacityLedger, "release", slow_release)
        tr = poisson_trace("line", events=120, seed=2, departure_prob=0.6,
                           rate=4.0)
        assert tr.num_departures > 10
        res = replay(tr, make_policy("greedy-threshold"))
        # Were release timed, every departure sample would be ≥ 5000 µs
        # and the tail percentile would blow straight past it.
        assert res.metrics.latency_p99_us < 5_000.0


class TestOfflineComparison:
    def test_with_offline_ratios(self):
        tr = poisson_trace("line", events=80, seed=4, departure_prob=0.0)
        res = replay(tr, make_policy("greedy-threshold"))
        opt = offline_optimum(tr, "exact")
        m = with_offline(res.metrics, opt)
        assert m.offline_profit == pytest.approx(opt)
        assert m.profit_vs_offline == pytest.approx(
            m.realized_profit / opt
        )
        assert m.competitive_ratio == pytest.approx(
            opt / m.realized_profit
        )
        # Without departures no policy can beat the clairvoyant optimum.
        assert m.profit_vs_offline <= 1.0 + 1e-9

    def test_zero_over_zero_reports_unit_ratios(self):
        """Regression: a fully-gated replay of a trace whose offline
        benchmark is also 0 reports 1.0/1.0, not blank cells."""
        import math

        tr = poisson_trace("line", events=40, seed=12, departure_prob=0.0)
        res = replay(tr, make_policy("greedy-threshold",
                                     threshold=math.inf))
        assert res.metrics.realized_profit == 0.0
        m = with_offline(res.metrics, 0.0)
        assert m.profit_vs_offline == 1.0
        assert m.competitive_ratio == 1.0

    def test_zero_realized_against_positive_offline(self):
        import math

        tr = poisson_trace("line", events=40, seed=12, departure_prob=0.0)
        res = replay(tr, make_policy("greedy-threshold",
                                     threshold=math.inf))
        m = with_offline(res.metrics, 25.0)
        # 0/positive is a real score; positive/0 stays undefined.
        assert m.profit_vs_offline == 0.0
        assert m.competitive_ratio is None

    def test_ratios_use_penalty_adjusted_profit(self):
        tr = bursty_trace("line", events=300, seed=3, departure_prob=0.3)
        res = replay(tr, make_policy("preempt-density", penalty=0.5))
        m = res.metrics
        assert m.penalty_paid > 0
        scored = with_offline(m, 100.0)
        assert scored.profit_vs_offline == pytest.approx(
            (m.realized_profit - m.penalty_paid) / 100.0
        )
        assert scored.competitive_ratio == pytest.approx(
            100.0 / (m.realized_profit - m.penalty_paid)
        )

    def test_offline_optimum_solver_params_filtered(self):
        tr = poisson_trace("line", events=30, seed=6, departure_prob=0.0)
        # Unknown kwargs are dropped per solver (registry semantics).
        a = offline_optimum(tr, "greedy", seed=1, epsilon=0.3)
        b = offline_optimum(tr, "greedy")
        assert a == pytest.approx(b)

    def test_metrics_dict_is_json_safe(self):
        import json

        tr = poisson_trace("line", events=30, seed=7)
        res = replay(tr, make_policy("dual-gated"))
        doc = with_offline(res.metrics, 10.0).to_dict()
        json.dumps(doc)
        assert doc["policy"] == "dual-gated"
        assert doc["offline_profit"] == 10.0
