"""Vectorization discipline for the columnar batch-decision fast path.

The batch kernels in :mod:`repro.online.fastpath` exist to amortize
per-event interpreter overhead across a whole conflict-free run: one
load gather, a handful of segment reductions, one ``admit_many``.  A
per-event scalar call smuggled into a kernel — ``ledger.admit`` in a
loop, ``policy.on_arrival`` per demand, ``session.feed`` per event —
silently reintroduces exactly the overhead the fast path was built to
remove, while the byte-identity property tests keep passing (the
scalar calls *are* the reference semantics).  The regression is
invisible to correctness checks and only shows up as a benchmark
collapse, so the contract is enforced statically: inside a batch
kernel, decisions and ledger mutations go through the batched entry
points (``admit_many`` / ``release_many`` / the kernel registry), never
the per-event scalar API.
"""

from __future__ import annotations

import ast

from ..base import Fixture, ParsedFile, Rule, register
from ..findings import Finding

__all__ = ["VectorizationRule"]

#: Functions the rule treats as batch kernels: the per-run kernels and
#: their one-shot wrappers follow this naming convention.
_KERNEL_PREFIXES = ("_kernel_", "batch_")

#: Per-event scalar entry points that must never appear inside a batch
#: kernel.  The batched counterparts (``admit_many``, ``release_many``,
#: ``feed_many``) are fine.
_SCALAR_CALLS = {
    "admit": "ledger.admit_many",
    "release": "ledger.release_many",
    "try_admit": "the kernel's own vectorized feasibility probe",
    "on_arrival": "the registered batch kernel",
    "on_departure": "a batched release",
    "on_tick": "nothing (ticks are no-ops in kernels)",
    "feed": "feed_many",
    "submit": "feed_many",
    "_dispatch": "the executor's scalar-fallback path, outside kernels",
}


def _is_kernel(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return fn.name.startswith(_KERNEL_PREFIXES)


@register
class VectorizationRule(Rule):
    id = "VEC001"
    name = "scalar-call-in-batch-kernel"
    rationale = (
        "A batch kernel that calls the per-event scalar API — "
        "ledger.admit in a loop, policy.on_arrival per demand — "
        "reintroduces the per-event interpreter overhead the fast path "
        "exists to remove.  The byte-identity tests cannot catch it "
        "(the scalar calls are the reference semantics), so the only "
        "symptom is a silent benchmark collapse.  Kernels must mutate "
        "the ledger through the batched entry points only."
    )
    scope = "file"
    default_path = "online/fastpath.py"
    fixtures = [
        Fixture(
            bad=(
                "def _kernel_greedy(feeder, plan, i0, i1):\n"
                "    admitted = []\n"
                "    for d in plan.demands[i0:i1].tolist():\n"
                "        iid = feeder.ledger.admit(d)\n"
                "        if iid is not None:\n"
                "            admitted.append(iid)\n"
                "    return admitted\n"
            ),
            good=(
                "def _kernel_greedy(feeder, plan, i0, i1):\n"
                "    best = plan.best[i0:i1]\n"
                "    feeder.ledger.admit_many(best, _prechecked=True)\n"
                "    return best\n"
            ),
            note="the bad kernel admits one demand at a time through "
                 "the scalar ledger API inside the batch kernel",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        for node in ast.walk(parsed.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_kernel(node):
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                name = func.attr
                if name not in _SCALAR_CALLS:
                    continue
                yield Finding(
                    path=str(parsed.path), line=call.lineno,
                    col=call.col_offset, rule=self.id,
                    message=(
                        f"batch kernel {node.name!r} calls per-event "
                        f"scalar API .{name}(); use "
                        f"{_SCALAR_CALLS[name]} instead"
                    ),
                )
