"""Static analysis: the ``repro lint`` invariant checker.

An AST-walking lint framework enforcing the codebase's hard-won
contracts — bit-exact determinism, ``math.fsum`` certificate
accumulation, ``export_state``/``restore_state`` symmetry, a
non-blocking event loop, fork-safe shard workers, a drift-free wire
protocol, and honest ``__all__`` surfaces.  See ``repro lint --help``
and ``repro lint --explain RULE``.
"""

from .base import Fixture, ProjectContext, Rule, get_rule, iter_rules
from .findings import Finding, parse_suppressions
from .runner import (LintReport, lint_fixture, lint_paths, lint_project,
                     render_explain)

__all__ = [
    "Finding",
    "Fixture",
    "LintReport",
    "ProjectContext",
    "Rule",
    "get_rule",
    "iter_rules",
    "lint_fixture",
    "lint_paths",
    "lint_project",
    "parse_suppressions",
    "render_explain",
]
