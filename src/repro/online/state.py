"""Incremental capacity state for streaming admission control.

:class:`CapacityLedger` is the single mutable structure the online
subsystem maintains.  It builds the vectorized
:class:`~repro.core.conflict.ConflictIndex` over the trace's instance
population **once** — interval geometry on lines, Euler-tour geometry on
trees — and then serves every event with O(path)-amortized operations on
the incremental :class:`~repro.core.conflict.ActiveConflictSet`:

* ``feasible`` — which of a demand's instances fit the residual
  capacity right now (one batched gather/segment-max probe);
* ``admit`` / ``release`` — scatter-add / scatter-subtract of the
  instance's height along its route;
* ``route_loads`` — the current per-edge loads along a route, which the
  dual-gated policy prices.

Nothing is ever rebuilt per event; the conflict probes are exactly the
ones the phase-2 engine uses offline, shared through the same index.
"""

from __future__ import annotations

import numpy as np

from ..core.conflict import ActiveConflictSet, ConflictIndex
from ..core.instance import TreeProblem
from ..core.solution import (
    Solution,
    verify_line_solution,
    verify_tree_solution,
)

__all__ = ["CapacityLedger"]


class CapacityLedger:
    """Admit/release bookkeeping over a fixed instance population.

    Parameters
    ----------
    problem:
        The trace's :class:`~repro.core.instance.TreeProblem` or
        :class:`~repro.core.instance.LineProblem`; its expanded instances
        are the admission candidates.

    Notes
    -----
    A demand is admitted through **one** of its instances (one accessible
    network, one placement).  Once released it cannot be re-admitted —
    a departure means the demand left the system for good — so realized
    profit is simply the sum over the admission log.
    """

    def __init__(self, problem):
        self.problem = problem
        self.instances = problem.instances()
        edges_of = [frozenset(problem.global_edges_of(d)) for d in self.instances]
        trees = None
        if isinstance(problem, TreeProblem):
            trees = {q: net for q, net in enumerate(problem.networks)}
        #: The shared conflict index (built once; exposes the PR-1 probes).
        self.index = ConflictIndex(self.instances, edges_of, trees=trees)
        self.active = self.index.active_set(capacities=True)
        self._candidates: dict[int, np.ndarray] = {}
        by_demand: dict[int, list[int]] = {}
        for inst in self.instances:
            by_demand.setdefault(inst.demand_id, []).append(inst.instance_id)
        for d, iids in by_demand.items():
            self._candidates[d] = np.asarray(iids, dtype=np.int64)
        self._admitted: dict[int, int] = {}
        self._ever_admitted: set[int] = set()
        #: ``(demand_id, instance_id)`` in admission order; never shrinks.
        self.admission_log: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def candidates(self, demand_id: int) -> np.ndarray:
        """Instance ids of ``demand_id`` (one per network × placement)."""
        try:
            return self._candidates[demand_id]
        except KeyError:
            raise KeyError(f"unknown demand {demand_id}") from None

    def feasible(self, iids) -> np.ndarray:
        """Boolean mask: which instances fit the residual capacity now."""
        return ~self.active.blocked_mask(np.asarray(iids, dtype=np.int64))

    def route_loads(self, iid: int) -> np.ndarray:
        """Current load on each edge of instance ``iid``'s route."""
        return self.active.edge_loads(iid)

    def is_admitted(self, demand_id: int) -> bool:
        """Whether the demand is currently in the system."""
        return demand_id in self._admitted

    def admitted_instance(self, demand_id: int) -> int | None:
        """The instance a currently-admitted demand holds, else ``None``."""
        return self._admitted.get(demand_id)

    @property
    def num_admitted(self) -> int:
        """Number of demands currently holding capacity."""
        return len(self._admitted)

    @property
    def realized_profit(self) -> float:
        """Total profit over the admission log (departures keep theirs)."""
        return float(
            sum(self.instances[iid].profit for _, iid in self.admission_log)
        )

    def utilization(self) -> float:
        """Heaviest current edge load (1.0 = some edge fully booked)."""
        return self.active.max_load()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def admit(self, iid: int) -> None:
        """Admit one instance; its demand must be new and the route free.

        Raises
        ------
        ValueError
            If the demand was admitted before (even if since departed) or
            the instance no longer fits the residual capacity.
        """
        demand_id = self.instances[iid].demand_id
        if demand_id in self._ever_admitted:
            raise ValueError(f"demand {demand_id} was already admitted")
        if self.active.blocked(iid):
            raise ValueError(
                f"instance {iid} no longer fits the residual capacity"
            )
        self.active.add(iid)
        self._admitted[demand_id] = iid
        self._ever_admitted.add(demand_id)
        self.admission_log.append((demand_id, iid))

    def try_admit(self, demand_id: int,
                  min_density: float = 0.0) -> int | None:
        """Admit the cheapest feasible instance of a demand, if any.

        Candidates are ranked by route length then instance id, so the
        admission burns as little bandwidth as possible; instances whose
        profit density (profit / route length) falls below
        ``min_density`` are skipped.  Returns the admitted instance id
        or ``None``.  This ranking is *the* first-fit rule — the
        greedy-threshold policy delegates here.
        """
        if demand_id in self._ever_admitted:
            return None
        cands = self.candidates(demand_id)
        ok = self.feasible(cands)
        best = None
        best_key = None
        for iid in cands[ok].tolist():
            length = max(len(self.index.edges_of(iid)), 1)
            if self.instances[iid].profit / length < min_density:
                continue
            key = (length, iid)
            if best_key is None or key < best_key:
                best, best_key = iid, key
        if best is None:
            return None
        self.admit(best)
        return best

    def release(self, demand_id: int) -> int:
        """Release a departed demand's capacity; returns its instance id."""
        try:
            iid = self._admitted.pop(demand_id)
        except KeyError:
            raise KeyError(f"demand {demand_id} is not admitted") from None
        self.active.remove(iid)
        return iid

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def snapshot(self) -> Solution:
        """The currently-admitted instances as a :class:`Solution`."""
        selected = [self.instances[iid] for iid in self._admitted.values()]
        return Solution(
            selected=selected,
            stats={"algorithm": "online-ledger", "admitted": len(selected)},
        )

    def verify(self) -> None:
        """Re-check the current admitted set from first principles."""
        sol = self.snapshot()
        if isinstance(self.problem, TreeProblem):
            verify_tree_solution(self.problem, sol, unit_height=False)
        else:
            verify_line_solution(self.problem, sol, unit_height=False)
