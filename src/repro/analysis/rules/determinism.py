"""Determinism rules: ordering, randomness, wall clocks.

The replay contract is bit-exact determinism: the same trace and policy
must produce the same admissions on every host, every run, sharded or
not.  Three ways code breaks that contract statically:

* iterating a ``set``/``frozenset`` (or a dict keyed by ``id()``) into
  ordered output — Python set order is hash-seed dependent;
* drawing from the process-global ``random`` / ``numpy.random`` state,
  which any import may have touched;
* reading the wall clock inside decision paths — replays at different
  times would diverge.
"""

from __future__ import annotations

import ast

from ..base import Fixture, ParsedFile, Rule, call_name, in_packages, register
from ..findings import Finding

__all__ = ["SetIterationRule", "UnseededRandomRule", "WallClockRule"]

#: Packages whose modules feed ordered, replayed output.
_ORDERED_PACKAGES = ("core", "session", "sharding", "service", "online")

#: Consumers whose result does not depend on iteration order.
_ORDER_INSENSITIVE = {
    "sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset",
    "math.fsum", "fsum", "dict",
}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    name = call_name(node)
    if name in ("set", "frozenset"):
        return True
    # set algebra on calls: set(a) | set(b), a & b over set() calls
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr,
                                                            ast.BitAnd,
                                                            ast.Sub)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _id_keyed_names(tree: ast.Module):
    """Names of dicts subscripted with ``id(...)`` anywhere in the module."""
    names = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Subscript)
                and call_name(node.slice) == "id"
                and isinstance(node.slice, ast.Call)):
            target = node.value
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


@register
class SetIterationRule(Rule):
    id = "DET001"
    name = "set-iteration-order"
    rationale = (
        "Iterating a set/frozenset (or a dict keyed by id()) feeds "
        "hash-seed-dependent order into replayed output; admissions, "
        "logs and merged metrics must be byte-identical across runs. "
        "Wrap the iterable in sorted(...) or consume it with an "
        "order-insensitive reducer (sum/min/max/any/all/math.fsum)."
    )
    scope = "file"
    default_path = "core/fixture.py"
    fixtures = [
        Fixture(
            bad=(
                "def admitted_rows(admitted):\n"
                "    rows = []\n"
                "    for d in set(admitted):\n"
                "        rows.append(d)\n"
                "    return rows\n"
            ),
            good=(
                "def admitted_rows(admitted):\n"
                "    rows = []\n"
                "    for d in sorted(set(admitted)):\n"
                "        rows.append(d)\n"
                "    return rows\n"
            ),
            note="sorted(...) pins the order; bare set iteration does not",
        ),
        Fixture(
            bad=(
                "def snapshot(items):\n"
                "    cache = {}\n"
                "    for it in items:\n"
                "        cache[id(it)] = it\n"
                "    return [cache[k] for k in cache]\n"
            ),
            good=(
                "def snapshot(items):\n"
                "    return list(items)\n"
            ),
            note="id() values vary per process: keying a dict on them "
                 "makes its order irreproducible",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        if not in_packages(parsed.path, _ORDERED_PACKAGES):
            return
        id_keyed = _id_keyed_names(parsed.tree)
        safe_iters = set()
        for node in ast.walk(parsed.tree):
            if (isinstance(node, ast.Call)
                    and call_name(node) in _ORDER_INSENSITIVE):
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp)):
                        for gen in arg.generators:
                            safe_iters.add(id(gen.iter))
                    else:
                        safe_iters.add(id(arg))
        for node in ast.walk(parsed.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if id(it) in safe_iters:
                    continue
                if _is_set_expr(it):
                    yield Finding(
                        path=str(parsed.path), line=it.lineno,
                        col=it.col_offset, rule=self.id,
                        message=("iteration over a set feeds ordered "
                                 "output; wrap in sorted(...) or use an "
                                 "order-insensitive reducer"),
                    )
                    continue
                base = it
                if (isinstance(base, ast.Call)
                        and isinstance(base.func, ast.Attribute)
                        and base.func.attr in ("items", "keys", "values")):
                    base = base.func.value
                name = (base.id if isinstance(base, ast.Name)
                        else base.attr if isinstance(base, ast.Attribute)
                        else None)
                if name is not None and name in id_keyed:
                    yield Finding(
                        path=str(parsed.path), line=it.lineno,
                        col=it.col_offset, rule=self.id,
                        message=(f"iteration over {name!r}, a dict keyed "
                                 "by id(): its order varies per process"),
                    )


#: Process-global RNG entry points (the seeded-instance APIs are fine).
_GLOBAL_RNG = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.sample", "random.shuffle", "random.uniform",
    "random.gauss", "random.seed",
    "np.random.random", "np.random.rand", "np.random.randn",
    "np.random.randint", "np.random.choice", "np.random.shuffle",
    "np.random.permutation", "np.random.uniform", "np.random.seed",
    "numpy.random.random", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.randint", "numpy.random.choice", "numpy.random.shuffle",
    "numpy.random.permutation", "numpy.random.uniform", "numpy.random.seed",
}


@register
class UnseededRandomRule(Rule):
    id = "DET002"
    name = "unseeded-random"
    rationale = (
        "The module-level random / numpy.random state is shared by the "
        "whole process: any import or library call may advance it, so "
        "draws from it are not reproducible.  Use an explicitly seeded "
        "random.Random(seed) or numpy.random.default_rng(seed) instance "
        "instead; default_rng() without a seed is equally unreproducible."
    )
    scope = "file"
    default_path = "core/fixture.py"
    fixtures = [
        Fixture(
            bad=(
                "import random\n"
                "def jitter():\n"
                "    return random.random()\n"
            ),
            good=(
                "import random\n"
                "def jitter(seed):\n"
                "    return random.Random(seed).random()\n"
            ),
            note="a seeded instance owns its stream; the module-level "
                 "state belongs to everyone",
        ),
        Fixture(
            bad=(
                "import numpy as np\n"
                "def pick(n):\n"
                "    rng = np.random.default_rng()\n"
                "    return rng.integers(n)\n"
            ),
            good=(
                "import numpy as np\n"
                "def pick(n, seed):\n"
                "    rng = np.random.default_rng(seed)\n"
                "    return rng.integers(n)\n"
            ),
            note="default_rng() pulls OS entropy; default_rng(seed) replays",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _GLOBAL_RNG:
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=(f"{name}() draws from the process-global RNG "
                             "state; use a seeded instance"),
                )
            elif (name is not None and name.endswith("default_rng")
                  and not node.args and not node.keywords):
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=("default_rng() without a seed is "
                             "unreproducible; pass an explicit seed"),
                )


#: Wall-clock reads.  perf_counter/monotonic are fine: they only ever
#: feed timing metrics, which the equivalence tests already exclude.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.localtime", "time.ctime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    id = "DET003"
    name = "wall-clock-in-decision-path"
    rationale = (
        "Decision paths must be a pure function of (event sequence, "
        "policy config): a wall-clock read makes the replay depend on "
        "when it runs, so a journal resumed tomorrow could diverge from "
        "the run that wrote it.  Event time comes from the trace; "
        "latency timing uses time.perf_counter, which never feeds "
        "decisions or the deterministic metrics projection."
    )
    scope = "file"
    default_path = "session/fixture.py"
    fixtures = [
        Fixture(
            bad=(
                "import time\n"
                "def on_arrival(demand):\n"
                "    deadline = time.time() + 5.0\n"
                "    return deadline\n"
            ),
            good=(
                "def on_arrival(demand, event_time):\n"
                "    deadline = event_time + 5.0\n"
                "    return deadline\n"
            ),
            note="the trace carries event time; the host clock does not "
                 "replay",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        if not in_packages(parsed.path, _ORDERED_PACKAGES):
            return
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _WALL_CLOCK:
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=(f"{name}() reads the wall clock in a "
                             "decision-path package; replays must not "
                             "depend on when they run"),
                )
