"""Tests for the incremental capacity ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FeasibilityError
from repro.online import CapacityLedger, poisson_trace
from repro.workloads import random_line_problem, random_tree_problem


class TestLedgerBasics:
    def test_admit_release_cycle(self):
        p = random_line_problem(n_slots=20, m=6, r=1, seed=1, max_len=5)
        ledger = CapacityLedger(p)
        iid = ledger.try_admit(0)
        assert iid is not None
        assert ledger.is_admitted(0)
        assert ledger.admitted_instance(0) == iid
        assert ledger.num_admitted == 1
        assert ledger.release(0) == iid
        assert not ledger.is_admitted(0)
        assert ledger.num_admitted == 0
        # Profit is kept even after the departure.
        assert ledger.realized_profit == pytest.approx(p.demands[0].profit)

    def test_no_readmission_after_release(self):
        p = random_line_problem(n_slots=20, m=4, r=1, seed=2)
        ledger = CapacityLedger(p)
        assert ledger.try_admit(1) is not None
        ledger.release(1)
        assert ledger.try_admit(1) is None
        with pytest.raises(ValueError, match="already admitted"):
            ledger.admit(int(ledger.candidates(1)[0]))

    def test_release_unknown_demand(self):
        p = random_line_problem(n_slots=10, m=2, r=1, seed=3)
        ledger = CapacityLedger(p)
        with pytest.raises(KeyError, match="not admitted"):
            ledger.release(0)

    def test_candidates_cover_networks_and_placements(self):
        p = random_line_problem(n_slots=16, m=5, r=2, seed=4, max_len=4)
        ledger = CapacityLedger(p)
        for d in range(p.num_demands):
            cands = ledger.candidates(d)
            assert {p.instances()[i].demand_id for i in cands} == {d}
        with pytest.raises(KeyError, match="unknown demand"):
            ledger.candidates(999)

    def test_admit_blocked_instance_raises(self):
        # Two unit-height demands on the single edge of a 2-vertex tree.
        from repro import Demand, TreeNetwork, TreeProblem

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        p = TreeProblem(n=2, networks=[net],
                        demands=[Demand(0, 0, 1, 1.0), Demand(1, 0, 1, 1.0)])
        ledger = CapacityLedger(p)
        assert ledger.try_admit(0) is not None
        assert ledger.try_admit(1) is None
        with pytest.raises(ValueError, match="no longer fits"):
            ledger.admit(int(ledger.candidates(1)[0]))

    def test_geometry_reused_from_conflict_index(self):
        tree = CapacityLedger(random_tree_problem(n=16, m=6, r=1, seed=5))
        line = CapacityLedger(random_line_problem(n_slots=16, m=6, r=1, seed=5))
        assert tree.index._geometry == "euler"
        assert line.index._geometry == "interval"


class TestLedgerConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_loads_match_bruteforce(self, seed):
        p = random_line_problem(n_slots=24, m=12, r=2, seed=seed,
                                height_regime="mixed", max_len=6)
        ledger = CapacityLedger(p)
        rng = np.random.default_rng(seed)
        admitted: list[int] = []
        for step in range(40):
            if admitted and rng.random() < 0.3:
                d = admitted.pop(int(rng.integers(len(admitted))))
                ledger.release(d)
            else:
                d = int(rng.integers(p.num_demands))
                if ledger.try_admit(d) is not None:
                    admitted.append(d)
            ledger.verify()  # never oversubscribed, from first principles
        # Cross-check every route's load against a scratch recompute.
        load: dict = {}
        for d in admitted:
            inst = p.instances()[ledger.admitted_instance(d)]
            for ge in p.global_edges_of(inst):
                load[ge] = load.get(ge, 0.0) + inst.height
        assert ledger.utilization() == pytest.approx(
            max(load.values(), default=0.0)
        )

    def test_feasible_matches_blocked_semantics(self):
        p = random_tree_problem(n=20, m=10, r=1, seed=6,
                                height_regime="mixed")
        ledger = CapacityLedger(p)
        for d in range(5):
            ledger.try_admit(d)
        for d in range(p.num_demands):
            cands = ledger.candidates(d)
            feas = ledger.feasible(cands)
            for iid, ok in zip(cands.tolist(), feas.tolist()):
                assert ok == (not ledger.active.blocked(iid))

    def test_route_loads_reflect_admissions(self):
        from repro import Demand, TreeNetwork, TreeProblem

        net = TreeNetwork(3, [(0, 1), (1, 2)], network_id=0)
        p = TreeProblem(
            n=3, networks=[net],
            demands=[Demand(0, 0, 2, 1.0, height=0.4),
                     Demand(1, 0, 2, 1.0, height=0.4)],
        )
        ledger = CapacityLedger(p)
        iid1 = int(ledger.candidates(1)[0])
        assert ledger.route_loads(iid1).tolist() == [0.0, 0.0]
        ledger.try_admit(0)
        assert ledger.route_loads(iid1).tolist() == [0.4, 0.4]

    def test_snapshot_verifies_and_detects_corruption(self):
        p = random_line_problem(n_slots=20, m=8, r=1, seed=7)
        ledger = CapacityLedger(p)
        for d in range(p.num_demands):
            ledger.try_admit(d)
        ledger.verify()
        # Forcibly corrupt the admitted map: duplicate demand selection.
        if len(ledger._admitted) >= 2:
            ds = sorted(ledger._admitted)
            ledger._admitted[ds[0]] = ledger._admitted[ds[1]]
            with pytest.raises(FeasibilityError):
                ledger.verify()

    def test_index_built_once_per_trace(self):
        tr = poisson_trace("line", events=60, seed=8, departure_prob=0.3)
        ledger = CapacityLedger(tr.problem)
        index = ledger.index
        for ev_d in range(min(5, tr.problem.num_demands)):
            ledger.try_admit(ev_d)
        assert ledger.index is index  # probes never rebuild the index


class TestWithdraw:
    def test_withdraw_erases_the_admission(self):
        tr = poisson_trace("line", events=60, seed=3, departure_prob=0.0)
        ledger = CapacityLedger(tr.problem)
        iid = ledger.try_admit(0)
        assert iid is not None
        profit = ledger.instances[iid].profit
        assert ledger.admitted_profit == pytest.approx(profit)
        back = ledger.withdraw(0)
        assert back == iid
        assert ledger.num_admitted == 0
        assert ledger.admitted_profit == 0.0
        assert ledger.admission_log == []
        assert not ledger.was_admitted(0)
        # Unlike release/evict, the demand may be admitted again.
        assert ledger.try_admit(0) == iid
        ledger.verify()

    def test_withdraw_requires_admission(self):
        tr = poisson_trace("line", events=60, seed=3, departure_prob=0.0)
        ledger = CapacityLedger(tr.problem)
        with pytest.raises(KeyError):
            ledger.withdraw(0)

    def test_admitted_items_deterministic(self):
        tr = poisson_trace("line", events=80, seed=4, departure_prob=0.0)
        ledger = CapacityLedger(tr.problem)
        for d in range(tr.problem.num_demands):
            ledger.try_admit(d)
        items = ledger.admitted_items()
        assert items == sorted(items)
        assert len(items) == ledger.num_admitted
