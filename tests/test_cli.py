"""Tests for the command-line interface (driven through ``cli.main``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def tree_json(tmp_path):
    path = tmp_path / "tree.json"
    rc = main(["generate", "--kind", "tree", "--n", "16", "--m", "10",
               "--r", "2", "--seed", "1", "-o", str(path)])
    assert rc == 0
    return str(path)


@pytest.fixture
def line_json(tmp_path):
    path = tmp_path / "line.json"
    rc = main(["generate", "--kind", "line", "--n", "24", "--m", "10",
               "--r", "2", "--seed", "1", "--heights", "mixed",
               "-o", str(path)])
    assert rc == 0
    return str(path)


class TestGenerate:
    def test_tree_file_valid(self, tree_json):
        doc = json.load(open(tree_json))
        assert doc["kind"] == "tree"
        assert len(doc["demands"]) == 10

    def test_line_file_valid(self, line_json):
        doc = json.load(open(line_json))
        assert doc["kind"] == "line"
        assert doc["n_slots"] == 24


class TestSolve:
    def test_auto_tree(self, tree_json, capsys):
        assert main(["solve", tree_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "profit" in out and "rounds" in out

    def test_auto_line_arbitrary(self, line_json, capsys):
        assert main(["solve", line_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "line-arbitrary" in out

    def test_explicit_algorithm(self, tree_json, capsys):
        assert main(["solve", tree_json, "--algorithm", "sequential"]) == 0
        assert "sequential" in capsys.readouterr().out

    def test_exact(self, tree_json, capsys):
        assert main(["solve", tree_json, "--algorithm", "exact"]) == 0
        assert "milp" in capsys.readouterr().out

    def test_save_solution(self, tree_json, tmp_path, capsys):
        out_path = tmp_path / "sol.json"
        assert main(["solve", tree_json, "--save-solution", str(out_path)]) == 0
        doc = json.load(open(out_path))
        assert "selected" in doc and "profit" in doc

    def test_wrong_family_rejected(self, tree_json):
        with pytest.raises(SystemExit, match="needs a line problem"):
            main(["solve", tree_json, "--algorithm", "line-unit"])

    def test_mis_backends(self, tree_json, capsys):
        for mis in ["greedy", "priority", "luby"]:
            assert main(["solve", tree_json, "--mis", mis]) == 0


class TestCompare:
    def test_tree(self, tree_json, capsys):
        assert main(["compare", tree_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "exact OPT" in out and "greedy" in out and "sequential" in out

    def test_line(self, line_json, capsys):
        assert main(["compare", line_json, "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Panconesi" in out


class TestDecompose:
    def test_table(self, capsys):
        assert main(["decompose", "--topology", "caterpillar", "--n", "20"]) == 0
        out = capsys.readouterr().out
        assert "ideal" in out and "root-fixing" in out and "depth" in out


class TestReplay:
    def test_generated_trace_end_to_end(self, capsys):
        assert main(["replay", "--policy", "dual-gated",
                     "--events", "150", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "dual-gated" in out and "events/s" in out
        assert "generated poisson line trace" in out

    def test_all_policies_and_processes(self, capsys):
        for policy in ["greedy-threshold", "batch-resolve"]:
            assert main(["replay", "--policy", policy, "--events", "80",
                         "--process", "bursty", "--kind", "tree"]) == 0
            assert policy in capsys.readouterr().out

    def test_save_and_reload_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["replay", "--events", "60", "--seed", "2",
                     "--save-trace", str(trace_path)]) == 0
        first = capsys.readouterr().out
        assert trace_path.exists()
        # Replaying the saved trace reproduces the exact same profit row.
        assert main(["replay", str(trace_path),
                     "--policy", "dual-gated"]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-1].split()[5] == \
            second.splitlines()[-1].split()[5]

    def test_offline_columns_and_output(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.json"
        assert main(["replay", "--events", "60", "--seed", "3",
                     "--offline", "greedy", "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "ALG/OPT" in out and "c-ratio" in out
        doc = json.load(open(out_path))
        assert doc["offline_profit"] is not None
        assert "trace_meta" in doc

    def test_unknown_offline_solver_friendly(self):
        with pytest.raises(SystemExit, match="unknown solver"):
            main(["replay", "--events", "30", "--offline", "oracle"])

    def test_unknown_batch_solver_friendly(self):
        with pytest.raises(SystemExit, match="unknown solver"):
            main(["replay", "--events", "30", "--policy", "batch-resolve",
                  "--solver", "oracle"])

    def test_wrong_family_solver_friendly(self):
        # A tree solver on the default line trace must fail up front
        # with a message, not crash mid-flush with a traceback.
        with pytest.raises(SystemExit, match="needs a tree problem"):
            main(["replay", "--events", "30", "--policy", "batch-resolve",
                  "--solver", "tree-unit"])
        with pytest.raises(SystemExit, match="needs a tree problem"):
            main(["replay", "--events", "30", "--offline", "tree-unit"])

    def test_unknown_policy_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--policy", "oracle"])
        assert "invalid choice" in capsys.readouterr().err

    def test_preemptive_policies_end_to_end(self, capsys):
        for kind in ["line", "tree"]:
            assert main(["replay", "--policy", "preempt-density",
                         "--kind", kind, "--events", "200",
                         "--process", "bursty", "--seed", "3"]) == 0
            out = capsys.readouterr().out
            assert "preempt-density" in out
            assert "evict" in out and "adj profit" in out
        assert main(["replay", "--policy", "preempt-dual-gated",
                     "--events", "200", "--process", "bursty",
                     "--penalty", "0.2", "--seed", "3"]) == 0
        assert "preempt-dual-gated" in capsys.readouterr().out

    def test_misspelled_policy_kwarg_friendly(self, capsys):
        # The PR-2 friendly-error treatment extends to policy kwargs: a
        # misspelled --policy-arg exits with a message, not a TypeError
        # traceback — and before any trace is generated.
        with pytest.raises(SystemExit,
                           match="bad parameters for policy"):
            main(["replay", "--policy", "dual-gated",
                  "--policy-arg", "etaa=1.3"])
        assert "generated" not in capsys.readouterr().out

    def test_policy_arg_passthrough_and_format_check(self, capsys):
        assert main(["replay", "--policy", "dual-gated", "--events", "60",
                     "--policy-arg", "eta=2.0"]) == 0
        assert "dual-gated" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            main(["replay", "--policy", "dual-gated",
                  "--policy-arg", "eta"])


class TestFriendlyArgumentErrors:
    """Bad --seed/--processes/... values exit with a message, never a
    traceback (argparse.ArgumentTypeError -> SystemExit(2))."""

    def test_replay_bad_seed(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--seed", "banana"])
        assert "seed must be an integer" in capsys.readouterr().err

    def test_replay_bad_events(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--events", "0"])
        assert "events must be >= 1" in capsys.readouterr().err

    def test_replay_negative_seed(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--seed", "-3"])
        assert "seed must be >= 0" in capsys.readouterr().err

    def test_replay_departures_out_of_range(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--departures", "1.5"])
        assert "departures must be in [0.0, 1.0]" in capsys.readouterr().err

    def test_sweep_negative_seed(self, tree_json, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", tree_json, "--seeds", "0,-1"])
        assert "non-negative" in capsys.readouterr().err

    def test_sweep_bad_seeds(self, tree_json, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", tree_json, "--seeds", "0,x"])
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep_empty_seeds(self, tree_json, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", tree_json, "--seeds", ","])
        assert "at least one seed" in capsys.readouterr().err

    def test_sweep_bad_processes(self, tree_json, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", tree_json, "--processes", "-2"])
        assert "processes must be >= 0" in capsys.readouterr().err

    def test_sweep_unknown_solver_friendly(self, tree_json):
        with pytest.raises(SystemExit, match="unknown solver"):
            main(["sweep", tree_json, "--solvers", "oracle"])

    def test_sweep_still_accepts_valid_seeds(self, tree_json, capsys):
        assert main(["sweep", tree_json, "--solvers", "greedy",
                     "--seeds", "0,1", "--processes", "1"]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out


class TestShardedReplay:
    @pytest.fixture
    def trace_json(self, tmp_path):
        path = tmp_path / "trace.json"
        rc = main(["replay", "--kind", "tree", "--events", "150",
                   "--seed", "3", "--policy", "greedy-threshold",
                   "--save-trace", str(path)])
        assert rc == 0
        return str(path)

    def test_sharded_replay_prints_merged_table(self, trace_json, capsys,
                                                tmp_path):
        out_path = tmp_path / "sharded.json"
        rc = main(["replay", trace_json, "--policy", "dual-gated",
                   "--shards", "2", "--shard-by", "subtree",
                   "--processes", "0", "-o", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "subtree plan" in out
        assert "merged" in out and "shard-0" in out
        doc = json.load(open(out_path))
        assert doc["plan"]["shards"] == 2
        assert len(doc["shards"]) == 2
        assert doc["merged"]["accepted"] >= 0
        assert doc["critical_path_events_per_sec"] > 0

    def test_shards_one_uses_single_ledger_driver(self, trace_json,
                                                  capsys):
        rc = main(["replay", trace_json, "--policy", "greedy-threshold",
                   "--shards", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan" not in out  # the unsharded table, unchanged

    def test_bad_shards_value(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--shards", "0"])
        assert "shards must be >= 1" in capsys.readouterr().err

    def test_dual_ub_column_in_replay_table(self, trace_json, capsys):
        rc = main(["replay", trace_json, "--policy", "dual-gated"])
        assert rc == 0
        assert "OPT≤(dual)" in capsys.readouterr().out


class TestServeResume:
    @pytest.fixture
    def trace_json(self, tmp_path):
        path = tmp_path / "trace.json"
        rc = main(["replay", "--events", "120", "--seed", "4",
                   "--save-trace", str(path)])
        assert rc == 0
        return str(path)

    def _requests(self, trace_path, upto=None, close=False):
        from repro.io import event_to_dict, load_trace

        events = load_trace(trace_path).events[:upto]
        lines = [json.dumps({"op": "submit", "event": event_to_dict(ev)})
                 for ev in events]
        if close:
            lines.append(json.dumps({"op": "close"}))
        return "\n".join(lines) + "\n"

    def test_serve_full_trace_over_stdin(self, trace_json, tmp_path,
                                         capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(
            self._requests(trace_json, close=True)
        ))
        assert main(["serve", "--trace", trace_json, "--policy",
                     "dual-gated",
                     "--journal", str(tmp_path / "j.log")]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(l) for l in captured.out.splitlines()]
        assert all(r["ok"] for r in responses)
        assert responses[-1]["op"] == "close"
        assert "serving" in captured.err

    def test_kill_then_resume_matches_plain_replay(
            self, trace_json, tmp_path, capsys, monkeypatch):
        import io

        from repro.online.metrics import deterministic_metrics

        plain_path = tmp_path / "plain.json"
        assert main(["replay", trace_json, "--policy", "dual-gated",
                     "-o", str(plain_path)]) == 0
        capsys.readouterr()
        journal = str(tmp_path / "j.log")
        # Serve only a prefix; the input stream ending plays the kill.
        monkeypatch.setattr("sys.stdin", io.StringIO(
            self._requests(trace_json, upto=50)
        ))
        assert main(["serve", "--trace", trace_json, "--policy",
                     "dual-gated", "--journal", journal]) == 0
        capsys.readouterr()
        out_path = tmp_path / "resumed.json"
        assert main(["resume", "--journal", journal,
                     "-o", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert "recovered 50 journaled events" in captured.err
        assert "dual-gated" in captured.out
        plain = json.load(open(plain_path))
        resumed = json.load(open(out_path))
        assert resumed.pop("resumed_at") == 50
        assert deterministic_metrics(
            {k: v for k, v in resumed.items()
             if k not in ("policy_stats", "trace_meta")}
        ) == deterministic_metrics(
            {k: v for k, v in plain.items()
             if k not in ("policy_stats", "trace_meta")}
        )
        assert resumed["policy_stats"] == plain["policy_stats"]

    def test_serve_policy_args_and_bad_policy_arg(self, trace_json,
                                                  tmp_path, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", "--trace", trace_json, "--policy",
                     "dual-gated", "--policy-arg", "eta=1.5"]) == 0
        with pytest.raises(SystemExit, match="bad parameters"):
            main(["serve", "--trace", trace_json, "--policy",
                  "dual-gated", "--policy-arg", "stiffness=2"])
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            main(["serve", "--trace", trace_json, "--policy-arg", "eta"])

    def test_resume_missing_journal_friendly(self, tmp_path):
        with pytest.raises(SystemExit, match="resume"):
            main(["resume", "--journal", str(tmp_path / "nope.log")])

    def test_serve_sharded_backend(self, tmp_path, capsys, monkeypatch):
        import io

        trace_path = tmp_path / "tree_trace.json"
        assert main(["replay", "--events", "100", "--seed", "5",
                     "--kind", "tree", "--save-trace",
                     str(trace_path)]) == 0
        capsys.readouterr()
        monkeypatch.setattr("sys.stdin", io.StringIO(
            self._requests(str(trace_path), close=True)
        ))
        assert main(["serve", "--trace", str(trace_path),
                     "--shards", "2"]) == 0
        captured = capsys.readouterr()
        assert "2 shards" in captured.err
        assert json.loads(captured.out.splitlines()[-1])["ok"]

    def test_history_certificate_via_policy_arg(self, trace_json, capsys):
        assert main(["replay", trace_json, "--policy", "dual-gated",
                     "--policy-arg", "history=true"]) == 0
        out = capsys.readouterr().out
        assert "OPT≤(dual)" in out and "OPT≤(peak)" in out


class TestSweepPreemption:
    @pytest.fixture
    def trace_json(self, tmp_path):
        path = tmp_path / "burst.json"
        rc = main(["replay", "--kind", "line", "--events", "120",
                   "--process", "bursty", "--seed", "3",
                   "--policy", "greedy-threshold",
                   "--save-trace", str(path)])
        assert rc == 0
        return str(path)

    def test_grid_runs_and_summarizes(self, trace_json, capsys, tmp_path):
        out_path = tmp_path / "grid.json"
        rc = main(["sweep-preemption", trace_json,
                   "--factors", "1.2", "--penalties", "0,0.25",
                   "--processes", "0", "-o", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "preempt-density" in out
        assert "factor 1.2" in out  # the break-even summary line
        rows = json.load(open(out_path))
        # One baseline + 1 factor × 2 penalties.
        assert len(rows) == 3

    def test_dual_gated_variant_ignores_factors(self, trace_json, capsys):
        rc = main(["sweep-preemption", trace_json,
                   "--policy", "preempt-dual-gated",
                   "--factors", "1.5,2.0", "--penalties", "0.1",
                   "--processes", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "preempt-dual-gated" in out

    def test_bad_factors_friendly(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep-preemption", "x.json", "--factors", "fast"])
        assert "comma-separated numbers" in capsys.readouterr().err

    def test_missing_corpus_friendly(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="no pinned corpus"):
            main(["sweep-preemption", "--processes", "0"])
