"""Seeded workload generators for benchmarks, examples and tests."""

from .generators import (
    TREE_TOPOLOGIES,
    make_tree,
    random_line_problem,
    random_tree_problem,
)

__all__ = [
    "TREE_TOPOLOGIES",
    "make_tree",
    "random_line_problem",
    "random_tree_problem",
]
