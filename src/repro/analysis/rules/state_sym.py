"""State symmetry: ``export_state`` and ``restore_state`` must agree.

Checkpoint/resume integrity rests on a pair contract: whatever
``export_state`` writes, ``restore_state`` reads — and nothing else.
A key exported but never restored silently drops state on resume; a
key restored but never exported crashes (or worse, ``.get()``s a
default) on every real checkpoint.  The byte-identical-restart
property tests only cover the policies the corpus exercises, so the
cross-check runs statically on every class defining the pair.

The comparison is key-based: string keys of dict literals returned by
``export_state`` versus string keys subscripted / ``.get()``-ed off
``restore_state``'s state parameter.  Either side using dynamic
construction (``**splat``, computed keys, ``dict(...)``) opts out of
the comparison for that class — the rule only asserts what it can
prove.
"""

from __future__ import annotations

import ast

from ..base import Fixture, ParsedFile, Rule, const_str, register
from ..findings import Finding

__all__ = ["StateSymmetryRule"]


def _delegates(fn: ast.FunctionDef, method: str) -> bool:
    """True when ``fn`` calls ``super().<method>(...)``."""
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"):
            return True
    return False


def _export_keys(fn: ast.FunctionDef):
    """(keys, provable): string keys the export writes.

    Covers both shapes this codebase uses: a dict literal in the
    return expression, and ``state["key"] = ...`` assignments onto a
    local that is returned.
    """
    keys: set = set()
    provable = True
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is None:  # {**splat}
                    provable = False
                    continue
                text = const_str(k)
                if text is None:
                    provable = False
                else:
                    keys.add(text)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Subscript):
                    text = const_str(t.slice)
                    if text is None:
                        provable = False
                    else:
                        keys.add(text)
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Name)
              and node.func.id == "dict"):
            for kw in node.keywords:
                if kw.arg is None:
                    provable = False
                else:
                    keys.add(kw.arg)
    return keys, provable


def _restore_keys(fn: ast.FunctionDef):
    """(keys, provable): keys read off the state parameter."""
    args = fn.args.posonlyargs + fn.args.args
    params = [a.arg for a in args if a.arg != "self"]
    if not params:
        return set(), False
    state = params[0]
    keys: set = set()
    provable = True
    for node in ast.walk(fn):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == state):
            text = const_str(node.slice)
            if text is None:
                provable = False
            else:
                keys.add(text)
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "get"
              and isinstance(node.func.value, ast.Name)
              and node.func.value.id == state
              and node.args):
            text = const_str(node.args[0])
            if text is None:
                provable = False
            else:
                keys.add(text)
    return keys, provable


@register
class StateSymmetryRule(Rule):
    id = "STATE001"
    name = "export-restore-symmetry"
    rationale = (
        "Checkpoints are only as good as the restore that reads them: "
        "a class exporting a key its restore never reads silently "
        "drops state on resume, and a restore reading a key the export "
        "never writes fails on every real checkpoint.  export_state "
        "and restore_state must exist as a pair and agree on the key "
        "set, so a warm restart is byte-identical to the uninterrupted "
        "run."
    )
    scope = "file"
    default_path = "online/fixture.py"
    fixtures = [
        Fixture(
            bad=(
                "class Ledger:\n"
                "    def export_state(self):\n"
                "        return {'load': self.load, 'admitted': "
                "self.admitted}\n"
                "    def restore_state(self, state):\n"
                "        self.load = state['load']\n"
            ),
            good=(
                "class Ledger:\n"
                "    def export_state(self):\n"
                "        return {'load': self.load, 'admitted': "
                "self.admitted}\n"
                "    def restore_state(self, state):\n"
                "        self.load = state['load']\n"
                "        self.admitted = state['admitted']\n"
            ),
            note="'admitted' is exported but never restored: a resumed "
                 "ledger would silently forget its admissions",
        ),
        Fixture(
            bad=(
                "class Policy:\n"
                "    def export_state(self):\n"
                "        return {'peak': self.peak}\n"
            ),
            good=(
                "class Policy:\n"
                "    def export_state(self):\n"
                "        return {'peak': self.peak}\n"
                "    def restore_state(self, state):\n"
                "        self.peak = state['peak']\n"
            ),
            note="export without restore is a checkpoint nothing can read",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {n.name: n for n in node.body
                       if isinstance(n, ast.FunctionDef)}
            export = methods.get("export_state")
            restore = methods.get("restore_state")
            if export is None and restore is None:
                continue
            if export is None or restore is None:
                present, missing = (("export_state", "restore_state")
                                    if restore is None
                                    else ("restore_state", "export_state"))
                anchor = export or restore
                yield Finding(
                    path=str(parsed.path), line=anchor.lineno,
                    col=anchor.col_offset, rule=self.id,
                    message=(f"class {node.name} defines {present} without "
                             f"{missing}; checkpoint state must round-trip"),
                )
                continue
            exp_super = _delegates(export, "export_state")
            res_super = _delegates(restore, "restore_state")
            if exp_super != res_super:
                anchor = export if exp_super else restore
                one, other = (("export_state", "restore_state")
                              if exp_super else
                              ("restore_state", "export_state"))
                yield Finding(
                    path=str(parsed.path), line=anchor.lineno,
                    col=anchor.col_offset, rule=self.id,
                    message=(f"{node.name}.{one} delegates to super() but "
                             f"{other} does not; the base class's keys "
                             "would not round-trip"),
                )
                continue
            exported, exp_ok = _export_keys(export)
            restored, res_ok = _restore_keys(restore)
            if not (exp_ok and res_ok):
                continue  # dynamic construction: nothing provable
            for key in sorted(exported - restored):
                yield Finding(
                    path=str(parsed.path), line=restore.lineno,
                    col=restore.col_offset, rule=self.id,
                    message=(f"{node.name}.export_state writes {key!r} but "
                             "restore_state never reads it; resumed state "
                             "would silently drop it"),
                )
            for key in sorted(restored - exported):
                yield Finding(
                    path=str(parsed.path), line=restore.lineno,
                    col=restore.col_offset, rule=self.id,
                    message=(f"{node.name}.restore_state reads {key!r} but "
                             "export_state never writes it"),
                )
