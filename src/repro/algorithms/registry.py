"""Declarative solver registry: algorithm names → engine configurations.

The paper's algorithms differ only in *data* — which problem family they
accept, which schedule/raising rule the engine runs, which baseline they
reconstruct.  The registry makes that explicit: every solver registers a
:class:`SolverSpec` under a stable name (``tree-unit``, ``line-narrow``,
``ps-baseline``, ``sequential``, ...), and every consumer — the CLI, the
batch runner, the benchmarks — dispatches through :func:`solve` instead
of hard-coding constructors.

>>> from repro.algorithms import registry
>>> sol = registry.solve("tree-unit", problem, epsilon=0.1, seed=0)

Names are listed by :func:`names`; ``"auto"`` resolves to the paper's
algorithm for the problem family and height regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "SolverSpec",
    "register",
    "get",
    "names",
    "specs",
    "resolve",
    "solve",
]


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver.

    Attributes
    ----------
    name:
        Registry key (stable; used by CLI/runner/benchmarks).
    fn:
        ``fn(problem, **kwargs) -> Solution``.
    family:
        ``"tree"``, ``"line"``, or ``"any"`` — which problem type the
        solver accepts.
    description:
        One-line summary (shown in ``--help``).
    accepts:
        Keyword arguments the solver understands; :func:`solve` filters
        the caller's kwargs down to these, so heterogeneous sweeps can
        pass one parameter dict to every solver.
    """

    name: str
    fn: Callable
    family: str
    description: str
    accepts: tuple[str, ...] = ()

    def accepts_problem(self, problem) -> bool:
        """Whether this solver can run on the given problem."""
        from ..core.instance import TreeProblem

        if self.family == "any":
            return True
        is_tree = isinstance(problem, TreeProblem)
        return (self.family == "tree") == is_tree


_REGISTRY: dict[str, SolverSpec] = {}


def register(
    name: str,
    *,
    family: str,
    description: str,
    accepts: Iterable[str] = (),
):
    """Class-/function decorator registering a solver under ``name``."""
    if family not in ("tree", "line", "any"):
        raise ValueError(f"unknown family {family!r}")

    def deco(fn):
        if name in _REGISTRY:
            raise ValueError(f"solver {name!r} registered twice")
        _REGISTRY[name] = SolverSpec(
            name=name,
            fn=fn,
            family=family,
            description=description,
            accepts=tuple(accepts),
        )
        return fn

    return deco


def _ensure_loaded() -> None:
    """Import the solver modules so their ``@register`` decorators run."""
    from . import (  # noqa: F401
        exact,
        greedy,
        line_windows,
        panconesi_sozio,
        sequential_tree,
        tree_arbitrary,
        tree_unit,
    )


def get(name: str) -> SolverSpec:
    """Look up a solver spec; raises ``KeyError`` with the known names."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; known: {', '.join(names())}"
        ) from None


def names() -> list[str]:
    """All registered solver names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def specs() -> list[SolverSpec]:
    """All registered specs, sorted by name."""
    _ensure_loaded()
    return [_REGISTRY[n] for n in names()]


def resolve(name: str, problem) -> SolverSpec:
    """Resolve ``name`` (including ``"auto"``) against a problem.

    ``"auto"`` picks the paper's algorithm for the problem family and
    height regime.  Raises ``ValueError`` when the solver's family does
    not match the problem.
    """
    from ..core.instance import TreeProblem

    _ensure_loaded()
    if name == "auto":
        if isinstance(problem, TreeProblem):
            name = "tree-unit" if problem.unit_height else "tree-arbitrary"
        else:
            name = "line-unit" if problem.unit_height else "line-arbitrary"
    spec = get(name)
    if not spec.accepts_problem(problem):
        kind = "tree" if spec.family == "tree" else "line"
        raise ValueError(f"{spec.name} needs a {kind} problem")
    return spec


def solve(name: str, problem, **kwargs):
    """Run the named solver on ``problem``.

    Keyword arguments not in the solver's ``accepts`` list are silently
    dropped, so one parameter dict can drive a heterogeneous sweep.
    """
    spec = resolve(name, problem)
    kw = {k: v for k, v in kwargs.items() if k in spec.accepts}
    return spec.fn(problem, **kw)
