"""The capacitated scenario (abstract / IPDPS title: *non-uniform
bandwidths*).

The paper's body treats edges of uniform bandwidth 1 with per-demand
bandwidth requirements (*heights*) — Sections 6–7, fully implemented in
:mod:`repro.algorithms`.  The abstract additionally claims the algorithms
"can also handle the capacitated scenario, wherein the demands and edges
have bandwidth requirements and capacities, respectively", while footnote
1 restricts the treatment to *uniform* edge capacities (the general
varying-capacity case is the unsplittable flow problem, explicitly out of
scope).  This module supplies both pieces:

* :func:`normalize_uniform_capacity` — the reduction the abstract relies
  on: with every edge offering ``c`` units, dividing all demand heights
  by ``c`` yields an equivalent unit-capacity instance, so every theorem
  applies verbatim (heights ≤ c/2 become narrow, etc.).
  :func:`solve_tree_capacitated` / :func:`solve_line_capacitated` wrap
  the reduction around the Section 6/7 algorithms and lift the solution
  back.
* :func:`solve_optimal_capacitated` / :func:`lp_upper_bound_capacitated`
  — exact/LP solvers that accept genuinely *per-edge* capacities (the
  UFP generalization), used to sanity-check the reduction and to quantify
  how far the uniform-capacity algorithms are from varying-capacity
  optima.  No approximation guarantee is claimed there — the paper makes
  none.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Mapping

import numpy as np
from scipy import optimize

from .core.instance import LineProblem, TreeProblem
from .core.solution import Solution
from .lp.model import build_lp

__all__ = [
    "normalize_uniform_capacity",
    "solve_tree_capacitated",
    "solve_line_capacitated",
    "solve_optimal_capacitated",
    "lp_upper_bound_capacitated",
]


def normalize_uniform_capacity(problem, capacity: float):
    """Reduce a uniform-capacity instance to the unit-capacity model.

    Every edge offers ``capacity`` units; every demand keeps its height
    ``h`` but consumes ``h / capacity`` of the normalized edge.  Demands
    with ``h > capacity`` are infeasible and rejected.

    Returns a new problem of the same type with scaled heights.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    for a in problem.demands:
        if a.height > capacity + 1e-12:
            raise ValueError(
                f"demand {a.demand_id} height {a.height} exceeds the edge "
                f"capacity {capacity}"
            )
    demands = [
        dataclasses.replace(a, height=min(a.height / capacity, 1.0))
        for a in problem.demands
    ]
    if isinstance(problem, TreeProblem):
        return TreeProblem(n=problem.n, networks=problem.networks,
                           demands=demands, access=list(problem.access))
    if isinstance(problem, LineProblem):
        return LineProblem(n_slots=problem.n_slots, resources=problem.resources,
                           demands=demands, access=list(problem.access))
    raise TypeError(f"unsupported problem type {type(problem).__name__}")


def _lift(solution: Solution, problem) -> Solution:
    """Map a normalized solution's selections back to original heights."""
    by_key: dict[tuple, object] = {}
    for inst in problem.instances():
        if isinstance(problem, TreeProblem):
            by_key[(inst.demand_id, inst.network_id)] = inst
        else:
            by_key[(inst.demand_id, inst.network_id, inst.start, inst.end)] = inst
    lifted = []
    for inst in solution.selected:
        if isinstance(problem, TreeProblem):
            lifted.append(by_key[(inst.demand_id, inst.network_id)])
        else:
            lifted.append(
                by_key[(inst.demand_id, inst.network_id, inst.start, inst.end)]
            )
    return Solution(selected=lifted, stats=dict(solution.stats))


def solve_tree_capacitated(
    problem: TreeProblem, capacity: float, *, epsilon: float = 0.1,
    seed: int | None = 0, mis="luby",
) -> Solution:
    """Theorem 6.3 under uniform edge capacity ``c`` (the reduction).

    Normalizes heights by ``c``, runs the arbitrary-height algorithm, and
    lifts the selection back to the original instance.  The (80+ε) bound
    carries over verbatim.
    """
    from .algorithms.tree_arbitrary import solve_tree_arbitrary

    norm = normalize_uniform_capacity(problem, capacity)
    sol = solve_tree_arbitrary(norm, epsilon=epsilon, seed=seed, mis=mis)
    out = _lift(sol, problem)
    out.stats["capacity"] = capacity
    out.stats["algorithm"] = f"tree-capacitated(c={capacity:g})"
    return out


def solve_line_capacitated(
    problem: LineProblem, capacity: float, *, epsilon: float = 0.1,
    seed: int | None = 0, mis="luby",
) -> Solution:
    """Theorem 7.2 under uniform edge capacity ``c`` (the reduction)."""
    from .algorithms.line_windows import solve_line_arbitrary

    norm = normalize_uniform_capacity(problem, capacity)
    sol = solve_line_arbitrary(norm, epsilon=epsilon, seed=seed, mis=mis)
    out = _lift(sol, problem)
    out.stats["capacity"] = capacity
    out.stats["algorithm"] = f"line-capacitated(c={capacity:g})"
    return out


def _capacitated_lp(problem, capacities: Mapping[Hashable, float] | float):
    """The packing LP with per-edge capacities on the RHS."""
    lp = build_lp(problem)
    b = lp.b.copy()
    for row, label in enumerate(lp.row_labels):
        if label[0] == "edge":
            if isinstance(capacities, Mapping):
                cap = capacities.get(label[1], 1.0)
            else:
                cap = float(capacities)
            if cap <= 0:
                raise ValueError(f"capacity of edge {label[1]} must be positive")
            b[row] = cap
    return lp, b


def lp_upper_bound_capacitated(
    problem, capacities: Mapping[Hashable, float] | float
) -> float:
    """Fractional optimum with per-edge capacities (UFP relaxation).

    ``capacities`` maps global edge ids ``(network, edge)`` /
    ``(resource, slot)`` to their bandwidth (missing edges default to 1),
    or is a single uniform value.
    """
    lp, b = _capacitated_lp(problem, capacities)
    if lp.num_vars == 0:
        return 0.0
    res = optimize.linprog(c=-lp.profits, A_ub=lp.A, b_ub=b,
                           bounds=(0.0, 1.0), method="highs")
    if not res.success:  # pragma: no cover
        raise RuntimeError(f"capacitated LP failed: {res.message}")
    return float(-res.fun)


def solve_optimal_capacitated(
    problem, capacities: Mapping[Hashable, float] | float,
    *, time_limit: float | None = None,
) -> Solution:
    """Integral optimum with per-edge capacities via HiGHS MILP."""
    instances = problem.instances()
    lp, b = _capacitated_lp(problem, capacities)
    if lp.num_vars == 0:
        return Solution(selected=[], stats={"algorithm": "milp-cap",
                                            "optimal": True})
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    res = optimize.milp(
        c=-lp.profits,
        constraints=optimize.LinearConstraint(lp.A, -np.inf, b),  # type: ignore[arg-type]
        integrality=np.ones(lp.num_vars),
        bounds=optimize.Bounds(0.0, 1.0),
        options=options,
    )
    if res.x is None:  # pragma: no cover
        raise RuntimeError(f"capacitated MILP failed: {res.message}")
    chosen = [instances[j] for j in range(lp.num_vars) if res.x[j] > 1 - 1e-6]
    return Solution(
        selected=chosen,
        stats={
            "algorithm": "milp-cap",
            "optimal": bool(res.status == 0),
            "objective": float(-res.fun),
        },
    )
