"""Exact optima and relaxation bounds — the denominators of every measured
approximation ratio in the benchmark suite.

Three rungs, weakest precondition first:

* :func:`lp_upper_bound` — the fractional packing LP via HiGHS
  (:func:`scipy.optimize.linprog`).  Always available; measured ratios
  against it are *conservative* (true ratios can only be better).
* :func:`solve_optimal` — the integral optimum via HiGHS MILP
  (:func:`scipy.optimize.milp`).  Practical into the thousands of
  instances; the problem is NP-hard so worst cases exist.
* :func:`brute_force_optimal` — branch-and-bound over per-demand choices,
  for tiny instances; cross-checks the MILP in the test suite.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..core.solution import Solution
from ..lp.model import build_lp
from .registry import register

__all__ = ["lp_upper_bound", "solve_optimal", "brute_force_optimal"]

#: Feasibility tolerance when rounding MILP variable values to {0, 1}.
_BIN_TOL = 1e-6


def lp_upper_bound(problem) -> float:
    """Fractional optimum of the packing LP (≥ integral OPT)."""
    lp = build_lp(problem)
    if lp.num_vars == 0:
        return 0.0
    res = optimize.linprog(
        c=-lp.profits,
        A_ub=lp.A,
        b_ub=lp.b,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not res.success:  # pragma: no cover - HiGHS is reliable on packing LPs
        raise RuntimeError(f"LP relaxation failed: {res.message}")
    return float(-res.fun)


@register(
    "exact",
    family="any",
    description="integral optimum via MILP (HiGHS branch-and-cut)",
    accepts=("time_limit",),
)
def solve_optimal(problem, *, time_limit: float | None = None) -> Solution:
    """Integral optimum via MILP (HiGHS branch-and-cut).

    Returns a verified-feasible :class:`~repro.core.solution.Solution`;
    ``stats["optimal"]`` records whether HiGHS proved optimality (it may
    be ``False`` only when ``time_limit`` cut the search short — the
    incumbent is still feasible).
    """
    instances = problem.instances()
    lp = build_lp(problem)
    if lp.num_vars == 0:
        return Solution(selected=[], stats={"algorithm": "milp", "optimal": True})
    constraints = optimize.LinearConstraint(
        lp.A, -np.inf, lp.b  # type: ignore[arg-type]
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    res = optimize.milp(
        c=-lp.profits,
        constraints=constraints,
        integrality=np.ones(lp.num_vars),
        bounds=optimize.Bounds(0.0, 1.0),
        options=options,
    )
    if res.x is None:  # pragma: no cover - packing MILPs always have x=0
        raise RuntimeError(f"MILP failed: {res.message}")
    chosen = [instances[j] for j in range(lp.num_vars) if res.x[j] > 1.0 - _BIN_TOL]
    return Solution(
        selected=chosen,
        stats={
            "algorithm": "milp",
            "optimal": bool(res.status == 0),
            "objective": float(-res.fun),
            "mip_gap": float(getattr(res, "mip_gap", 0.0) or 0.0),
        },
    )


def brute_force_optimal(problem, *, max_instances: int = 26) -> Solution:
    """Branch-and-bound over per-demand choices (tiny instances only).

    Branches demand by demand (skip, or pick one of its instances),
    pruning with the remaining-profit bound.  Raises if the instance
    count exceeds ``max_instances`` — use :func:`solve_optimal` instead.
    """
    instances = problem.instances()
    if len(instances) > max_instances:
        raise ValueError(
            f"{len(instances)} instances exceed the brute-force cap "
            f"{max_instances}"
        )
    by_demand: dict[int, list] = {}
    for d in instances:
        by_demand.setdefault(d.demand_id, []).append(d)
    demand_ids = sorted(by_demand)
    # Remaining max profit from demand position i onward.
    suffix = [0.0] * (len(demand_ids) + 1)
    for i in range(len(demand_ids) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + max(d.profit for d in by_demand[demand_ids[i]])

    edges_of = {d.instance_id: problem.global_edges_of(d) for d in instances}
    best_profit = -1.0
    best: list = []
    load: dict = {}
    picked: list = []

    def dfs(i: int, profit: float) -> None:
        nonlocal best_profit, best
        if profit + suffix[i] <= best_profit + 1e-12:
            return
        if i == len(demand_ids):
            if profit > best_profit:
                best_profit = profit
                best = list(picked)
            return
        # Branch: take one of this demand's instances...
        for d in by_demand[demand_ids[i]]:
            edges = edges_of[d.instance_id]
            if all(load.get(e, 0.0) + d.height <= 1.0 + 1e-9 for e in edges):
                for e in edges:
                    load[e] = load.get(e, 0.0) + d.height
                picked.append(d)
                dfs(i + 1, profit + d.profit)
                picked.pop()
                for e in edges:
                    load[e] -= d.height
        # ... or skip it.
        dfs(i + 1, profit)

    dfs(0, 0.0)
    return Solution(
        selected=best,
        stats={"algorithm": "brute-force", "optimal": True, "objective": best_profit},
    )
