"""Certificate safety: float accumulation must be ``math.fsum``.

PR 7's bug class: a dual certificate summed with ``sum()`` (or a
``+=`` loop) depends on accumulation order, so two runs that intern
edges or merge shards in different orders report different bounds —
and the sharded/unsharded equivalence tests compare those bounds
exactly.  ``math.fsum`` is exactly rounded, hence order-independent:
the same multiset of floats always produces the same total.

The rule flags order-sensitive accumulation of *money-like* floats
(profit, price, dual, penalty, bound, certificate, cost...) in the
packages that produce or merge certificates.  NumPy array reductions
(``arr.sum()``) are exempt: pairwise summation over a fixed array
layout is deterministic for a given array.
"""

from __future__ import annotations

import ast
import re

from ..base import Fixture, ParsedFile, Rule, call_name, in_packages, register
from ..findings import Finding

__all__ = ["FsumRule"]

#: Identifiers marking a float stream as certificate/accounting data.
_MONEY = re.compile(
    r"profit|price|dual|penalt|bound|cert|realized|forfeit|withdraw|cost",
    re.IGNORECASE,
)

_SCOPED_PACKAGES = ("core", "online", "session", "sharding", "service")


def _mentions_money(node: ast.expr) -> bool:
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        elt = node.elt
        if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
            return False  # sum(1 for ...) counts; it never rounds
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _MONEY.search(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _MONEY.search(sub.attr):
            return True
    return False


def _target_name(node: ast.expr):
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class FsumRule(Rule):
    id = "CERT001"
    name = "fsum-certificate-accumulation"
    rationale = (
        "Dual certificates and profit accounting are compared exactly "
        "across shard counts, transports and resume boundaries, so "
        "their float totals must not depend on accumulation order.  "
        "Plain sum() and += loops round at every step; math.fsum is "
        "exactly rounded, so any ordering of the same values gives the "
        "same total.  Collect the terms and fsum them."
    )
    scope = "file"
    default_path = "online/fixture.py"
    fixtures = [
        Fixture(
            bad=(
                "def merged_bound(shard_certs):\n"
                "    return sum(shard_certs)\n"
            ),
            good=(
                "import math\n"
                "def merged_bound(shard_certs):\n"
                "    return math.fsum(shard_certs)\n"
            ),
            note="per-shard dual bounds merge into one global bound; "
                 "fsum makes the merge order irrelevant",
        ),
        Fixture(
            bad=(
                "def victim_cost(victims, profits):\n"
                "    cost = 0.0\n"
                "    for v in victims:\n"
                "        cost += profits[v]\n"
                "    return cost\n"
            ),
            good=(
                "import math\n"
                "def victim_cost(victims, profits):\n"
                "    return math.fsum(profits[v] for v in victims)\n"
            ),
            note="a += loop is sum() in disguise: same per-step rounding",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        if not in_packages(parsed.path, _SCOPED_PACKAGES):
            return
        loops = [n for n in ast.walk(parsed.tree)
                 if isinstance(n, (ast.For, ast.While))]
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Call) and call_name(node) == "sum":
                if node.args and _mentions_money(node.args[0]):
                    yield Finding(
                        path=str(parsed.path), line=node.lineno,
                        col=node.col_offset, rule=self.id,
                        message=("sum() over certificate/accounting floats "
                                 "is order-sensitive; use math.fsum"),
                    )
        seen: set = set()
        for loop in loops:
            for node in ast.walk(loop):
                if (isinstance(node, ast.AugAssign)
                        and isinstance(node.op, ast.Add)
                        and id(node) not in seen):
                    seen.add(id(node))
                    name = _target_name(node.target)
                    if (name is not None and _MONEY.search(name)
                            and not isinstance(node.value, ast.Constant)):
                        yield Finding(
                            path=str(parsed.path), line=node.lineno,
                            col=node.col_offset, rule=self.id,
                            message=(f"'{name} +=' accumulates "
                                     "certificate/accounting floats in "
                                     "loop order; collect the terms and "
                                     "math.fsum them"),
                        )
