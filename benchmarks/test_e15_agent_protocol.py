"""E15 (Section 5, "Distributed Implementation"): the agent-level protocol.

Extra experiment beyond the paper's claims: run the message-passing
protocol for the unit-height tree and line algorithms, confirm it
reproduces the engine bit-for-bit (same deterministic MIS), and measure
real rounds/messages against the engine's round ledger and the fixed
worst-case schedule of Section 5.
"""

from __future__ import annotations

from repro import random_line_problem, random_tree_problem, solve_line_unit, solve_tree_unit
from repro.algorithms.schedule import scheduled_rounds
from repro.distributed.runtime import LineUnitRuntime, TreeUnitRuntime

from common import emit

EPS = 0.15


def run_experiment():
    rows = []
    checks = []
    for kind, sizes in [("tree", [(16, 10, 2), (24, 16, 3), (32, 24, 2)]),
                        ("line", [(24, 10, 2), (30, 14, 2)])]:
        for case in sizes:
            if kind == "tree":
                n, m, r = case
                p = random_tree_problem(n=n, m=m, r=r, seed=n + m)
                rt = TreeUnitRuntime(p, epsilon=EPS)
                eng = solve_tree_unit(p, epsilon=EPS, mis="priority")
            else:
                n, m, r = case
                p = random_line_problem(n_slots=n, m=m, r=r, seed=n + m,
                                        max_len=n // 4)
                rt = LineUnitRuntime(p, epsilon=EPS)
                eng = solve_line_unit(p, epsilon=EPS, mis="priority")
            sol = rt.run()
            same = sorted(d.demand_id for d in sol.selected) == sorted(
                d.demand_id for d in eng.selected
            ) and abs(sol.profit - eng.profit) < 1e-9
            budget = scheduled_rounds(p, EPS)
            checks.append((same, sol.stats["rounds"], budget, sol.profit,
                           eng.profit))
            rows.append([
                f"{kind} n={n} m={m} r={r}",
                "yes" if same else "NO",
                sol.stats["rounds"],
                eng.stats["total_rounds"],
                budget,
                sol.stats["messages"],
            ])
    emit(
        "E15",
        "Agent-level protocol vs engine ledger vs fixed schedule",
        ["workload", "bit-identical", "agent rounds", "engine rounds",
         "schedule budget", "messages"],
        rows,
        notes=(
            "The agent protocol (real processors, neighbour-only O(M) "
            "messages) must match the engine exactly and stay within the "
            "fixed worst-case schedule all processors can compute locally."
        ),
    )
    return checks


def test_agent_protocol(benchmark):
    checks = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for same, rounds, budget, p_agent, p_eng in checks:
        assert same, "agent protocol diverged from the engine"
        assert rounds <= budget
