"""Tests for the adversarial workload constructions and the behaviours
they are designed to provoke."""

from __future__ import annotations

import math

import pytest

from repro import (
    balancing_decomposition,
    ideal_decomposition,
    solve_greedy,
    solve_optimal,
    solve_sequential_tree,
    solve_tree_unit,
)
from repro.workloads.adversarial import (
    caterpillar_killer,
    long_vs_short,
    profit_ladder,
    sibling_stress,
    star_crossing,
)


class TestProfitLadder:
    def test_all_conflict(self):
        p = profit_ladder(6)
        insts = p.instances()
        shared = set(insts[0].path_edges)
        for d in insts[1:]:
            assert set(d.path_edges) == shared

    def test_stage_walks_the_chain(self):
        p = profit_ladder(12, base=16.0)
        sol = solve_tree_unit(p, epsilon=0.2, seed=0, mis="greedy")
        pmin, pmax = p.profit_range()
        bound = 1 + math.log2(pmax / pmin)
        assert sol.stats["max_steps_in_a_stage"] <= bound
        assert sol.stats["max_steps_in_a_stage"] >= 11

    def test_opt_takes_the_top_rung(self):
        p = profit_ladder(5, base=4.0)
        opt = solve_optimal(p)
        assert opt.size == 1
        assert opt.profit == pytest.approx(4.0**4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            profit_ladder(0)


class TestLongVsShort:
    def test_greedy_profit_gap(self):
        p = long_vs_short(10)
        greedy = solve_greedy(p, order="profit")
        opt = solve_optimal(p)
        # Profit-greedy grabs the long demand (1.5); OPT takes the 10
        # short ones.
        assert greedy.profit == pytest.approx(1.5)
        assert opt.profit == pytest.approx(10.0)

    def test_primal_dual_recovers(self):
        p = long_vs_short(10)
        sol = solve_tree_unit(p, epsilon=0.1, seed=0)
        # Within its guarantee — and far better than profit-greedy here.
        assert sol.profit >= 10.0 / (7 / 0.9)
        assert sol.profit > 1.5

    def test_sequential_recovers_fully(self):
        p = long_vs_short(10)
        sol = solve_sequential_tree(p)
        assert sol.profit >= 10.0 / 2  # 2-approx, single tree


class TestStarCrossing:
    def test_everything_schedulable(self):
        p = star_crossing(8)
        opt = solve_optimal(p)
        assert opt.size == 8
        sol = solve_tree_unit(p, epsilon=0.2, seed=0)
        # Edge-disjoint at the hub: no demand blocks another.
        assert sol.size == 8

    def test_no_conflicts(self):
        from repro import ConflictIndex

        p = star_crossing(5)
        insts = p.instances()
        ci = ConflictIndex(insts, [p.global_edges_of(d) for d in insts])
        for a in range(5):
            for b in range(a + 1, 5):
                assert not ci.conflicting(a, b)


class TestSiblingStress:
    def test_one_instance_per_demand(self):
        p = sibling_stress(m=10, r=4, seed=1)
        sol = solve_tree_unit(p, epsilon=0.2, seed=1)
        ids = [d.demand_id for d in sol.selected]
        assert len(ids) == len(set(ids))

    def test_within_bound(self):
        p = sibling_stress(m=8, r=3, seed=2)
        sol = solve_tree_unit(p, epsilon=0.1, seed=2)
        opt = solve_optimal(p)
        assert sol.profit >= opt.profit / (7 / 0.9) - 1e-9


class TestCaterpillarKiller:
    def test_balancing_pivot_exceeds_ideal(self):
        t = caterpillar_killer(31, seed=1)
        assert balancing_decomposition(t).pivot_size > 2
        assert ideal_decomposition(t).pivot_size <= 2
