"""Online admission-control throughput benchmark.

Replays seeded Poisson traces of 10k and 100k events (2k in smoke mode)
through each admission policy — non-preemptive and preemptive alike —
and records events/second, per-event latency percentiles, acceptance,
realized profit, and for the preemptive policies eviction counts,
forfeited profit and penalty-adjusted profit.  Results are written as
JSON (``BENCH_online.json``) so later changes can track the online hot
path the way ``BENCH_hotpath.json`` tracks the offline one.

The batch-resolve policy runs with the ``greedy`` registry solver at a
1024-arrival cadence — the exact solver is an offline benchmark, not a
throughput policy.  Verification of the final admitted set stays ON:
feasibility checking is part of the work a production admission layer
cannot skip.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_online.py [--smoke] [-o OUT]
"""

from __future__ import annotations

import argparse
import json
import sys

POLICIES = [
    ("greedy-threshold", {}),
    ("dual-gated", {}),
    ("batch-resolve", {"solver": "greedy", "resolve_every": 1024}),
    ("preempt-density", {"factor": 1.2}),
    ("preempt-dual-gated", {"penalty": 0.1}),
]


def run_online_bench(smoke: bool = False, out_path: str | None = None) -> dict:
    """Run every policy over every trace size; return the report dict."""
    from repro.online import generate_trace, make_policy, replay

    sizes = [2_000] if smoke else [10_000, 100_000]
    report: dict = {"smoke": smoke, "cases": {}}
    for events in sizes:
        trace = generate_trace(
            "line", events=events, process="poisson", seed=0,
            departure_prob=0.35,
            # Scale the timeline with the stream so the benchmark keeps
            # exercising admissions, not just saturated-reject probes.
            workload={"n_slots": max(512, events // 8)},
        )
        case: dict = {
            "events": len(trace.events),
            "arrivals": trace.num_arrivals,
            "departures": trace.num_departures,
            "instances": len(trace.problem.instances()),
            "policies": {},
        }
        for name, kwargs in POLICIES:
            result = replay(trace, make_policy(name, **kwargs))
            m = result.metrics
            case["policies"][name] = {
                "events_per_sec": m.events_per_sec,
                "elapsed_s": m.elapsed_s,
                "accepted": m.accepted,
                "acceptance_ratio": m.acceptance_ratio,
                "realized_profit": m.realized_profit,
                "evictions": m.evictions,
                "forfeited_profit": m.forfeited_profit,
                "penalty_paid": m.penalty_paid,
                "penalty_adjusted_profit": m.penalty_adjusted_profit,
                "latency_p50_us": m.latency_p50_us,
                "latency_p99_us": m.latency_p99_us,
            }
        report["cases"][str(events)] = case
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
    return report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="one small trace, seconds instead of minutes")
    ap.add_argument("-o", "--output", default="BENCH_online.json")
    args = ap.parse_args(argv)
    report = run_online_bench(smoke=args.smoke, out_path=args.output)
    for events, case in report["cases"].items():
        print(f"{events} events ({case['arrivals']} arrivals, "
              f"{case['instances']} instances):")
        for name, rec in case["policies"].items():
            line = (f"  {name:<19} {rec['events_per_sec']:>9.0f} ev/s  "
                    f"acc {100 * rec['acceptance_ratio']:.1f}%  "
                    f"profit {rec['realized_profit']:.1f}  ")
            if rec.get("evictions"):
                line += (f"evict {rec['evictions']}  "
                         f"adj {rec['penalty_adjusted_profit']:.1f}  ")
            line += f"p99 {rec['latency_p99_us']:.0f}µs"
            print(line)
    print(f"written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
