"""E4 (Lemmas 4.2/4.3): layered decompositions from the ideal tree
decomposition have ∆ ≤ 6 and length O(log n); the line construction has
∆ = 3.  Regenerated over random workloads, with the interference property
re-verified by brute force on the smaller sizes.
"""

from __future__ import annotations

import math

from repro import (
    ideal_decomposition,
    line_layers,
    random_line_problem,
    random_tree_problem,
    tree_layers,
)
from repro.decomposition.validate import check_layered_decomposition

from common import emit


def run_experiment():
    rows = []
    shape = {"tree_delta": [], "tree_len": [], "line_delta": []}
    for n in [16, 64, 256, 1024]:
        p = random_tree_problem(n=n, m=2 * n, r=1, seed=n)
        td = ideal_decomposition(p.networks[0])
        ld = tree_layers(td, p.instances())
        if n <= 64:
            check_layered_decomposition(
                ld, {d.instance_id: frozenset(d.path_edges) for d in p.instances()}
            )
        rows.append(["tree", n, 2 * n, ld.delta, ld.length,
                     2 * math.ceil(math.log2(n)) + 1])
        shape["tree_delta"].append(ld.delta)
        shape["tree_len"].append((n, ld.length))
    for n_slots in [32, 128, 512]:
        p = random_line_problem(n_slots=n_slots, m=n_slots, r=1, seed=n_slots,
                                max_len=n_slots // 2)
        ld = line_layers(p.instances())
        lmin = min(d.length for d in p.instances())
        lmax = max(d.length for d in p.instances())
        rows.append(["line", n_slots, len(p.instances()), ld.delta, ld.length,
                     math.ceil(math.log2(lmax / lmin)) + 1])
        shape["line_delta"].append(ld.delta)
    emit(
        "E04",
        "Layered decompositions: ∆ and length (Lemmas 4.2/4.3, §7)",
        ["kind", "n", "instances", "∆ measured", "length", "length bound"],
        rows,
        notes="Paper: tree ∆ ≤ 6 with length O(log n); line ∆ = 3.",
    )
    return shape


def test_lemma43_layered(benchmark):
    shape = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert all(d <= 6 for d in shape["tree_delta"])
    assert all(d <= 3 for d in shape["line_delta"])
    for n, length in shape["tree_len"]:
        assert length <= 2 * math.ceil(math.log2(n)) + 1
