"""Ideal tree decomposition (Section 4.3): depth ``O(log n)``, pivot ``θ = 2``.

``BuildIdealTD`` recurses on components with **at most two outside
neighbours**, guaranteeing every ``C(z)`` of the output keeps at most two
outside neighbours — pivot size 2 — while sizes halve per level, so depth
is at most ``2⌈log n⌉ (+1 for the global root)``.

Per recursion level the procedure places one *balancer* ``z`` (a centroid
of the component) and, in the involved case, one *junction* ``j``:

* **Case 1** (one outside neighbour ``u1``): split at ``z``; every piece
  sees at most ``{u1, z}``; ``z`` becomes the local root.
* **Case 2a** (two outside neighbours whose attachment vertices ``u1'``,
  ``u2'`` land in different pieces, or coincide with ``z``): same shape —
  each piece sees at most two of ``{u1, u2, z}``.
* **Case 2b** (``u1'`` and ``u2'`` in the *same* piece ``C1``): the piece
  would see three neighbours, so first split ``C1`` at the junction
  ``j = median_T(u1, u2, z)``.  ``j`` roots the local tree; ``z`` hangs
  under ``j``; the ``z``-adjacent fragment of ``C1`` and the other pieces
  of ``C \\ z`` hang under ``z``.  Every fragment again sees ≤ 2
  neighbours.

The paper's illustration (Figures 4 and 5) corresponds one-to-one with the
branches below.
"""

from __future__ import annotations

from ..network.tree import TreeNetwork
from .base import TreeDecomposition

__all__ = ["ideal_decomposition"]


def ideal_decomposition(tree: TreeNetwork) -> TreeDecomposition:
    """Build the ideal tree decomposition of ``tree`` (Lemma 4.1).

    Returns a :class:`~repro.decomposition.base.TreeDecomposition` with
    pivot size at most 2 and depth at most ``2⌈log₂ n⌉ + 1``.
    """
    n = tree.n
    parent = [-1] * n
    if n == 1:
        return TreeDecomposition(tree, parent, name="ideal")

    # Global root: a balancer of the whole vertex set.  Every piece of
    # V \ g has exactly one outside neighbour, {g} — the precondition of
    # BuildIdealTD.
    g = tree.find_balancer(set(range(n)))
    for piece in tree.split_component(g, set(range(n))):
        root_of_piece = _build(tree, piece, _neighbors_capped(tree, piece), parent)
        parent[root_of_piece] = g
    return TreeDecomposition(tree, parent, name="ideal")


def _neighbors_capped(tree: TreeNetwork, comp: set[int]) -> tuple[int, ...]:
    """Outside neighbourhood ``Γ[comp]``, asserting the ≤2 precondition."""
    nbrs = tuple(sorted(tree.component_neighbors(comp)))
    if len(nbrs) > 2:
        raise AssertionError(
            f"BuildIdealTD precondition violated: component of size "
            f"{len(comp)} has {len(nbrs)} neighbours {nbrs}"
        )
    return nbrs


def _attach_vertex(tree: TreeNetwork, outside: int, comp: set[int]) -> int:
    """The unique vertex of ``comp`` adjacent to the outside vertex.

    Uniqueness: two attachment vertices would close a cycle through the
    connected component.
    """
    hits = [x for x in tree.adj[outside] if x in comp]
    if len(hits) != 1:
        raise AssertionError(
            f"outside vertex {outside} touches component at {hits}; trees "
            "allow exactly one attachment"
        )
    return hits[0]


def _build(
    tree: TreeNetwork,
    comp: set[int],
    nbrs: tuple[int, ...],
    parent: list[int],
) -> int:
    """BuildIdealTD on ``comp`` (≤2 outside neighbours); returns its H-root.

    Writes parent pointers for every vertex of ``comp`` except the
    returned root (whose parent the caller assigns).
    """
    if len(comp) == 1:
        return next(iter(comp))

    z = tree.find_balancer(comp)
    pieces = tree.split_component(z, comp)

    # Attachment vertices of the outside neighbours inside comp.
    attach = [_attach_vertex(tree, u, comp) for u in nbrs]

    if len(nbrs) == 2 and attach[0] != z and attach[1] != z:
        piece_of = {}
        for idx, piece in enumerate(pieces):
            if attach[0] in piece:
                piece_of[0] = idx
            if attach[1] in piece:
                piece_of[1] = idx
        if piece_of[0] == piece_of[1]:
            return _build_case_2b(
                tree, comp, nbrs, parent, z, pieces, pieces[piece_of[0]]
            )

    # Cases 1 / 2a / degenerate 2: z roots the local tree; every piece
    # sees at most two of {z} ∪ nbrs.
    for piece in pieces:
        sub_nbrs = _neighbors_capped(tree, piece)
        r = _build(tree, piece, sub_nbrs, parent)
        parent[r] = z
    return z


def _build_case_2b(
    tree: TreeNetwork,
    comp: set[int],
    nbrs: tuple[int, ...],
    parent: list[int],
    z: int,
    pieces: list[set[int]],
    c1: set[int],
) -> int:
    """Case 2b: both attachment vertices live in the same piece ``c1``.

    The junction ``j = median_T(u1, u2, z)`` lies on the ``u1–u2`` path
    inside ``c1``.  Local shape (Figure 5):

    * ``j`` is the root;
    * fragments of ``c1 \\ j`` *not* adjacent to ``z`` hang under ``j``;
    * ``z`` hangs under ``j``;
    * the fragment of ``c1 \\ j`` adjacent to ``z`` (if any) and the other
      pieces of ``comp \\ z`` hang under ``z``.
    """
    u1, u2 = nbrs
    j = tree.median(u1, u2, z)
    if j not in c1:
        raise AssertionError(
            f"junction {j} escaped its component; median of ({u1},{u2},{z})"
        )

    # z's unique T-neighbour inside c1 tells us which fragment of c1 \ j
    # stays adjacent to z after the split (none if that neighbour is j).
    z_attach = _attach_vertex(tree, z, c1)

    fragments = tree.split_component(j, c1)
    for frag in fragments:
        sub_nbrs = _neighbors_capped(tree, frag)
        r = _build(tree, frag, sub_nbrs, parent)
        parent[r] = z if (z_attach != j and z_attach in frag) else j
    parent[z] = j
    for piece in pieces:
        if piece is c1:
            continue
        sub_nbrs = _neighbors_capped(tree, piece)
        r = _build(tree, piece, sub_nbrs, parent)
        parent[r] = z
    return j
