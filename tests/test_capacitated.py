"""Tests for the capacitated scenario (uniform-capacity reduction and
per-edge-capacity exact solvers)."""

from __future__ import annotations

import pytest

from repro import random_line_problem, random_tree_problem, solve_optimal
from repro.capacitated import (
    lp_upper_bound_capacitated,
    normalize_uniform_capacity,
    solve_line_capacitated,
    solve_optimal_capacitated,
    solve_tree_capacitated,
)
from repro.core.solution import verify_line_solution


class TestNormalization:
    def test_heights_scaled(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=0, height_regime="mixed")
        q = normalize_uniform_capacity(p, 2.0)
        for a, b in zip(p.demands, q.demands):
            assert b.height == pytest.approx(a.height / 2.0)

    def test_unit_problem_capacity2_all_narrow(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=1)  # unit heights
        q = normalize_uniform_capacity(p, 2.0)
        assert all(a.narrow for a in q.demands)

    def test_rejects_oversized_demand(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=2)  # heights 1.0
        with pytest.raises(ValueError, match="exceeds"):
            normalize_uniform_capacity(p, 0.5)

    def test_rejects_bad_capacity(self):
        p = random_tree_problem(n=12, m=4, r=1, seed=3)
        with pytest.raises(ValueError, match="positive"):
            normalize_uniform_capacity(p, 0.0)


class TestCapacitatedSolvers:
    def test_capacity_two_doubles_packing(self):
        """Unit demands on capacity-2 edges: exactly two may share an
        edge — the capacitated optimum dominates the unit one."""
        p = random_tree_problem(n=14, m=12, r=1, seed=4)
        unit_opt = solve_optimal(p)
        cap_opt = solve_optimal_capacitated(p, 2.0)
        assert cap_opt.profit >= unit_opt.profit - 1e-9

    def test_reduction_matches_direct_milp(self):
        """OPT of the normalized unit-capacity instance equals the
        capacitated MILP's optimum — the reduction is lossless."""
        for seed in range(3):
            p = random_tree_problem(n=12, m=8, r=1, seed=seed,
                                    height_regime="mixed")
            norm = normalize_uniform_capacity(p, 2.0)
            direct = solve_optimal_capacitated(p, 2.0)
            reduced = solve_optimal(norm)
            assert direct.profit == pytest.approx(reduced.profit, rel=1e-6)

    def test_tree_capacitated_within_bound(self):
        p = random_tree_problem(n=16, m=12, r=2, seed=5, height_regime="mixed")
        sol = solve_tree_capacitated(p, 2.0, epsilon=0.1, seed=5)
        opt = solve_optimal_capacitated(p, 2.0)
        assert sol.profit >= opt.profit / (80 / 0.9) - 1e-9
        # Lifted selections keep original heights and satisfy capacity 2.
        load: dict = {}
        for inst in sol.selected:
            for ge in p.global_edges_of(inst):
                load[ge] = load.get(ge, 0.0) + inst.height
        assert all(v <= 2.0 + 1e-9 for v in load.values())

    def test_line_capacitated_feasible(self):
        p = random_line_problem(n_slots=24, m=12, r=1, seed=6,
                                height_regime="mixed", hmin=0.1, max_len=6)
        sol = solve_line_capacitated(p, 2.0, epsilon=0.2, seed=6)
        load: dict = {}
        for inst in sol.selected:
            for t in range(inst.start, inst.end + 1):
                key = (inst.network_id, t)
                load[key] = load.get(key, 0.0) + inst.height
        assert all(v <= 2.0 + 1e-9 for v in load.values())
        ids = [d.demand_id for d in sol.selected]
        assert len(ids) == len(set(ids))

    def test_per_edge_capacities(self):
        """A bottleneck edge with capacity 0 kills every route through it."""
        p = random_tree_problem(n=10, m=8, r=1, seed=7)
        # Choke the busiest edge.
        act = p.edge_activity()
        busiest = max(act, key=lambda ge: len(act[ge]))
        caps = {busiest: 1e-9}
        opt = solve_optimal_capacitated(p, caps)
        for inst in opt.selected:
            assert busiest not in p.global_edges_of(inst)

    def test_lp_dominates_milp_capacitated(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=8, height_regime="narrow")
        caps = 1.5
        lp = lp_upper_bound_capacitated(p, caps)
        milp = solve_optimal_capacitated(p, caps)
        assert lp >= milp.profit - 1e-6

    def test_bad_edge_capacity_rejected(self):
        p = random_tree_problem(n=8, m=4, r=1, seed=9)
        ge = next(iter(p.edge_activity()))
        with pytest.raises(ValueError, match="positive"):
            lp_upper_bound_capacitated(p, {ge: -1.0})
