"""Tests for the agent-level protocol runtime (Section 5's distributed
implementation): feasibility, engine equivalence, message-model fidelity."""

from __future__ import annotations

import pytest

from repro import (
    compile_tree,
    random_tree_problem,
    solve_optimal,
    solve_tree_unit,
    verify_tree_solution,
)
from repro.distributed.runtime import TreeUnitRuntime

from tests.helpers import assert_bound


def _keyset(sol):
    return sorted((d.demand_id, d.network_id) for d in sol.selected)


class TestRuntimeEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_engine_greedy_mis(self, seed):
        """The agent protocol reproduces the engine bit-for-bit when both
        use the priority (lex-first) MIS."""
        p = random_tree_problem(n=14, m=9, r=2, seed=seed)
        inp = compile_tree(p)
        rt_sol = TreeUnitRuntime(p, epsilon=0.2, delta=inp.delta).run()
        eng_sol = solve_tree_unit(p, epsilon=0.2, mis="greedy")
        assert _keyset(rt_sol) == _keyset(eng_sol)
        assert rt_sol.profit == pytest.approx(eng_sol.profit)

    def test_matches_with_restricted_access(self):
        p = random_tree_problem(n=12, m=8, r=3, seed=77, access_prob=0.6)
        inp = compile_tree(p)
        rt_sol = TreeUnitRuntime(p, epsilon=0.2, delta=inp.delta).run()
        eng_sol = solve_tree_unit(p, epsilon=0.2, mis="greedy")
        assert _keyset(rt_sol) == _keyset(eng_sol)


class TestRuntimeProperties:
    def test_feasible_and_within_bound(self):
        p = random_tree_problem(n=16, m=10, r=2, seed=5)
        sol = TreeUnitRuntime(p, epsilon=0.1).run()
        verify_tree_solution(p, sol, unit_height=True)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 7 / 0.9)

    def test_message_and_round_accounting(self):
        p = random_tree_problem(n=12, m=8, r=2, seed=6)
        sol = TreeUnitRuntime(p, epsilon=0.2).run()
        assert sol.stats["rounds"] > 0
        assert sol.stats["messages"] > 0
        assert sol.stats["steps"] > 0

    def test_single_processor(self):
        p = random_tree_problem(n=8, m=1, r=1, seed=7)
        sol = TreeUnitRuntime(p, epsilon=0.2).run()
        assert sol.size == 1

    def test_disconnected_processors(self):
        """Processors with disjoint access sets never talk but still
        produce a globally feasible schedule."""
        p = random_tree_problem(n=10, m=4, r=2, seed=8,
                                access_prob=0.0)  # forces singleton access
        sol = TreeUnitRuntime(p, epsilon=0.2).run()
        verify_tree_solution(p, sol, unit_height=True)


class TestLineRuntime:
    """The generic protocol runtime applied to line networks (Thm 7.1)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_engine_greedy_mis(self, seed):
        from repro import compile_line, random_line_problem, solve_line_unit
        from repro.distributed.runtime import LineUnitRuntime

        p = random_line_problem(n_slots=24, m=10, r=2, seed=seed, max_len=6)
        rt_sol = LineUnitRuntime(p, epsilon=0.2).run()
        eng_sol = solve_line_unit(p, epsilon=0.2, mis="greedy")
        assert sorted(
            (d.demand_id, d.network_id, d.start, d.end) for d in rt_sol.selected
        ) == sorted(
            (d.demand_id, d.network_id, d.start, d.end) for d in eng_sol.selected
        )

    def test_feasible_with_windows(self):
        from repro import random_line_problem, verify_line_solution
        from repro.distributed.runtime import LineUnitRuntime

        p = random_line_problem(n_slots=30, m=12, r=2, seed=9,
                                window_slack=1.5, max_len=6)
        sol = LineUnitRuntime(p, epsilon=0.15).run()
        verify_line_solution(p, sol, unit_height=True)

    def test_within_theorem71_bound(self):
        from repro import random_line_problem, solve_optimal
        from repro.distributed.runtime import LineUnitRuntime

        p = random_line_problem(n_slots=24, m=12, r=1, seed=10, max_len=6)
        sol = LineUnitRuntime(p, epsilon=0.1).run()
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 4 / 0.9)


class TestNarrowRuntime:
    """The agent protocol under the Section 6.1 narrow rule."""

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_engine(self, seed):
        from repro import EngineConfig, TwoPhaseEngine, compile_tree, random_tree_problem
        from repro.distributed.runtime import TreeNarrowRuntime

        p = random_tree_problem(n=14, m=10, r=2, seed=seed,
                                height_regime="narrow", hmin=0.15)
        hmin = min(a.height for a in p.demands)
        rt_sol = TreeNarrowRuntime(p, epsilon=0.2, hmin=hmin).run()

        inp = compile_tree(p, instance_filter=lambda d: d.narrow)
        cfg = EngineConfig(rule="narrow", epsilon=0.2, hmin=hmin,
                           mis="greedy", capacity_phase2=True)
        selected, _ = TwoPhaseEngine(inp, cfg).run()
        assert sorted((d.demand_id, d.network_id) for d in rt_sol.selected) \
            == sorted((d.demand_id, d.network_id) for d in selected)

    def test_feasible_capacity_packing(self):
        from repro import random_tree_problem, verify_tree_solution
        from repro.distributed.runtime import TreeNarrowRuntime

        p = random_tree_problem(n=16, m=14, r=1, seed=9,
                                height_regime="narrow", hmin=0.1)
        sol = TreeNarrowRuntime(p, epsilon=0.2).run()
        verify_tree_solution(p, sol, unit_height=False)

    def test_within_lemma62_bound(self):
        from repro import random_tree_problem, solve_optimal
        from repro.distributed.runtime import TreeNarrowRuntime

        p = random_tree_problem(n=14, m=10, r=1, seed=10,
                                height_regime="narrow", hmin=0.2)
        sol = TreeNarrowRuntime(p, epsilon=0.1).run()
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 73 / 0.9)
