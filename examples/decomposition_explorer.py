#!/usr/bin/env python
"""Explore the three tree decompositions of Section 4 on any topology.

Builds the root-fixing, balancing, and ideal decompositions of a chosen
tree, validates them from first principles, prints the depth/pivot
trade-off table, and draws the ideal decomposition's levels.

Run:  python examples/decomposition_explorer.py [topology] [n]
      (topology ∈ path|star|caterpillar|binary|random|broom|spider)
"""

import sys

from repro import (
    balancing_decomposition,
    ideal_decomposition,
    make_tree,
    root_fixing_decomposition,
    tree_layers,
)
from repro.decomposition.validate import check_tree_decomposition
from repro.workloads import random_tree_problem


def main() -> None:
    topology = sys.argv[1] if len(sys.argv) > 1 else "caterpillar"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    tree = make_tree(n, topology, seed=1)
    print(f"{topology} tree on {n} vertices\n")

    print(f"{'construction':<14}{'depth':>7}{'pivot θ':>9}{'layer ∆':>9}")
    print("-" * 39)
    problem = random_tree_problem(n=n, m=3 * n, r=1, seed=1, topology=topology)
    decomps = {}
    for name, builder in [
        ("root-fixing", root_fixing_decomposition),
        ("balancing", balancing_decomposition),
        ("ideal", ideal_decomposition),
    ]:
        td = builder(tree)
        check_tree_decomposition(td)  # raises if the §4.1 properties fail
        ld = tree_layers(td, [d for d in problem.instances()])
        decomps[name] = td
        print(f"{name:<14}{td.max_depth:>7}{td.pivot_size:>9}{ld.delta:>9}")

    ideal = decomps["ideal"]
    print("\nideal decomposition levels (vertex: pivot set χ):")
    for depth, level in enumerate(ideal.levels(), start=1):
        entries = ", ".join(
            f"{v}:{{{','.join(map(str, ideal.chi(v)))}}}" for v in sorted(level)
        )
        print(f"  depth {depth}: {entries}")

    # Show a capture in action: the longest demand path in the workload.
    longest = max(problem.instances(), key=lambda d: len(d.path_edges))
    z = ideal.capture(longest.u, longest.v)
    print(f"\nlongest demand ⟨{longest.u},{longest.v}⟩ "
          f"({len(longest.path_edges)} edges) is captured at node {z} "
          f"(depth {ideal.depth[z]}, χ = {ideal.chi(z)})")


if __name__ == "__main__":
    main()
