"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

from repro import (
    ideal_decomposition,
    make_tree,
    random_line_problem,
    random_tree_problem,
    solve_greedy,
    solve_line_unit,
    solve_tree_unit,
)
from repro.report import (
    render_comparison,
    render_decomposition,
    render_gantt,
    render_replay,
    render_solution_summary,
    render_sweep,
    render_tree,
)


class TestRenderTree:
    def test_contains_all_vertices(self):
        t = make_tree(12, "random", seed=1)
        out = render_tree(t)
        for v in range(12):
            assert str(v) in out
        assert out.splitlines()[0] == "0"

    def test_path_shape(self):
        t = make_tree(3, "path")
        out = render_tree(t)
        assert out.splitlines() == ["0", "└─ 1", "   └─ 2"]

    def test_star_children(self):
        t = make_tree(4, "star")
        lines = render_tree(t).splitlines()
        assert lines[0] == "0"
        assert len(lines) == 4
        assert lines[-1].startswith("└─")


class TestRenderDecomposition:
    def test_mentions_parameters(self):
        td = ideal_decomposition(make_tree(16, "random", seed=2))
        out = render_decomposition(td)
        assert "depth=" in out and "θ=" in out
        assert out.count("depth ") == td.max_depth


class TestRenderGantt:
    def test_lanes_disjoint(self):
        p = random_line_problem(n_slots=30, m=12, r=1, seed=3, max_len=8)
        sol = solve_line_unit(p, epsilon=0.2, seed=3)
        chart = render_gantt(p, sol, network_id=0)
        # Every selected instance appears exactly once; no overlap within
        # a lane by construction.
        for lane in chart.splitlines():
            assert len(lane) == p.n_slots

    def test_idle_resource(self):
        p = random_line_problem(n_slots=10, m=2, r=2, seed=4)
        sol = solve_line_unit(p, epsilon=0.2, seed=4,
                              instance_filter=lambda d: False)
        assert render_gantt(p, sol, network_id=0) == "(idle)"

    def test_width_clamp(self):
        p = random_line_problem(n_slots=30, m=10, r=1, seed=5, max_len=6)
        sol = solve_line_unit(p, epsilon=0.2, seed=5)
        chart = render_gantt(p, sol, network_id=0, width=10)
        for lane in chart.splitlines():
            assert len(lane) == 10


class TestSummaries:
    def test_solution_summary_fields(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=6)
        sol = solve_tree_unit(p, epsilon=0.2, seed=6)
        out = render_solution_summary(sol)
        assert "profit" in out and "rounds" in out and "λ" in out

    def test_comparison_table(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=7)
        a = solve_tree_unit(p, epsilon=0.2, seed=7)
        g = solve_greedy(p)
        out = render_comparison([("primal-dual", a), ("greedy", g)], opt=10.0)
        assert "primal-dual" in out and "greedy" in out
        assert "OPT/ALG" in out and "exact OPT" in out

    def test_comparison_without_opt(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=8)
        a = solve_tree_unit(p, epsilon=0.2, seed=8)
        out = render_comparison([("alg", a)])
        assert "OPT/ALG" not in out


def _run_result(profit=10.0, stats=None):
    from repro.runners import RunResult

    return RunResult(label="t", solver="dual-gated", key="k",
                     params={"seed": 0}, profit=profit, size=3,
                     stats=stats or {}, elapsed=0.1)


class TestRenderSweepOfflineColumns:
    def test_no_offline_keeps_legacy_columns(self):
        out = render_sweep([_run_result(stats={"total_rounds": 4})])
        assert "ALG/OPT" not in out and "c-ratio" not in out
        assert "profit" in out and "rounds" in out

    def test_offline_adds_ratio_columns(self):
        stats = {"offline_profit": 20.0, "profit_vs_offline": 0.5,
                 "competitive_ratio": 2.0}
        out = render_sweep([_run_result(stats=stats),
                            _run_result(stats={})])
        assert "ALG/OPT" in out and "c-ratio" in out
        assert "0.500" in out and "2.000" in out
        # The record without a benchmark renders dashes, not zeros.
        row = out.splitlines()[-1]
        assert "-" in row


class TestRenderReplay:
    def _metrics(self, offline=False):
        from repro.online import ReplayMetrics, with_offline

        m = ReplayMetrics(
            policy="dual-gated", events=100, arrivals=70, departures=30,
            ticks=0, accepted=35, rejected=35, acceptance_ratio=0.5,
            realized_profit=123.4, elapsed_s=0.01, events_per_sec=10000.0,
            latency_p50_us=12.0, latency_p90_us=30.0, latency_p99_us=80.0,
            latency_mean_us=15.0,
        )
        return with_offline(m, 200.0) if offline else m

    def test_basic_table(self):
        out = render_replay([self._metrics()])
        assert "dual-gated" in out
        assert "acc%" in out and "events/s" in out
        assert "offline OPT" not in out

    def test_offline_columns(self):
        out = render_replay([self._metrics(offline=True)])
        assert "offline OPT" in out
        assert "ALG/OPT" in out and "c-ratio" in out
        assert "0.617" in out  # 123.4 / 200
        assert "1.621" in out  # 200 / 123.4

    def test_accepts_dicts(self):
        out = render_replay([self._metrics().to_dict()])
        assert "dual-gated" in out

    def test_no_eviction_columns_without_preemption(self):
        out = render_replay([self._metrics()])
        assert "evict" not in out and "adj profit" not in out

    def test_eviction_columns_appear_for_every_row(self):
        from dataclasses import replace

        plain = self._metrics()
        preempt = replace(
            plain, policy="preempt-density", evictions=7,
            forfeited_profit=20.0, penalty_paid=2.0,
            realized_profit=150.0, penalty_adjusted_profit=148.0,
        )
        out = render_replay([plain, preempt])
        assert "evict" in out and "forfeit" in out and "adj profit" in out
        rows = out.splitlines()
        # The non-preemptive row shows zeros, not blanks, so the two
        # policies read side by side.
        assert "148.00" in rows[-1] and "7" in rows[-1]
        assert "0" in rows[-2]

    def test_real_replay_renders(self):
        from repro.online import make_policy, poisson_trace, replay

        tr = poisson_trace("line", events=60, seed=1, departure_prob=0.3)
        res = replay(tr, make_policy("greedy-threshold"))
        out = render_replay([res.metrics])
        assert "greedy-threshold" in out
        assert str(res.metrics.accepted) in out

    def test_real_preemptive_replay_renders(self):
        from repro.online import bursty_trace, make_policy, replay

        tr = bursty_trace("line", events=300, seed=3, departure_prob=0.3)
        res = replay(tr, make_policy("preempt-density", penalty=0.1))
        assert res.metrics.evictions > 0
        out = render_replay([res.metrics])
        assert "preempt-density" in out
        assert "evict" in out and "adj profit" in out
