"""E2 (Figure 2): tree-network semantics.

Three demands whose routes all share one tree edge.  Unit-height case:
only one can be scheduled.  Heights (0.4, 0.7, 0.3): demands 1 and 3 fit
together (0.7 total).  We regenerate both claims with the exact solver.
"""

from __future__ import annotations

from repro import Demand, TreeNetwork, TreeProblem, solve_optimal

from common import emit


def build_fig2(unit: bool) -> TreeProblem:
    edges = [
        (3, 4),
        (0, 3), (1, 3), (11, 3),
        (9, 4), (2, 4), (12, 4),
        (5, 0), (6, 0), (7, 1), (8, 2), (10, 9), (13, 12),
    ]
    net = TreeNetwork(14, edges, network_id=0)
    heights = [1.0, 1.0, 1.0] if unit else [0.4, 0.7, 0.3]
    demands = [
        Demand(0, 0, 9, profit=1.0, height=heights[0]),
        Demand(1, 1, 2, profit=1.0, height=heights[1]),
        Demand(2, 11, 12, profit=1.0, height=heights[2]),
    ]
    return TreeProblem(n=14, networks=[net], demands=demands)


def run_experiment():
    unit_opt = solve_optimal(build_fig2(unit=True))
    h_opt = solve_optimal(build_fig2(unit=False))
    rows = [
        ["unit heights", unit_opt.size, f"{unit_opt.profit:.1f}"],
        ["heights (.4,.7,.3)", h_opt.size, f"{h_opt.profit:.1f}"],
    ]
    emit(
        "E02",
        "Figure 2 tree semantics: all routes share edge (4,5)",
        ["case", "scheduled demands", "OPT profit"],
        rows,
        notes=(
            "Paper: unit case schedules exactly one of the three; with "
            "heights .4/.7/.3 the first and third fit together."
        ),
    )
    return unit_opt, h_opt


def test_fig2_semantics(benchmark):
    unit_opt, h_opt = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert unit_opt.size == 1
    assert h_opt.size == 2
    selected = {d.demand_id for d in h_opt.selected}
    # Two compatible pairs exist ({0,2} at 0.7 and {1,2} at 1.0); OPT
    # schedules some pair containing demand 2 (the 0.3-height one).
    assert 2 in selected
