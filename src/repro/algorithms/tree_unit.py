"""The main result: distributed (7+ε)-approximation for unit-height
throughput maximization on tree-networks (Section 5, Theorem 5.3).

Pipeline: per network, build the ideal tree decomposition (Lemma 4.1,
depth ``O(log n)``, pivot 2), transform it into a layered decomposition
(Lemma 4.3, ``∆ = 6``), merge the groups across networks, and run the
two-phase engine with the multi-stage schedule ``ξ = 14/15`` until every
group is ``(1-ε)``-satisfied.  Lemma 3.1 with ``λ = 1-ε`` and ``∆ = 6``
yields profit ≥ OPT/(7+ε); the engine's round ledger realises the
``O(Time(MIS)·log n·log(1/ε)·log(pmax/pmin))`` bound.
"""

from __future__ import annotations

from typing import Callable, Literal

from ..core.instance import TreeProblem
from ..core.solution import Solution
from ..decomposition.base import TreeDecomposition
from ..decomposition.ideal import ideal_decomposition
from ..network.tree import TreeNetwork
from .compile import compile_tree
from .framework import EngineConfig, TwoPhaseEngine
from .registry import register

__all__ = ["solve_tree_unit"]


@register(
    "tree-unit",
    family="tree",
    description="distributed (7+ε) unit-height tree algorithm (Thm 5.3)",
    accepts=("epsilon", "decomposition", "mis", "seed", "instance_filter"),
)
def solve_tree_unit(
    problem: TreeProblem,
    *,
    epsilon: float = 0.1,
    decomposition: Callable[[TreeNetwork], TreeDecomposition] = ideal_decomposition,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
    instance_filter: Callable[..., bool] | None = None,
) -> Solution:
    """Solve the unit-height tree-network problem (Theorem 5.3).

    Parameters
    ----------
    problem:
        The instance.  Demands may carry heights; they are *treated as
        unit* (edge-disjoint packing) — that is exactly how Section 6
        reuses this algorithm for wide instances.
    epsilon:
        Slackness target; the guarantee is ``7/(1-ε)``-ish, i.e. (7+ε′).
    decomposition:
        Tree-decomposition builder (ablation hook, default ideal).
    mis:
        ``"luby"`` for round-faithful randomized MIS, ``"greedy"`` for a
        fast deterministic run.
    seed:
        Luby RNG seed.
    instance_filter:
        Restrict to a sub-population of demand instances (used by the
        Section 6 wide/narrow split).

    Returns
    -------
    Solution
        Selected instances plus the engine ledger in ``stats``
        (rounds, steps, realized λ, dual OPT upper bound, ∆, ...).
    """
    inp = compile_tree(
        problem, decomposition=decomposition, instance_filter=instance_filter
    )
    cfg = EngineConfig(rule="unit", epsilon=epsilon, mis=mis, seed=seed)
    engine = TwoPhaseEngine(inp, cfg)
    selected, stats = engine.run()
    guarantee = (stats.delta + 1) / max(stats.realized_lambda, 1e-12)
    return Solution(
        selected=selected,
        stats={
            "algorithm": "tree-unit(7+eps)",
            "epsilon": epsilon,
            "delta": stats.delta,
            "epochs": stats.epochs,
            "stages": stats.stages,
            "steps": stats.steps,
            "mis_rounds": stats.mis_rounds,
            "total_rounds": stats.total_rounds,
            "max_steps_in_a_stage": stats.max_steps_in_a_stage,
            "realized_lambda": stats.realized_lambda,
            "dual_objective": stats.dual_objective,
            "opt_upper_bound": stats.opt_upper_bound,
            "approx_guarantee": guarantee,
        },
    )
