"""Online admission control on a bursty arrival stream.

Generates one bursty line-network trace — demands arriving in dense
bursts separated by quiet stretches, ~40% of them departing and freeing
their bandwidth — and replays the *identical* stream through all five
admission policies:

* ``greedy-threshold``   — first-fit whatever clears a profit-density bar;
* ``dual-gated``         — admit only demands whose profit beats the
  exponential dual price of their route at its current load;
* ``batch-resolve``      — buffer arrivals and periodically re-solve the
  buffer with a registry solver, never preempting prior admissions;
* ``preempt-density``    — first-fit that may *evict* cheap-density
  holders when a sufficiently profitable demand arrives blocked;
* ``preempt-dual-gated`` — dual-gated that evicts when the arrival's
  profit beats the victims' plus the dual price of the freed route
  (here with a 10% compensation penalty per eviction).

Every policy is then scored against the offline optimum of the frozen
trace (the exact MILP — the clairvoyant scheduler that saw the whole
stream in advance); preemptive rows score with their penalty-adjusted
profit, so the competitive ratios are apples to apples.

Run from the repo root::

    PYTHONPATH=src python examples/online_admission_demo.py
"""

from repro.online import (
    bursty_trace,
    make_policy,
    offline_optimum,
    replay,
    with_offline,
)
from repro.report import render_replay


def main() -> None:
    trace = bursty_trace(
        "line", events=600, seed=42, departure_prob=0.4, rate=1.5,
    )
    print(
        f"bursty trace: {len(trace.events)} events over "
        f"{trace.horizon:.0f} time units — {trace.num_arrivals} arrivals, "
        f"{trace.num_departures} departures, "
        f"{len(trace.problem.instances())} placement instances\n"
    )

    print("offline benchmark: exact MILP over the frozen demand set ...")
    opt = offline_optimum(trace, "exact")
    print(f"offline optimum profit: {opt:.2f}\n")

    metrics = []
    for name, kwargs in [
        ("greedy-threshold", {"threshold": 0.0}),
        ("dual-gated", {"eta": 1.0}),
        ("batch-resolve", {"solver": "greedy", "resolve_every": 64}),
        ("preempt-density", {"factor": 1.2}),
        ("preempt-dual-gated", {"penalty": 0.1}),
    ]:
        result = replay(trace, make_policy(name, **kwargs))
        metrics.append(with_offline(result.metrics, opt))
        interesting = {k: v for k, v in result.policy_stats.items() if v}
        if interesting:
            print(f"{name} internals: {interesting}")
    print()
    print(render_replay(metrics))
    print(
        "\nNote: with departures in the stream, capacity freed mid-trace\n"
        "can be re-sold, so a policy may even exceed the frozen offline\n"
        "optimum on heavily-churning traces (ALG/OPT > 1)."
    )


if __name__ == "__main__":
    main()
