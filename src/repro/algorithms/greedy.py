"""Greedy baselines.

Not from the paper — context for the benchmarks: how much of the measured
gap to OPT is closed by the primal-dual machinery versus what a trivial
centralized heuristic already achieves.  Two orders:

* ``profit``  — descending profit;
* ``density`` — descending profit per occupied edge (length-normalised),
  the classic knapsack-style heuristic.
"""

from __future__ import annotations

from typing import Literal

from ..core.solution import Solution
from .registry import register

__all__ = ["solve_greedy"]


@register(
    "greedy",
    family="any",
    description="centralized first-fit greedy baseline (profit/density)",
    accepts=("order",),
)
def solve_greedy(
    problem, *, order: Literal["profit", "density"] = "density"
) -> Solution:
    """First-fit greedy over all demand instances in the chosen order."""
    instances = problem.instances()
    edges_of = {d.instance_id: problem.global_edges_of(d) for d in instances}
    if order == "profit":
        key = lambda d: (-d.profit, d.instance_id)
    elif order == "density":
        key = lambda d: (-d.profit / max(len(edges_of[d.instance_id]), 1),
                         d.instance_id)
    else:
        raise ValueError(f"unknown order {order!r}")
    load: dict = {}
    used_demands: set[int] = set()
    chosen: list = []
    for d in sorted(instances, key=key):
        if d.demand_id in used_demands:
            continue
        edges = edges_of[d.instance_id]
        if all(load.get(e, 0.0) + d.height <= 1.0 + 1e-9 for e in edges):
            chosen.append(d)
            used_demands.add(d.demand_id)
            for e in edges:
                load[e] = load.get(e, 0.0) + d.height
    return Solution(selected=chosen, stats={"algorithm": f"greedy-{order}"})
