"""LP / ILP formulation of the throughput maximization problem (§3.1, §6.1).

One variable ``x(d)`` per demand instance; constraints

* ``Σ_{d ∼ e} h(d)·x(d) ≤ 1``  for every global edge ``e`` (bandwidth);
* ``Σ_{d ∈ Inst(a)} x(d) ≤ 1`` for every demand ``a`` (one copy);

maximize ``Σ p(d)·x(d)``.  The builder emits a sparse constraint system
consumed by both :func:`scipy.optimize.linprog` (fractional relaxation —
an always-available OPT upper bound) and :func:`scipy.optimize.milp`
(integral optimum — the denominator for measured approximation ratios on
instances where HiGHS converges quickly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

__all__ = ["PackingLP", "build_lp"]


@dataclass
class PackingLP:
    """Sparse packing LP: maximize ``profits @ x`` s.t. ``A x ≤ b``, ``0 ≤ x ≤ 1``.

    ``row_labels`` names each constraint (``("edge", global_edge)`` or
    ``("demand", demand_id)``) for diagnostics.
    """

    profits: np.ndarray
    A: sparse.csr_matrix
    b: np.ndarray
    row_labels: list

    @property
    def num_vars(self) -> int:
        """Number of demand-instance variables."""
        return int(self.profits.size)


def build_lp(problem) -> PackingLP:
    """Build the packing LP for a tree or line problem.

    Works with any problem exposing ``instances()`` and
    ``global_edges_of`` (both :class:`~repro.core.instance.TreeProblem`
    and :class:`~repro.core.instance.LineProblem` do).
    """
    instances = problem.instances()
    nvar = len(instances)
    edge_rows: dict = {}
    demand_rows: dict[int, int] = {}
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    row_labels: list = []

    def row_for_edge(ge) -> int:
        if ge not in edge_rows:
            edge_rows[ge] = len(row_labels)
            row_labels.append(("edge", ge))
        return edge_rows[ge]

    def row_for_demand(a: int) -> int:
        if a not in demand_rows:
            demand_rows[a] = len(row_labels)
            row_labels.append(("demand", a))
        return demand_rows[a]

    for d in instances:
        j = d.instance_id
        for ge in problem.global_edges_of(d):
            rows.append(row_for_edge(ge))
            cols.append(j)
            vals.append(d.height)
        rows.append(row_for_demand(d.demand_id))
        cols.append(j)
        vals.append(1.0)

    A = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(len(row_labels), nvar), dtype=float
    )
    b = np.ones(len(row_labels))
    profits = np.array([d.profit for d in instances], dtype=float)
    return PackingLP(profits=profits, A=A, b=b, row_labels=row_labels)
