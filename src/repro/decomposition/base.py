"""Tree-decomposition representation (Section 4.1).

A *tree decomposition* of a tree-network ``T`` (the paper's notion — not
the treewidth notion) is a rooted tree ``H`` over the same vertex set such
that

1. (LCA property) every demand path through ``x`` and ``y`` also passes
   through ``LCA_H(x, y)``; and
2. (component property) for every node ``z``, the set ``C(z)`` of ``z``
   and its ``H``-descendants induces a connected subtree of ``T``.

Its quality is measured by its **depth** and its **pivot size**
``θ = max_z |χ(z)|``, where ``χ(z) = Γ[C(z)]`` is the ``T``-neighbourhood
of the component ``C(z)``.

:class:`TreeDecomposition` stores ``H`` (parent pointers), exposes the
queries the algorithms need — the *capture node* ``µ(d)`` of a demand path
and the pivot set ``χ(z)`` — and precomputes all pivot sets in
``O(n · depth)`` using the fact that for every ``T``-edge ``{x, y}`` one
endpoint is an ``H``-ancestor of the other (the edge's two-vertex path
must pass through its own LCA).
"""

from __future__ import annotations

from typing import Sequence

from ..network.tree import TreeNetwork

__all__ = ["TreeDecomposition"]


class TreeDecomposition:
    """A rooted tree ``H`` over the vertices of a tree-network.

    Parameters
    ----------
    tree:
        The tree-network being decomposed.
    parent:
        ``parent[v]`` = parent of ``v`` in ``H``, or ``-1`` for the root.
        Exactly one root is required.
    name:
        Human-readable label of the construction (used in benchmarks).
    """

    __slots__ = ("tree", "parent", "root", "depth", "children", "name",
                 "_tin", "_tout", "_chi")

    def __init__(self, tree: TreeNetwork, parent: Sequence[int], name: str = ""):
        n = tree.n
        if len(parent) != n:
            raise ValueError(f"parent array has {len(parent)} entries, tree has {n}")
        roots = [v for v in range(n) if parent[v] == -1]
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root, found {roots}")
        self.tree = tree
        self.parent = list(parent)
        self.root = roots[0]
        self.name = name or self.__class__.__name__
        children: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            p = parent[v]
            if p != -1:
                if not (0 <= p < n):
                    raise ValueError(f"parent of {v} out of range: {p}")
                children[p].append(v)
        self.children = children
        # Depth (root has depth 1, per the paper) via BFS from the root;
        # also detects cycles / disconnected parent structures.
        depth = [0] * n
        depth[self.root] = 1
        order = [self.root]
        for v in order:
            for c in children[v]:
                depth[c] = depth[v] + 1
                order.append(c)
        if len(order) != n:
            raise ValueError("parent pointers do not form a single rooted tree")
        self.depth = depth
        # Euler intervals for O(1) ancestor tests.
        tin = [0] * n
        tout = [0] * n
        clock = 0
        stack: list[tuple[int, bool]] = [(self.root, False)]
        while stack:
            v, done = stack.pop()
            if done:
                tout[v] = clock
                clock += 1
                continue
            tin[v] = clock
            clock += 1
            stack.append((v, True))
            for c in children[v]:
                stack.append((c, False))
        self._tin = tin
        self._tout = tout
        self._chi: list[tuple[int, ...]] | None = None

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.tree.n

    @property
    def max_depth(self) -> int:
        """Depth of ``H`` (root counts as depth 1, per Section 4)."""
        return max(self.depth)

    def is_ancestor(self, a: int, b: int) -> bool:
        """Whether ``a`` is an ``H``-ancestor of ``b`` (strict)."""
        if a == b:
            return False
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def lca(self, u: int, v: int) -> int:
        """LCA of ``u`` and ``v`` in ``H`` (by parent climbing)."""
        depth, parent = self.depth, self.parent
        while depth[u] > depth[v]:
            u = parent[u]
        while depth[v] > depth[u]:
            v = parent[v]
        while u != v:
            u = parent[u]
            v = parent[v]
        return u

    def component(self, z: int) -> set[int]:
        """``C(z)``: ``z`` plus its ``H``-descendants (Section 4.1)."""
        out = {z}
        stack = [z]
        while stack:
            x = stack.pop()
            for c in self.children[x]:
                out.add(c)
                stack.append(c)
        return out

    # ------------------------------------------------------------------
    # Capture nodes and pivot sets
    # ------------------------------------------------------------------

    def capture(self, u: int, v: int) -> int:
        """``µ(d)``: the least-depth ``H``-node on the ``T``-path ``u–v``.

        Property 1 of tree decompositions makes it unique (it equals
        ``LCA_H(u, v)`` for a valid decomposition; we compute it as the
        depth-min over path vertices, which is also meaningful — and
        checkable — for *invalid* candidate decompositions).
        """
        best = u
        bd = self.depth[u]
        for x in self.tree.path_vertices(u, v):
            if self.depth[x] < bd:
                best, bd = x, self.depth[x]
        return best

    def chi(self, z: int) -> tuple[int, ...]:
        """Pivot set ``χ(z) = Γ[C(z)]`` (computed lazily for all nodes)."""
        if self._chi is None:
            self._compute_all_chi()
        assert self._chi is not None
        return self._chi[z]

    @property
    def pivot_size(self) -> int:
        """``θ``: the maximum pivot-set cardinality over all nodes."""
        if self._chi is None:
            self._compute_all_chi()
        assert self._chi is not None
        return max((len(c) for c in self._chi), default=0)

    def _compute_all_chi(self) -> None:
        """All pivot sets in ``O(n · depth)``.

        For a ``T``-edge ``{x, y}`` with ``x`` an ``H``-ancestor of ``y``,
        ``x`` neighbours ``C(z)`` exactly for the nodes ``z`` on the
        ``H``-path from ``y`` up to (excluding) ``x``: those are the ``z``
        with ``y ∈ C(z)`` and ``x ∉ C(z)``.
        """
        n = self.tree.n
        chi_sets: list[set[int]] = [set() for _ in range(n)]
        for (a, b) in self.tree.iter_edges():
            if self.is_ancestor(a, b):
                anc, desc = a, b
            elif self.is_ancestor(b, a):
                anc, desc = b, a
            else:
                raise ValueError(
                    f"T-edge ({a},{b}) violates the LCA property: neither "
                    "endpoint is an H-ancestor of the other"
                )
            z = desc
            while z != anc:
                chi_sets[z].add(anc)
                z = self.parent[z]
        self._chi = [tuple(sorted(s)) for s in chi_sets]

    # ------------------------------------------------------------------

    def levels(self) -> list[list[int]]:
        """Vertices grouped by depth: ``levels()[i]`` holds depth ``i+1``."""
        out: list[list[int]] = [[] for _ in range(self.max_depth)]
        for v in range(self.n):
            out[self.depth[v] - 1].append(v)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TreeDecomposition({self.name}, n={self.n}, "
            f"depth={self.max_depth})"
        )
