"""Processor-level implementation of the unit-height algorithms.

:mod:`repro.algorithms.framework` simulates the algorithms *logically*
(global data structures, round ledger).  This module implements them the
way Section 5's "Distributed Implementation" sketch describes — as actual
agents exchanging ``O(M)``-bit messages over the shared-resource
communication graph via :class:`~repro.distributed.simulator.SyncSimulator`:

* every processor owns one demand, knows the topologies of the networks
  it can access, and *locally* derives its instances' groups and
  critical edges (here: taken from the same deterministic compile step
  every processor would perform);
* every processor keeps local copies of the β duals of the edges it can
  see; raises propagate by neighbour broadcast;
* each first-phase step runs a priority-MIS subprotocol (static
  priorities = instance id; converges to the lexicographically first
  MIS, so the result is *bit-identical* to the engine run with
  ``mis="greedy"`` — the equivalence tests rely on this);
* the second phase replays the step tuples in reverse with SELECTED
  broadcasts maintaining each processor's used-edge view.

:class:`ProtocolRuntime` is generic over the compiled
:class:`~repro.algorithms.framework.EngineInput`;
:class:`TreeUnitRuntime` and :class:`LineUnitRuntime` wire it to the two
problem families.  Epoch and stage counts are global knowledge (derived
from ``n``, ``ε``, ``pmax/pmin`` exactly as the paper assumes); step
termination is detected by simulator quiescence, standing in for the
fixed ``c·log(pmax/pmin)``-iteration schedule the paper runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import LineProblem, TreeProblem
from ..core.solution import Solution
from .messages import Kind, Message
from .simulator import ProcessorBase, RoundContext, SyncSimulator

__all__ = ["ProtocolRuntime", "TreeUnitRuntime", "LineUnitRuntime", "TreeNarrowRuntime"]


@dataclass
class _OwnInstance:
    """A processor's local record of one of its demand instances."""

    iid: int                       # priority in the MIS subprotocol
    demand_id: int
    network_id: int
    profit: float
    height: float                  # 1.0 in the unit case
    path_edges: frozenset          # global (network, edge) ids
    critical: tuple                # π(d), global ids
    group: int                     # 0-based epoch index
    # MIS state per step: None = inactive, else "undecided"/"joined"/"retired"
    status: str | None = None
    raised_at: tuple | None = None


class _UnitProcessor(ProcessorBase):
    """One agent: owns a demand, sees only its accessible networks.

    ``narrow=True`` switches to the Section 6.1 raising rule
    (height-weighted constraints, β bumps of ``2|π|δ``) and to
    capacity-packing in the second phase.
    """

    def __init__(self, pid: int, instances: list[_OwnInstance],
                 accessible: set[int], narrow: bool = False):
        super().__init__(pid)
        self.instances = instances
        self.accessible = accessible
        self.narrow = narrow
        self.load: dict = {}                 # phase-2 capacity view (narrow)
        self.alpha = 0.0                     # α of the owned demand
        self.beta: dict = {}                 # local copies of β(e)
        self.mode = "idle"
        self.wants_round = False
        self._remote: dict[int, dict] = {}   # MIS view of neighbour candidates
        self._announce: list[_OwnInstance] = []
        self.used_edges: set = set()         # phase-2 view
        self.selection: _OwnInstance | None = None
        self._select_pending: _OwnInstance | None = None
        self._step_tuple: tuple | None = None

    # ----------------------------- duals -----------------------------

    def _lhs(self, own: _OwnInstance) -> float:
        beta_sum = sum(self.beta.get(e, 0.0) for e in own.path_edges)
        return self.alpha + own.height * beta_sum

    def unsatisfied(self, own: _OwnInstance, target: float) -> bool:
        return self._lhs(own) < target * own.profit - 1e-12

    # --------------------------- phase 1 ------------------------------

    def arm(self, epoch: int, target: float, step_tuple: tuple) -> int:
        """Prepare this step: mark unsatisfied group members as candidates."""
        self._remote.clear()
        self._announce = []
        self._step_tuple = step_tuple
        count = 0
        for own in self.instances:
            own.status = None
            if (
                own.group == epoch
                and own.raised_at is None
                and self.unsatisfied(own, target)
            ):
                own.status = "undecided"
                self._announce.append(own)
                count += 1
        self.mode = "mis"
        self.wants_round = count > 0
        return count

    @staticmethod
    def _conflicts(a_demand: int, a_net: int, a_edges: frozenset,
                   b_demand: int, b_net: int, b_edges: frozenset) -> bool:
        if a_demand == b_demand:
            return True
        if a_net != b_net:
            return False
        return bool(a_edges & b_edges)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        if self.mode == "mis":
            self._mis_round(ctx, inbox)
        elif self.mode == "select":
            self._select_round(ctx, inbox)
        else:
            self._absorb(inbox)
            self.wants_round = False

    def _absorb(self, inbox: list[Message]) -> None:
        """Apply dual/selection updates that arrive outside an active mode."""
        for msg in inbox:
            if msg.kind is Kind.JOINED:
                _iid, _dem, _net, _edges, raises = msg.payload
                for e, amount in raises:
                    if e[0] in self.accessible:
                        self.beta[e] = self.beta.get(e, 0.0) + amount
            elif msg.kind is Kind.SELECTED:
                net, edges, height = msg.payload
                if net in self.accessible:
                    if self.narrow:
                        for e in edges:
                            self.load[e] = self.load.get(e, 0.0) + height
                    else:
                        self.used_edges |= set(edges)

    def _mis_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        # 1. Ingest neighbour traffic (candidates first, so JOINED/RETIRED
        #    always refer to a known record).
        for msg in inbox:
            if msg.kind is Kind.CANDIDATE:
                iid, dem, net, edges = msg.payload
                self._remote[iid] = {
                    "demand": dem,
                    "net": net,
                    "edges": frozenset(edges),
                    "status": "undecided",
                }
        for msg in inbox:
            if msg.kind is Kind.JOINED:
                iid, dem, net, edges, raises = msg.payload
                rec = self._remote.get(iid)
                if rec is not None:
                    rec["status"] = "joined"
                for e, amount in raises:
                    if e[0] in self.accessible:
                        self.beta[e] = self.beta.get(e, 0.0) + amount
                # Own candidates conflicting with a joined neighbour retire.
                for own in self.instances:
                    if own.status == "undecided" and self._conflicts(
                        own.demand_id, own.network_id, own.path_edges,
                        dem, net, frozenset(edges),
                    ):
                        own.status = "retired"
                        ctx.broadcast(Kind.RETIRED, own.iid)
            elif msg.kind is Kind.RETIRED:
                rec = self._remote.get(msg.payload)
                if rec is not None:
                    rec["status"] = "retired"

        # 2. First round of the step: announce candidates.
        if self._announce:
            for own in self._announce:
                ctx.broadcast(
                    Kind.CANDIDATE,
                    (own.iid, own.demand_id, own.network_id,
                     tuple(own.path_edges)),
                )
            self._announce = []
            self.wants_round = True
            return

        # 3. Decision rule: an undecided candidate joins when it beats every
        #    undecided conflicting candidate (remote and own).
        for own in sorted(
            (o for o in self.instances if o.status == "undecided"),
            key=lambda o: o.iid,
        ):
            if own.status != "undecided":
                continue
            dominated = False
            for iid, rec in self._remote.items():
                if rec["status"] == "undecided" and iid < own.iid and self._conflicts(
                    own.demand_id, own.network_id, own.path_edges,
                    rec["demand"], rec["net"], rec["edges"],
                ):
                    dominated = True
                    break
            if not dominated:
                for other in self.instances:
                    if (
                        other is not own
                        and other.status == "undecided"
                        and other.iid < own.iid
                    ):
                        dominated = True  # same demand: always conflicting
                        break
            if dominated:
                continue
            # Join: raise duals locally and broadcast the β increments.
            own.status = "joined"
            own.raised_at = self._step_tuple
            slack = own.profit - self._lhs(own)
            k = len(own.critical)
            if self.narrow:
                delta = slack / (1.0 + 2.0 * own.height * k * k)
                bump = 2.0 * k * delta
            else:
                delta = slack / (k + 1)
                bump = delta
            self.alpha += delta
            raises = []
            for e in own.critical:
                self.beta[e] = self.beta.get(e, 0.0) + bump
                raises.append((e, bump))
            ctx.broadcast(
                Kind.JOINED,
                (own.iid, own.demand_id, own.network_id,
                 tuple(own.path_edges), tuple(raises)),
            )
            # Sibling candidates retire (same demand conflict).
            for other in self.instances:
                if other is not own and other.status == "undecided":
                    other.status = "retired"
                    ctx.broadcast(Kind.RETIRED, other.iid)

        self.wants_round = any(o.status == "undecided" for o in self.instances)

    # --------------------------- phase 2 ------------------------------

    def begin_select(self, step_tuple: tuple) -> None:
        """Enter the pop round for ``step_tuple``."""
        self.mode = "select"
        self._select_pending = None
        for own in self.instances:
            if own.raised_at == step_tuple:
                self._select_pending = own
                break  # at most one per tuple: an MIS holds ≤1 per demand
        self.wants_round = self._select_pending is not None

    def _select_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        self._absorb(inbox)
        own = self._select_pending
        if own is None:
            self.wants_round = False
            return
        self._select_pending = None
        if self.narrow:
            fits = self.selection is None and all(
                self.load.get(e, 0.0) + own.height <= 1.0 + 1e-9
                for e in own.path_edges
            )
            if fits:
                self.selection = own
                for e in own.path_edges:
                    self.load[e] = self.load.get(e, 0.0) + own.height
        else:
            fits = self.selection is None and not (
                own.path_edges & self.used_edges
            )
            if fits:
                self.selection = own
                self.used_edges |= own.path_edges
        if fits:
            ctx.broadcast(
                Kind.SELECTED,
                (own.network_id, tuple(own.path_edges), own.height),
            )
        self.wants_round = False


class ProtocolRuntime:
    """Run the agent-level protocol for a compiled unit-height problem.

    Parameters
    ----------
    problem:
        :class:`TreeProblem` or :class:`LineProblem` (unit semantics).
    inp:
        The compiled :class:`~repro.algorithms.framework.EngineInput`
        (from :func:`~repro.algorithms.compile.compile_tree` /
        :func:`~repro.algorithms.compile.compile_line`) — deterministic,
        so "every processor computes it locally" is faithful.
    epsilon:
        Stage-schedule ε.
    delta:
        The agreed critical-set bound ∆ (global schedule knowledge);
        defaults to ``inp.delta``.
    """

    def __init__(self, problem, inp, *, epsilon: float = 0.1,
                 delta: int | None = None, label: str = "protocol-runtime",
                 rule: str = "unit", hmin: float = 0.5):
        from ..algorithms.framework import narrow_xi, stage_count, unit_xi

        self.problem = problem
        self.inp = inp
        self.epsilon = epsilon
        self.label = label
        self.rule = rule
        self.delta = delta if delta is not None else inp.delta
        xi = unit_xi(self.delta) if rule == "unit" else narrow_xi(self.delta, hmin)
        b = stage_count(xi, epsilon)
        self.targets = [1.0 - xi**j for j in range(1, b + 1)]
        self.ell_max = len(inp.groups)

        group_of: dict[int, int] = {}
        for k, grp in enumerate(inp.groups):
            for iid in grp:
                group_of[iid] = k

        per_demand: dict[int, list[_OwnInstance]] = {
            i: [] for i in range(problem.num_demands)
        }
        for d in inp.instances:
            per_demand[d.demand_id].append(
                _OwnInstance(
                    iid=d.instance_id,
                    demand_id=d.demand_id,
                    network_id=d.network_id,
                    profit=d.profit,
                    height=d.height if rule == "narrow" else 1.0,
                    path_edges=inp.edges_of[d.instance_id],
                    critical=tuple(inp.critical[d.instance_id]),
                    group=group_of[d.instance_id],
                )
            )
        procs = {
            i: _UnitProcessor(i, per_demand[i], set(problem.access[i]),
                              narrow=(rule == "narrow"))
            for i in range(problem.num_demands)
        }
        graph: dict[int, set] = {i: set() for i in range(problem.num_demands)}
        for i in range(problem.num_demands):
            for j in range(i + 1, problem.num_demands):
                if problem.access[i] & problem.access[j]:
                    graph[i].add(j)
                    graph[j].add(i)
        self.sim = SyncSimulator(graph, procs)
        self.procs = procs

    def run(self) -> Solution:
        """Run both phases; returns the selected instances + sim stats."""
        step_tuples: list[tuple] = []
        for k in range(self.ell_max):
            for j, target in enumerate(self.targets):
                step = 0
                while True:
                    tup = (k, j, step)
                    armed = sum(
                        p.arm(k, target, tup) for p in self.procs.values()
                    )
                    if armed == 0:
                        break
                    self.sim.run_phase(f"phase1[{k},{j},{step}]")
                    step_tuples.append(tup)
                    step += 1
        for tup in reversed(step_tuples):
            for p in self.procs.values():
                p.begin_select(tup)
            self.sim.run_phase(f"phase2{tup}")
        # One final delivery round so late SELECTED broadcasts settle.
        self.sim.run_phase("drain")

        ledger = self.verify_round_ledger()

        by_iid = {d.instance_id: d for d in self.inp.instances}
        selected = [
            by_iid[p.selection.iid]
            for p in self.procs.values()
            if p.selection is not None
        ]
        return Solution(
            selected=selected,
            stats={
                "algorithm": self.label,
                "epsilon": self.epsilon,
                "delta": self.delta,
                "rounds": self.sim.stats.rounds,
                "messages": self.sim.stats.messages,
                "steps": len(step_tuples),
                **ledger,
            },
        )

    def verify_round_ledger(self) -> dict:
        """Reconcile the engine-side and simulator-side round ledgers.

        The simulator keeps two independently maintained counters: the
        global ``SimStats.rounds`` incremented by :meth:`step_round`, and
        the per-phase charges recorded by :meth:`run_phase`.  The rounds
        the protocol *charges* (one entry per phase-1 step, phase-2 pop,
        and the drain) must sum to exactly the rounds the simulator
        *executed* — anything else means a phase ran outside the ledger
        or was double-charged.

        Returns the per-phase breakdown; raises ``RuntimeError`` on
        disagreement.
        """
        per_phase = self.sim.stats.per_phase
        charged = sum(per_phase.values())
        executed = self.sim.stats.rounds
        if charged != executed:
            raise RuntimeError(
                f"round-ledger mismatch: phases charge {charged} rounds but "
                f"the simulator executed {executed}"
            )
        phase1 = sum(v for k, v in per_phase.items() if k.startswith("phase1"))
        phase2 = sum(v for k, v in per_phase.items() if k.startswith("phase2"))
        drain = per_phase.get("drain", 0)
        return {
            "phase1_rounds": phase1,
            "phase2_rounds": phase2,
            "drain_rounds": drain,
            "rounds_charged": charged,
        }


class TreeUnitRuntime(ProtocolRuntime):
    """Agent-level Theorem 5.3 (unit height, tree networks)."""

    def __init__(self, problem: TreeProblem, *, epsilon: float = 0.1,
                 delta: int | None = None):
        from ..algorithms.compile import compile_tree

        super().__init__(
            problem,
            compile_tree(problem),
            epsilon=epsilon,
            delta=delta,
            label="tree-unit-runtime(agents)",
        )


class LineUnitRuntime(ProtocolRuntime):
    """Agent-level Theorem 7.1 (unit height, line networks with windows)."""

    def __init__(self, problem: LineProblem, *, epsilon: float = 0.1,
                 delta: int | None = None):
        from ..algorithms.compile import compile_line

        super().__init__(
            problem,
            compile_line(problem),
            epsilon=epsilon,
            delta=delta,
            label="line-unit-runtime(agents)",
        )


class TreeNarrowRuntime(ProtocolRuntime):
    """Agent-level Lemma 6.2 (narrow heights, tree networks).

    Compiles only the narrow population (``h ≤ 1/2``) and runs the
    Section 6.1 raising rule with capacity-packing in phase 2; output is
    bit-identical to the engine with ``rule="narrow"``,
    ``mis="greedy"``, ``capacity_phase2=True``.
    """

    def __init__(self, problem: TreeProblem, *, epsilon: float = 0.1,
                 hmin: float | None = None, delta: int | None = None):
        from ..algorithms.compile import compile_tree

        narrow_heights = [a.height for a in problem.demands if a.narrow]
        if hmin is None:
            hmin = min(narrow_heights) if narrow_heights else 0.5
        super().__init__(
            problem,
            compile_tree(problem, instance_filter=lambda d: d.narrow),
            epsilon=epsilon,
            delta=delta,
            label="tree-narrow-runtime(agents)",
            rule="narrow",
            hmin=hmin,
        )
