"""The long-lived admission service layer.

:class:`AdmissionService` wraps an
:class:`~repro.session.AdmissionSession` behind a request/response API
(admit / release / tick / query / stats / snapshot / close), journals
every applied event to an append-only JSON-lines file, and
warm-restarts from that journal (``AdmissionService.resume``) with
state identical to the killed instance's.  The transport loops —
stdin/stdout and single-client TCP — live in
:mod:`repro.service.server`; the CLI front ends are ``repro serve`` and
``repro resume``.
"""

from .server import serve_lines, serve_socket, serve_stdio
from .service import AdmissionService

__all__ = ["AdmissionService", "serve_lines", "serve_socket",
           "serve_stdio"]
