"""Tests for the AdmissionSession kernel (submit / snapshot / close)."""

from __future__ import annotations

import json

import pytest

from repro.online import (
    POLICY_NAMES,
    CapacityLedger,
    Tick,
    generate_trace,
    make_policy,
    poisson_trace,
    replay,
)
from repro.online.metrics import deterministic_metrics
from repro.session import AdmissionSession


def _policy(name):
    if name == "batch-resolve":
        return make_policy(name, solver="greedy", resolve_every=16)
    return make_policy(name)


class TestSubmitDecisions:
    def test_decisions_mirror_ledger_logs(self):
        tr = poisson_trace("line", events=120, seed=4, departure_prob=0.4)
        session = AdmissionSession(tr.problem, make_policy("dual-gated"),
                                   trace_meta=tr.meta)
        admitted, accepted_arrivals = [], 0
        for ev in tr.events:
            d = session.submit(ev)
            admitted.extend(d.admitted)
            if d.kind == "arrival" and d.accepted:
                accepted_arrivals += 1
            assert d.latency_s >= 0.0
            json.dumps(d.to_dict())  # JSON-safe for the service layer
        result = session.close()
        assert admitted == result.admission_log
        # Non-batching policy: every admission happens on its own arrival.
        assert accepted_arrivals == result.metrics.accepted

    def test_batch_flush_admissions_land_on_tick(self):
        tr = generate_trace("line", events=150, seed=6,
                            departure_prob=0.0, tick_every=10.0)
        policy = make_policy("batch-resolve", solver="greedy",
                             resolve_every=0)
        session = AdmissionSession(tr.problem, policy)
        tick_admissions = 0
        for ev in tr.events:
            d = session.submit(ev)
            if d.kind == "arrival":
                assert not d.accepted  # buffered, never inline
            elif d.kind == "tick":
                tick_admissions += len(d.admitted)
        result = session.close()
        # Everything accepted came from a tick flush or the final one.
        assert tick_admissions <= result.metrics.accepted
        assert result.metrics.accepted > 0

    def test_eviction_pairs_reported(self):
        tr = poisson_trace("line", events=250, seed=3, departure_prob=0.2,
                           rate=4.0)
        session = AdmissionSession(
            tr.problem, make_policy("preempt-density", factor=1.2)
        )
        evicted = []
        for ev in tr.events:
            evicted.extend(session.submit(ev).evicted)
        result = session.close()
        assert evicted == result.eviction_log

    def test_submit_after_close_raises(self):
        tr = poisson_trace("line", events=20, seed=1)
        session = AdmissionSession(tr.problem, make_policy("greedy-threshold"))
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(tr.events[0])
        with pytest.raises(RuntimeError, match="closed"):
            session.close()

    def test_unknown_event_type_rejected(self):
        tr = poisson_trace("line", events=20, seed=1)
        session = AdmissionSession(tr.problem, make_policy("greedy-threshold"))
        with pytest.raises(TypeError, match="unknown event"):
            session.submit(object())


class TestSnapshot:
    def test_snapshot_readable_mid_stream(self):
        tr = poisson_trace("line", events=100, seed=8, departure_prob=0.3)
        session = AdmissionSession(tr.problem, make_policy("greedy-threshold"))
        seen_events = 0
        for ev in tr.events[:40]:
            session.submit(ev)
            seen_events += 1
            snap = session.snapshot()
            assert snap["events"] == seen_events
            assert snap["num_admitted"] <= snap["accepted"]
            assert not snap["closed"]
            json.dumps(snap)
        sol = session.solution()
        assert len(sol.selected) == session.snapshot()["num_admitted"]
        result = session.close()
        assert session.snapshot()["closed"]
        assert result.metrics.accepted == session.snapshot()["accepted"]


@pytest.mark.parametrize("name", POLICY_NAMES)
@pytest.mark.parametrize("kind", ["tree", "line"])
def test_manual_session_equals_replay(name, kind):
    """Driving the kernel by hand is the replay — decisions, logs,
    metrics, certificate, everything deterministic."""
    tr = generate_trace(kind, events=150, seed=2, departure_prob=0.3)
    direct = replay(tr, _policy(name))
    session = AdmissionSession(tr.problem, _policy(name),
                               trace_meta=tr.meta)
    for ev in tr.events:
        session.submit(ev)
    manual = session.close()
    assert manual.admission_log == direct.admission_log
    assert manual.eviction_log == direct.eviction_log
    assert manual.policy_stats == direct.policy_stats
    assert deterministic_metrics(manual.metrics) == \
        deterministic_metrics(direct.metrics)
    assert sorted(i.instance_id for i in manual.final_solution.selected) \
        == sorted(i.instance_id for i in direct.final_solution.selected)


class TestDeltaBaseline:
    def test_over_ledger_reports_deltas(self):
        """A delta-mode session over a pre-admitted ledger counts only
        its own work (the boundary-broker construction)."""
        tr = poisson_trace("line", events=80, seed=5, departure_prob=0.0)
        ledger = CapacityLedger(tr.problem)
        pre = 0
        for ev in tr.events[:30]:
            if hasattr(ev, "demand_id") and \
                    ledger.try_admit(ev.demand_id) is not None:
                pre += 1
        assert pre > 0
        base_profit = ledger.realized_profit
        session = AdmissionSession.over_ledger(
            ledger, make_policy("greedy-threshold"), trace_meta=tr.meta
        )
        for ev in tr.events[30:]:
            session.submit(ev)
        result = session.close()
        assert result.metrics.accepted == len(ledger.admission_log) - pre
        assert result.metrics.realized_profit == pytest.approx(
            ledger.realized_profit - base_profit
        )
        # Delta sessions leave the final solution to the ledger's owner.
        assert result.final_solution is None
        assert len(result.admission_log) == result.metrics.accepted

    def test_tick_only_stream(self):
        tr = poisson_trace("line", events=20, seed=2)
        session = AdmissionSession(tr.problem, make_policy("greedy-threshold"))
        session.submit(Tick(1.0))
        result = session.close()
        assert result.metrics.ticks == 1
        assert result.metrics.arrivals == 0
        assert result.metrics.acceptance_ratio == 0.0
