"""Pluggable admission policies for the streaming driver.

Five built-in policies, selectable by name through :func:`make_policy`
(the CLI's ``replay --policy`` and the replay runner dispatch here):

* ``greedy-threshold`` — admit a demand iff some instance fits the
  residual capacity and its profit density (profit / route length)
  clears a fixed threshold.  Thresholds trade acceptance for profit.
* ``dual-gated`` — online primal-dual admission.  Every edge carries an
  exponential price in its current load (the classic online packing
  price function); a demand is admitted iff its profit beats the
  height-weighted price of some feasible route.  Prices need no extra
  state: they are evaluated from the ledger's live loads, so departures
  automatically deflate them.
* ``batch-resolve`` — buffer arrivals and periodically hand the buffer
  to any registry solver on a subproblem over the buffered demands.  By
  default the subproblem is *residual-capacity aware*: the admitted
  load rides along as dominating blocker demands, so the solver
  optimizes against what is actually still free (``residual=False``
  restores the legacy post-filtering).  Nothing already admitted is
  ever preempted.  On a departure-free trace, the ``exact`` solver with
  a single final flush reproduces the offline optimum (with departures,
  buffered demands that leave before the flush are dropped, so the
  flush optimizes only the survivors).
* ``preempt-density`` — first-fit like greedy-threshold, but a blocked
  arrival may *evict* the cheapest-density holders along the contested
  route when its profit exceeds theirs by a configurable factor (the
  classic preemption rule; evictees forfeit their profit and may be owed
  a penalty).
* ``preempt-dual-gated`` — dual-gated admission that, when no instance
  fits, evicts when the arrival's profit beats the sum of the evictees'
  profits plus the dual price of the freed route.

A policy mutates the shared :class:`~repro.online.state.CapacityLedger`
only through ``admit`` and ``evict``; the driver owns releases (natural
departures).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.demand import Demand, WindowDemand
from ..core.instance import TreeProblem, subproblem_of
from .state import CapacityLedger

__all__ = [
    "AdmissionPolicy",
    "GreedyThreshold",
    "DualGated",
    "BatchResolve",
    "PreemptDensity",
    "PreemptDualGated",
    "POLICY_NAMES",
    "make_policy",
]

#: Stable policy names, as accepted by :func:`make_policy` and the CLI.
POLICY_NAMES = ("greedy-threshold", "dual-gated", "batch-resolve",
                "preempt-density", "preempt-dual-gated")


class AdmissionPolicy:
    """Base class: event hooks over a bound :class:`CapacityLedger`."""

    name = "abstract"

    def bind(self, ledger: CapacityLedger) -> None:
        """Attach to a ledger; called once before the replay starts."""
        self.ledger = ledger
        self.stats: dict = {}

    def on_arrival(self, demand_id: int) -> int | None:
        """Decide on an arriving demand; return the admitted instance id
        (or ``None`` when rejected or deferred)."""
        raise NotImplementedError

    def batch_kernel(self) -> str | None:
        """Name of this policy's vectorized batch kernel, or ``None``.

        A non-``None`` name (a :data:`repro.online.fastpath.BATCH_KERNELS`
        key) advertises that ``on_arrival`` can be replayed by the
        columnar fast path over conflict-free runs, bit-identically.
        Only policies whose decisions depend solely on the ledger's
        live loads qualify; anything with per-event buffering or
        preemption must return ``None`` (the default).
        """
        return None

    def on_departure(self, demand_id: int) -> None:
        """Called after the driver released a departing demand."""

    def on_tick(self, now: float) -> None:
        """Called on :class:`~repro.online.events.Tick` events."""

    def finish(self) -> None:
        """Called once after the last event (final flush point)."""

    def export_state(self) -> dict:
        """JSON-safe snapshot of the policy's mutable state.

        Derived state that :meth:`bind` recomputes from the problem
        (price bases, instance lookups) is *not* exported; subclasses
        extend this with whatever their decisions depend on, so that
        ``bind`` + :meth:`restore_state` reproduces the live policy
        bit for bit (the checkpoint path relies on it).
        """
        return {"stats": dict(self.stats)}

    def restore_state(self, state: dict) -> None:
        """Reset to an :meth:`export_state` snapshot; call after bind."""
        self.stats = dict(state["stats"])


class GreedyThreshold(AdmissionPolicy):
    """First-fit admission gated by a profit-density threshold.

    Parameters
    ----------
    threshold:
        Minimum profit per route edge; 0 (default) admits anything that
        fits, ``inf`` rejects everything.
    """

    name = "greedy-threshold"

    def __init__(self, threshold: float = 0.0):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = float(threshold)

    def on_arrival(self, demand_id: int) -> int | None:
        return self.ledger.try_admit(demand_id, min_density=self.threshold)

    def batch_kernel(self) -> str | None:
        return "greedy-threshold"


class DualGated(AdmissionPolicy):
    """Online primal-dual admission with exponential edge prices.

    The price of an edge at load ``ℓ`` is ``(pmin / L) · (μ^ℓ − 1)``
    where ``L`` is the longest route and ``μ = max(2, L · pmax/pmin)``:
    an empty edge is free, a full edge prices at ≈ ``pmax``, so the gate
    ramps from "admit everything" to "only the most profitable demands"
    exactly as the network fills.  A demand is admitted through the
    feasible instance with the cheapest route price, iff its profit
    strictly beats ``eta`` times that price (height-weighted).

    Because prices are a pure function of the ledger's live loads, a
    departure instantly lowers the gate on the edges it frees.

    Parameters
    ----------
    eta:
        Gate stiffness; >1 demands a margin over the dual price, <1
        relaxes toward greedy.  Default 1.0.
    mu:
        Price base override; ``None`` derives it from the problem's
        profit spread and route lengths as above.
    history:
        Opt-in tighter certificate: record per-edge price *histories*
        (load-vector snapshots along the admission trajectory, not just
        the peaks) and certify the minimum bound over the trajectory —
        every snapshot is a valid dual by weak duality, and mid-stream
        snapshots are often tighter than the peaks on lightly loaded
        edges.  Costs one O(edges) copy per admission (geometrically
        thinned to a bounded set), so it is off by default.
    """

    name = "dual-gated"

    #: History snapshots kept before geometric thinning kicks in.
    _MAX_SNAPSHOTS = 256

    def __init__(self, eta: float = 1.0, mu: float | None = None,
                 history: bool = False):
        if eta <= 0:
            raise ValueError("eta must be positive")
        self.eta = float(eta)
        self._mu_override = mu
        self.history = bool(history)

    def bind(self, ledger: CapacityLedger) -> None:
        super().bind(ledger)
        problem = ledger.problem
        if problem.num_demands:
            pmin, pmax = problem.profit_range()
        else:
            pmin = pmax = 1.0
        lengths = [max(len(ledger.index.edges_of(d.instance_id)), 1)
                   for d in ledger.instances]
        L = max(lengths, default=1)
        self.mu = (float(self._mu_override) if self._mu_override is not None
                   else max(2.0, L * pmax / max(pmin, 1e-12)))
        self._scale = pmin / L
        # Peak per-edge loads over the price trajectory, seeded from the
        # loads at bind time (nonzero when the sharded coordinator
        # pre-admitted state before handing the ledger over).  Loads only
        # set new peaks immediately after an admission, so noting peaks
        # there captures the whole trajectory.
        self._peak = ledger.active._load.copy()
        # Price-history snapshots (opt-in): load vectors along the
        # admission trajectory, geometrically thinned so memory stays
        # bounded on long streams.
        self._snapshots: list[np.ndarray] = []
        self._snap_stride = 1
        self._snap_seen = 0
        self.stats = {"gated": 0, "capacity_blocked": 0, "max_gate": 0.0}

    def batch_kernel(self) -> str | None:
        # History snapshots are taken per admission along the exact
        # scalar trajectory; the batch kernel would thin differently,
        # so the opt-in history mode stays on the scalar path.
        return None if self.history else "dual-gated"

    def _price_from_loads(self, iid: int, loads: np.ndarray) -> float:
        """Height-weighted exponential price of ``iid``'s route at the
        given per-edge ``loads`` (not necessarily the current ones).

        The route sum runs through ``np.add.reduceat`` — whose per-
        segment reduction is bit-identical whether it sums one segment
        or many, independent of buffer alignment — so the batch kernel
        (:mod:`repro.online.fastpath`) reproduces these prices exactly
        with one multi-segment call.  (``np.sum``'s pairwise blocking
        has no such segment-batched equivalent.)
        """
        if len(loads) == 0:
            return 0.0
        price = self._scale * float(
            np.add.reduceat(np.power(self.mu, loads) - 1.0, [0])[0]
        )
        return self.ledger.instances[iid].height * price

    def route_price(self, iid: int) -> float:
        """Height-weighted exponential price of ``iid``'s route now."""
        return self._price_from_loads(iid, self.ledger.route_loads(iid))

    def on_arrival(self, demand_id: int) -> int | None:
        ledger = self.ledger
        cands = ledger.candidates(demand_id)
        ok = ledger.feasible(cands)
        if not ok.any():
            self.stats["capacity_blocked"] += 1
            return None
        return self._admit_cheapest_feasible(cands, ok)

    def _admit_cheapest_feasible(self, cands, ok) -> int | None:
        """Price-gate the feasible candidates (mask precomputed by the
        caller, so subclasses don't pay the batched probe twice)."""
        ledger = self.ledger
        best, best_price = None, math.inf
        for iid in cands[ok].tolist():
            price = self.route_price(iid)
            if price < best_price:
                best, best_price = iid, price
        self.stats["max_gate"] = max(self.stats["max_gate"], best_price)
        profit = ledger.instances[best].profit
        if profit <= self.eta * best_price:
            self.stats["gated"] += 1
            return None
        ledger.admit(best)
        self._note_peak(best)
        return best

    def _note_peak(self, iid: int) -> None:
        """Fold the post-admission loads of ``iid``'s route into the peaks."""
        eids = self.ledger._edge_ids(iid)
        load = self.ledger.active._load
        self._peak[eids] = np.maximum(self._peak[eids], load[eids])
        if self.history:
            self._snap_seen += 1
            if self._snap_seen % self._snap_stride == 0:
                self._snapshots.append(load.copy())
                if len(self._snapshots) > self._MAX_SNAPSHOTS:
                    # Keep every other snapshot and double the stride:
                    # coverage stays trajectory-wide at bounded memory.
                    self._snapshots = self._snapshots[1::2]
                    self._snap_stride *= 2

    def _dual_bound_at(self, loads: np.ndarray) -> tuple[float, float]:
        """``(beta_total, z_total)`` of the dual assignment induced by
        pricing every edge at ``loads`` — valid for any ``loads >= 0``
        by weak duality (see :meth:`price_certificate`)."""
        ledger = self.ledger
        idx = ledger.index
        beta = self._scale * (np.power(self.mu, loads) - 1.0)
        if len(ledger.instances):
            route = (np.add.reduceat(beta[idx._flat_edges], idx._indptr[:-1])
                     if len(idx._flat_edges) else
                     np.zeros(len(ledger.instances)))
            profits = np.asarray([d.profit for d in ledger.instances])
            slack = profits - idx._heights * route
            z = np.zeros(len(idx._demand_index))
            np.maximum.at(z, idx._dix, slack)
            z_total = math.fsum(z.tolist())
        else:
            z_total = 0.0
        # fsum: the totals must not depend on edge/demand interning
        # order, so a sliced shard view of a shared index certifies the
        # exact same bound as a from-scratch per-shard build.
        return math.fsum(beta.tolist()), z_total

    def price_certificate(self) -> dict:
        """LP-dual upper bound certified by the price trajectory.

        Setting edge duals ``β(e)`` to the exponential price at the
        trajectory's *peak* load and demand duals
        ``z(a) = max_i (p_i − h_i · Σ_{e∈i} β(e))⁺`` over ``a``'s
        instances satisfies every dual constraint by construction, so by
        weak duality ``Σ_e β(e) + Σ_a z(a)`` upper-bounds the offline
        LP optimum of the trace's frozen problem — the online analogue
        of the offline ``opt_upper_bound`` certificate, derived from the
        replay itself at no extra solver cost.  (Validity holds for any
        ``β ≥ 0``; the peaks only make the bound tight where the gate
        actually ramped.)

        With ``history=True`` the same dual assignment is additionally
        evaluated at every recorded trajectory snapshot (and the final
        loads) — each is an independently valid dual, so the certified
        ``upper_bound`` is the *minimum* over the whole family, with the
        peak-based bound echoed as ``peak_upper_bound`` for the
        side-by-side report column.
        """
        beta_total, z_total = self._dual_bound_at(self._peak)
        peak_bound = beta_total + z_total
        doc = {
            "upper_bound": peak_bound,
            "beta_total": beta_total,
            "z_total": z_total,
            "peak_load": float(self._peak.max()) if len(self._peak) else 0.0,
            "mu": float(self.mu),
            "priced_edges": int(np.count_nonzero(self._peak)),
        }
        if self.history:
            best = peak_bound
            candidates = self._snapshots + [self.ledger.active._load]
            for loads in candidates:
                b, z = self._dual_bound_at(loads)
                best = min(best, b + z)
            doc["upper_bound"] = best
            doc["peak_upper_bound"] = peak_bound
            doc["history_points"] = len(candidates)
        return doc

    def export_state(self) -> dict:
        # The peaks and history snapshots are part of the certificate's
        # trajectory; stored verbatim so a restored run certifies the
        # exact same bound (mu/_scale are recomputed by bind).
        state = super().export_state()
        state["peak"] = self._peak.tolist()
        state["snapshots"] = [s.tolist() for s in self._snapshots]
        state["snap_stride"] = self._snap_stride
        state["snap_seen"] = self._snap_seen
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._peak = np.asarray(state["peak"], dtype=np.float64)
        self._snapshots = [np.asarray(s, dtype=np.float64)
                           for s in state["snapshots"]]
        self._snap_stride = int(state["snap_stride"])
        self._snap_seen = int(state["snap_seen"])


class BatchResolve(AdmissionPolicy):
    """Buffer arrivals; periodically re-solve and admit the winners.

    Every ``resolve_every`` buffered arrivals (and on every tick, and
    once at the end of the trace) the buffer becomes a subproblem over
    the same networks/access sets, any registry solver optimizes it, and
    the selected instances are admitted greedily in profit order.
    Admitted demands are never preempted; buffered demands that depart
    before a flush are dropped (they left unserved).

    In **residual** mode (the default) the subproblem carries the
    admitted load: one pinned *blocker* demand per currently-admitted
    instance — same route, same height, priced to dominate every real
    candidate — so the solver optimizes the buffer against the residual
    capacity the admitted set leaves behind instead of re-filling
    occupied edges and losing the collisions to a post-filter.  Blockers
    are stripped from the selection before admission; the feasibility
    check at admission time stays as a safety net (``displaced`` counts
    the rare survivors an approximate solver lets through by dropping a
    blocker).  ``residual=False`` restores the legacy post-filtering
    behaviour.

    Parameters
    ----------
    solver:
        Registry name (``"auto"``, ``"exact"``, ``"greedy"``, ...).
    resolve_every:
        Flush the buffer whenever it reaches this many demands; ``0``
        defers everything to ticks and the final flush.
    solver_params:
        Extra keyword arguments for the solver (epsilon, seed, ...).
    residual:
        Carry admitted load into the re-solve via blocker demands
        (default) instead of post-filtering collisions.
    """

    name = "batch-resolve"

    def __init__(self, solver: str = "auto", resolve_every: int = 256,
                 solver_params: dict | None = None,
                 residual: bool = True):
        if resolve_every < 0:
            raise ValueError("resolve_every must be >= 0")
        self.solver = solver
        self.resolve_every = int(resolve_every)
        self.solver_params = dict(solver_params or {})
        self.residual = bool(residual)

    def bind(self, ledger: CapacityLedger) -> None:
        super().bind(ledger)
        self.buffer: list[int] = []
        # Companion membership set: departures must not scan the buffer
        # (it can hold every live arrival in final-flush-only mode).
        self._buffered: set[int] = set()
        self.stats = {"flushes": 0, "buffered": 0, "displaced": 0,
                      "blockers": 0}
        problem = ledger.problem
        self._lookup: dict[tuple, int] = {}
        for inst in ledger.instances:
            if isinstance(problem, TreeProblem):
                key = (inst.demand_id, inst.network_id)
            else:
                key = (inst.demand_id, inst.network_id, inst.start, inst.end)
            self._lookup[key] = inst.instance_id

    def on_arrival(self, demand_id: int) -> int | None:
        self.buffer.append(demand_id)
        self._buffered.add(demand_id)
        self.stats["buffered"] += 1
        if self.resolve_every and len(self.buffer) >= self.resolve_every:
            self._flush()
        return None

    def on_departure(self, demand_id: int) -> None:
        self._buffered.discard(demand_id)

    def on_tick(self, now: float) -> None:
        self._flush()

    def finish(self) -> None:
        self._flush()

    def export_state(self) -> dict:
        state = super().export_state()
        state["buffer"] = list(self.buffer)
        state["buffered"] = sorted(self._buffered)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.buffer = [int(d) for d in state["buffer"]]
        self._buffered = {int(d) for d in state["buffered"]}

    # ------------------------------------------------------------------

    def _subproblem(self, demand_ids: list[int]) -> tuple:
        """The buffered demands as a standalone problem (ids densified).

        Returns ``(problem, n_real)``: demands ``0 .. n_real-1`` are the
        buffered candidates (aligned with ``demand_ids``); anything
        beyond is a residual-capacity blocker pinned to one admitted
        instance's exact route.  A blocker's profit is
        ``(Σ real profits + 1) × route length``, so its profit *density*
        strictly dominates every real candidate — density-greedy picks
        blockers first and the exact solver always prefers them, either
        way reproducing the admitted load before any real demand is
        placed.
        """
        p = self.ledger.problem
        n_real = len(demand_ids)
        blockers: list = []
        blocker_access: list = []
        if self.residual:
            ledger = self.ledger
            index = ledger.index
            # Only admitted load that can actually constrain the buffer
            # matters: a blocker sharing no edge with any candidate
            # placement of any buffered demand cannot change the solve,
            # so pruning it is exact (and keeps flush cost proportional
            # to the *contested* load, not the whole admitted set).
            relevant: set = set()
            for d in demand_ids:
                for cand in ledger.candidates(d).tolist():
                    relevant |= index.edges_of(cand)
            dominating = math.fsum(
                p.demands[d].profit for d in demand_ids) + 1.0
            tree = isinstance(p, TreeProblem)
            for _, iid in ledger.admitted_items():
                if relevant.isdisjoint(index.edges_of(iid)):
                    continue
                inst = ledger.instances[iid]
                if tree:
                    length = max(len(inst.path_edges), 1)
                    blockers.append(Demand(
                        demand_id=0, u=inst.u, v=inst.v,
                        profit=dominating * length, height=inst.height,
                    ))
                else:
                    length = inst.length
                    blockers.append(WindowDemand(
                        demand_id=0, release=inst.start,
                        deadline=inst.end, proc_time=length,
                        profit=dominating * length, height=inst.height,
                    ))
                blocker_access.append({inst.network_id})
        return subproblem_of(p, demand_ids, blockers, blocker_access), n_real

    def _flush(self) -> None:
        from ..algorithms import registry

        # Departed demands were only unlinked from the membership set;
        # filter them out here, once per flush.
        demand_ids = [d for d in self.buffer if d in self._buffered]
        self.buffer.clear()
        self._buffered.clear()
        if not demand_ids:
            return
        self.stats["flushes"] += 1
        sub, n_real = self._subproblem(demand_ids)
        self.stats["blockers"] += sub.num_demands - n_real
        solution = registry.solve(self.solver, sub, **self.solver_params)
        chosen = sorted(solution.selected, key=lambda d: (-d.profit, d.demand_id))
        ledger = self.ledger
        for inst in chosen:
            if inst.demand_id >= n_real:
                continue  # a blocker: admitted load, not a candidate
            orig = demand_ids[inst.demand_id]
            if isinstance(ledger.problem, TreeProblem):
                key = (orig, inst.network_id)
            else:
                key = (orig, inst.network_id, inst.start, inst.end)
            iid = self._lookup[key]
            if ledger.feasible([iid])[0]:
                ledger.admit(iid)
            else:
                self.stats["displaced"] += 1


class _PreemptiveAdmission(AdmissionPolicy):
    """Shared evict-and-admit epilogue for the preemptive policies.

    Subclasses provide ``self.penalty`` (compensation fraction per
    evictee) and the ``evictions`` / ``preempt_admits`` stats keys.
    """

    def _execute_preemption(self, iid: int, victims: list[int]) -> int:
        ledger = self.ledger
        for v in victims:
            v_profit = ledger.instances[ledger.admitted_instance(v)].profit
            ledger.evict(v, penalty=self.penalty * v_profit)
        self.stats["evictions"] += len(victims)
        self.stats["preempt_admits"] += 1
        ledger.admit(iid)
        return iid


class PreemptDensity(_PreemptiveAdmission):
    """First-fit admission with cheapest-density preemption.

    An arrival that fits is admitted exactly as ``greedy-threshold``
    would.  When *no* instance fits, the policy asks the ledger for the
    cheapest-density eviction set along each candidate route
    (:meth:`~repro.online.state.CapacityLedger.preemption_plan`) and
    preempts iff the arrival's profit strictly exceeds ``(factor +
    penalty)`` times the victims' total profit — the margin must also
    cover the compensation the policy will owe, so a swap is never
    executed at a penalty-adjusted loss relative to its own gate.  Among
    viable candidates the one whose victims cost least (ties: shorter
    route, lower instance id) wins.  Each eviction forfeits the victim's
    profit and charges ``penalty × victim profit`` to the penalty
    account.

    Parameters
    ----------
    factor:
        Preemption margin; the arrival must be worth strictly more than
        ``factor`` times the victims' combined profit.  Values below 1
        allow profit-losing swaps — useful only for experiments.
    penalty:
        Fraction of each evictee's profit charged as compensation
        (0 = preemption is free, 1 = evicting refunds the full profit
        again on top of forfeiting it).
    threshold:
        Profit-density floor for ordinary (non-preemptive) admissions,
        as in ``greedy-threshold``.
    """

    name = "preempt-density"

    def __init__(self, factor: float = 1.2, penalty: float = 0.0,
                 threshold: float = 0.0):
        if factor <= 0:
            raise ValueError("factor must be positive")
        if penalty < 0:
            raise ValueError("penalty must be >= 0")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.factor = float(factor)
        self.penalty = float(penalty)
        self.threshold = float(threshold)

    def bind(self, ledger: CapacityLedger) -> None:
        super().bind(ledger)
        self.stats = {"evictions": 0, "preempt_admits": 0,
                      "preempt_rejected": 0}

    def _best_plan(self, demand_id: int):
        """Cheapest viable ``(iid, victims)`` across the candidates."""
        ledger = self.ledger
        best = None
        best_key = None
        for iid in ledger.candidates(demand_id).tolist():
            length = ledger.route_length(iid)
            if ledger.instances[iid].profit / length < self.threshold:
                continue  # the density floor gates evictions too
            victims = ledger.preemption_plan(iid)
            if not victims:
                # [] = feasible without eviction (then try_admit already
                # declined it on density); None = cannot be freed.
                continue
            cost = math.fsum(
                ledger.instances[ledger.admitted_instance(v)].profit
                for v in victims
            )
            # The gate covers the compensation too: an eviction that
            # cannot pay its own penalty is never worth executing.
            if ledger.instances[iid].profit <= \
                    (self.factor + self.penalty) * cost:
                continue
            key = (cost, length, iid)
            if best_key is None or key < best_key:
                best, best_key = (iid, victims), key
        return best

    def on_arrival(self, demand_id: int) -> int | None:
        ledger = self.ledger
        iid = ledger.try_admit(demand_id, min_density=self.threshold)
        if iid is not None:
            return iid
        plan = self._best_plan(demand_id)
        if plan is None:
            self.stats["preempt_rejected"] += 1
            return None
        return self._execute_preemption(*plan)


class PreemptDualGated(DualGated, _PreemptiveAdmission):
    """Dual-gated admission with price-aware preemption.

    Behaves exactly like ``dual-gated`` while some instance fits.  When
    every candidate is capacity-blocked, the policy evaluates the
    cheapest-density eviction set per candidate route and admits through
    the candidate minimizing ``(1 + penalty) × victims' profit +
    post-eviction route price``, iff the arrival's profit strictly beats
    ``(1 + penalty) × victims' profit + eta ×
    price-of-the-freed-route`` — the victims' forfeits *and* the
    compensation owed on them, plus the dual price.  The price is the
    same exponential dual price the non-preemptive gate uses, evaluated
    at the loads the route *would* carry after the evictions — so
    preempting into a still congested route stays expensive.

    Parameters
    ----------
    eta, mu, history:
        As in :class:`DualGated`.
    penalty:
        Fraction of each evictee's profit charged as compensation.
    """

    name = "preempt-dual-gated"

    def __init__(self, eta: float = 1.0, mu: float | None = None,
                 penalty: float = 0.0, history: bool = False):
        super().__init__(eta=eta, mu=mu, history=history)
        if penalty < 0:
            raise ValueError("penalty must be >= 0")
        self.penalty = float(penalty)

    def batch_kernel(self) -> str | None:
        # Preemption decisions depend on the admitted set per event —
        # inherently sequential, so no vectorized kernel.
        return None

    def bind(self, ledger: CapacityLedger) -> None:
        super().bind(ledger)
        self.stats.update({"evictions": 0, "preempt_admits": 0,
                           "preempt_rejected": 0})

    def _freed_route_price(self, iid: int, victims: list[int]) -> float:
        """The dual price of ``iid``'s route after evicting ``victims``."""
        return self._price_from_loads(
            iid, self.ledger.route_loads_excluding(iid, victims)
        )

    def on_arrival(self, demand_id: int) -> int | None:
        ledger = self.ledger
        cands = ledger.candidates(demand_id)
        ok = ledger.feasible(cands)
        if ok.any():
            return self._admit_cheapest_feasible(cands, ok)
        best = None
        best_cost = math.inf
        for iid in cands.tolist():
            victims = ledger.preemption_plan(iid)
            if not victims:
                continue
            v_cost = (1.0 + self.penalty) * math.fsum(
                ledger.instances[ledger.admitted_instance(v)].profit
                for v in victims
            )
            price = self._freed_route_price(iid, victims)
            if ledger.instances[iid].profit <= v_cost + self.eta * price:
                continue
            cost = v_cost + price
            if cost < best_cost:
                best, best_cost = (iid, victims), cost
        if best is None:
            self.stats["capacity_blocked"] += 1
            self.stats["preempt_rejected"] += 1
            return None
        iid = self._execute_preemption(*best)
        self._note_peak(iid)
        return iid


_POLICY_CLASSES = {
    "greedy-threshold": GreedyThreshold,
    "dual-gated": DualGated,
    "batch-resolve": BatchResolve,
    "preempt-density": PreemptDensity,
    "preempt-dual-gated": PreemptDualGated,
}


def make_policy(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate a policy by registry name.

    Unknown names and bad keyword arguments both raise a friendly
    :class:`ValueError` (never a raw ``TypeError`` traceback), so CLI
    and runner layers can report them uniformly.

    >>> make_policy("dual-gated", eta=1.2)
    """
    try:
        cls = _POLICY_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}"
        ) from None
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for policy {name!r}: {exc}"
        ) from None
