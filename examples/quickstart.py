#!/usr/bin/env python
"""Quickstart: schedule point-to-point demands on two tree-networks.

Builds a tiny instance by hand, runs the paper's distributed
(7+ε)-approximation (Theorem 5.3), verifies feasibility, and compares
against the exact optimum and the dual certificate.

Run:  python examples/quickstart.py
"""

from repro import (
    Demand,
    TreeNetwork,
    TreeProblem,
    solve_optimal,
    solve_tree_unit,
    verify_tree_solution,
)


def main() -> None:
    # A shared vertex set 0..7 and two different spanning trees over it.
    net0 = TreeNetwork(8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
                       network_id=0)                       # a path
    net1 = TreeNetwork(8, [(0, 1), (0, 2), (0, 3), (3, 4), (3, 5), (5, 6), (5, 7)],
                       network_id=1)                       # a branchy tree

    # Five processors, each owning one demand ⟨u, v⟩ with a profit.
    demands = [
        Demand(0, u=0, v=7, profit=5.0),
        Demand(1, u=1, v=4, profit=3.0),
        Demand(2, u=2, v=6, profit=4.0),
        Demand(3, u=3, v=7, profit=2.0),
        Demand(4, u=0, v=5, profit=1.5),
    ]
    # Accessibility: which tree-networks each processor can schedule on.
    access = [{0, 1}, {0}, {0, 1}, {1}, {0, 1}]
    problem = TreeProblem(n=8, networks=[net0, net1], demands=demands,
                          access=[frozenset(a) for a in access])

    # The paper's main algorithm: distributed primal-dual with the ideal
    # tree decomposition (∆=6) and the multi-stage schedule (λ=1-ε).
    sol = solve_tree_unit(problem, epsilon=0.1, seed=0)
    verify_tree_solution(problem, sol)  # raises on any violation

    print("selected demand instances:")
    for inst in sorted(sol.selected, key=lambda d: d.demand_id):
        print(f"  demand {inst.demand_id}: ⟨{inst.u},{inst.v}⟩ "
              f"on network {inst.network_id}  (profit {inst.profit})")
    print(f"\nalgorithm profit : {sol.profit:.2f}")

    opt = solve_optimal(problem)
    print(f"exact optimum    : {opt.profit:.2f}")
    print(f"measured ratio   : {opt.profit / sol.profit:.3f} "
          f"(guarantee ≤ {sol.stats['approx_guarantee']:.2f})")
    print(f"dual certificate : OPT ≤ {sol.stats['opt_upper_bound']:.2f}")
    print(f"distributed cost : {sol.stats['total_rounds']} rounds "
          f"({sol.stats['steps']} primal-dual steps)")


if __name__ == "__main__":
    main()
