"""Composable pieces of the two-phase primal-dual engine.

The monolithic engine loop of the original ``framework`` module is split
into four orthogonal components so solver variants are *data*, not code:

* :class:`EpochSchedule` — the per-epoch stage targets ``1 - ξ^j`` (or a
  single fixed Panconesi–Sozio-style target);
* :class:`StageRule` — which raising rule a stage applies (Section 3.2's
  unit rule or Section 6.1's narrow rule, with or without α);
* :class:`PhaseOneEngine` — epochs × stages × MIS-and-raise steps over
  the layered groups, with the distributed round ledger;
* :class:`PhaseTwoGreedy` — the greedy stack unwind, packing either
  edge-disjointly or by height capacities through an incremental
  :class:`~repro.core.conflict.ActiveConflictSet`.

:class:`~repro.algorithms.framework.TwoPhaseEngine` composes the four;
the solver registry maps algorithm names onto configurations of them.
All hot-path arithmetic (unsatisfied filters, MIS raises, feasibility
probes) runs through the vectorized core primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..core.conflict import ConflictIndex
from ..core.duals import DualState
from ..distributed.mis import greedy_mis, luby_mis, priority_mis

__all__ = [
    "EpochSchedule",
    "StageRule",
    "PhaseOneEngine",
    "PhaseTwoGreedy",
    "EngineStats",
    "unit_xi",
    "narrow_xi",
    "stage_count",
]

_EPS = 1e-12


def unit_xi(delta: int) -> float:
    """Per-stage shrink ξ = 2∆′/(2∆′+1), ∆′ = ∆+1 (Section 5).

    ∆ = 6 gives 14/15 (trees); ∆ = 3 gives 8/9 (lines).
    """
    dprime = delta + 1
    return (2.0 * dprime) / (2.0 * dprime + 1.0)


def narrow_xi(delta: int, hmin: float) -> float:
    """ξ = c/(c + hmin) with c = 1 + 2∆² (Section 6's "suitable constant").

    Chosen so the kill-chain argument of Lemma 5.1 doubles profits: a
    raise of ``d1`` contributes at least ``2·hmin·|π|·δ ≥ 2·hmin·δ`` (or
    ``δ`` via the shared α) to a conflicting ``d2``'s LHS, and
    ``δ ≥ ξ^j p(d1)/(1+2∆²)``; requiring the stage gap
    ``(ξ^{j-1}-ξ^j)p(d2)`` to absorb that forces ``p(d2) ≥ 2·p(d1)``
    exactly when ``ξ/(1-ξ) = (1+2∆²)/hmin``.
    """
    if not (0.0 < hmin <= 0.5):
        raise ValueError(f"hmin must lie in (0, 1/2], got {hmin}")
    c = 1.0 + 2.0 * delta * delta
    return c / (c + hmin)


def stage_count(xi: float, epsilon: float) -> int:
    """Smallest ``b`` with ``ξ^b ≤ ε`` (the stages-per-epoch schedule)."""
    if not (0.0 < epsilon < 1.0):
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if not (0.0 < xi < 1.0):
        raise ValueError(f"xi must lie in (0, 1), got {xi}")
    b = int(np.ceil(np.log(epsilon) / np.log(xi)))
    return max(b, 1)


@dataclass(frozen=True)
class EpochSchedule:
    """The satisfaction targets every epoch runs through, in order."""

    targets: tuple[float, ...]

    @classmethod
    def multi_stage(cls, xi: float, epsilon: float) -> "EpochSchedule":
        """The paper's gradual schedule: targets ``1 - ξ^j``, j = 1..b."""
        b = stage_count(xi, epsilon)
        return cls(tuple(1.0 - xi**j for j in range(1, b + 1)))

    @classmethod
    def single_stage(cls, target: float) -> "EpochSchedule":
        """Panconesi–Sozio style: one fixed target per epoch."""
        return cls((target,))

    @classmethod
    def for_rule(
        cls,
        rule: str,
        delta: int,
        epsilon: float,
        hmin: float = 0.5,
        xi: float | None = None,
        single_stage_target: float | None = None,
    ) -> "EpochSchedule":
        """Resolve the schedule exactly as the theorems prescribe."""
        if single_stage_target is not None:
            return cls.single_stage(single_stage_target)
        if xi is None:
            xi = unit_xi(delta) if rule == "unit" else narrow_xi(delta, hmin)
        return cls.multi_stage(xi, epsilon)

    def __len__(self) -> int:
        return len(self.targets)


@dataclass(frozen=True)
class StageRule:
    """The raising rule a stage applies to its MIS."""

    rule: Literal["unit", "narrow"] = "unit"
    include_alpha: bool = True

    def raise_mis(self, duals: DualState, iids: np.ndarray) -> np.ndarray:
        """Raise a whole MIS to tightness; returns the per-instance δ."""
        if self.rule == "unit":
            return duals.raise_unit_batch(iids, self.include_alpha)
        return duals.raise_narrow_batch(iids)


@dataclass
class EngineStats:
    """Run ledger: everything the complexity theorems talk about."""

    epochs: int = 0
    stages: int = 0
    steps: int = 0
    mis_rounds: int = 0
    phase1_rounds: int = 0
    phase2_rounds: int = 0
    raises: int = 0
    steps_per_stage: list[int] = field(default_factory=list)
    dual_objective: float = 0.0
    realized_lambda: float = 0.0
    opt_upper_bound: float = 0.0
    delta: int = 0
    stage_schedule: list[float] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        """Distributed rounds: phase 1 (MIS + broadcast per step) + phase 2."""
        return self.phase1_rounds + self.phase2_rounds

    @property
    def max_steps_in_a_stage(self) -> int:
        """Largest step count of any (epoch, stage) — Lemma 5.1's L."""
        return max(self.steps_per_stage, default=0)


class PhaseOneEngine:
    """Epochs of MIS-and-raise steps over the layered groups.

    Parameters
    ----------
    groups:
        The epoch schedule ``G_1, G_2, ...`` (instance-id lists).
    conflicts / duals:
        The shared core structures; ``duals`` must have the critical
        sets registered (see :meth:`~repro.core.duals.DualState.set_critical`).
    schedule / rule:
        Stage targets and raising rule.
    mis:
        ``"luby"`` (round-faithful, randomized), ``"greedy"``
        (deterministic, fast, counted as 1 round/step), or
        ``"priority"`` (deterministic *and* round-faithful).
    rng:
        Random source for Luby.
    max_steps:
        Safety valve per stage (the kill-chain bound of Lemma 5.1 keeps
        real runs far below it; hitting it is a bug).
    """

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        conflicts: ConflictIndex,
        duals: DualState,
        schedule: EpochSchedule,
        rule: StageRule,
        mis: str = "luby",
        rng: np.random.Generator | None = None,
        max_steps: int = 100_000,
    ):
        self.groups = groups
        self.conflicts = conflicts
        self.duals = duals
        self.schedule = schedule
        self.rule = rule
        self.mis = mis
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.max_steps = max_steps

    def _mis(self, population: set[int]) -> tuple[set[int], int]:
        adj = self.conflicts.subgraph(population)
        if self.mis == "greedy":
            return greedy_mis(adj)
        if self.mis == "priority":
            return priority_mis(adj)
        return luby_mis(adj, self.rng)

    def run(self, stats: EngineStats) -> list[list[int]]:
        """Execute the first phase; returns the raise stack."""
        stack: list[list[int]] = []
        duals = self.duals
        for group in self.groups:
            stats.epochs += 1
            if not group:
                continue
            group_arr = np.asarray(group, dtype=np.int64)
            group_plan = duals.make_plan(group_arr)
            for target in self.schedule.targets:
                stats.stages += 1
                stage_steps = 0
                while True:
                    mask = duals.unsatisfied_mask(
                        group_arr, target, _EPS, plan=group_plan
                    )
                    if not mask.any():
                        break
                    unsat = set(group_arr[mask].tolist())
                    mis, rounds = self._mis(unsat)
                    mis_sorted = sorted(mis)
                    self.rule.raise_mis(
                        duals, np.asarray(mis_sorted, dtype=np.int64)
                    )
                    stats.raises += len(mis_sorted)
                    stack.append(mis_sorted)
                    stats.steps += 1
                    stage_steps += 1
                    stats.mis_rounds += rounds
                    stats.phase1_rounds += rounds + 1
                    if stage_steps > self.max_steps:
                        raise RuntimeError(
                            f"stage exceeded {self.max_steps} steps — the "
                            "kill-chain bound should prevent this"
                        )
                stats.steps_per_stage.append(stage_steps)
        return stack


class PhaseTwoGreedy:
    """Pop the raise stack in reverse; insert while feasibility permits.

    Feasibility is probed against an incremental
    :class:`~repro.core.conflict.ActiveConflictSet` — one batched query
    per popped step (the members of a step are pairwise non-conflicting,
    so their probes are independent) instead of a per-pair rebuild.
    """

    def __init__(self, conflicts: ConflictIndex, capacities: bool = False):
        self.conflicts = conflicts
        self.capacities = capacities

    def run(self, stack: Sequence[Sequence[int]], stats: EngineStats) -> list[int]:
        """Returns the chosen instance ids, in selection order."""
        active = self.conflicts.active_set(capacities=self.capacities)
        chosen: list[int] = []
        for group in reversed(stack):
            stats.phase2_rounds += 1
            arr = np.asarray(group, dtype=np.int64)
            keep = arr[~active.blocked_mask(arr)]
            active.add_all(keep)
            chosen.extend(keep.tolist())
        return chosen
