"""Compile problems into :class:`~repro.algorithms.framework.EngineInput`.

The engine is network-agnostic: it sees instances, global edges, critical
edges and an epoch schedule.  This module builds those from a
:class:`~repro.core.instance.TreeProblem` (via per-network tree
decompositions + Lemma 4.2 layering) or a
:class:`~repro.core.instance.LineProblem` (via the Section 7 length
buckets), merging the per-network groups index-by-index as Figure 7's
``G_k = ∪_q G_k^{(q)}`` prescribes.

Both compilers accept an instance filter so the narrow/wide split of
Section 6 can compile sub-populations without rebuilding problems.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..core.instance import LineProblem, TreeProblem
from ..decomposition.base import TreeDecomposition
from ..decomposition.ideal import ideal_decomposition
from ..decomposition.layered import line_layers, tree_layers
from ..network.tree import TreeNetwork
from .framework import EngineInput

__all__ = ["compile_tree", "compile_line"]

#: ∆ guaranteed by the ideal decomposition's layering (Lemma 4.3).
TREE_DELTA = 6
#: ∆ of the line length-bucket layering (Section 7).
LINE_DELTA = 3


def compile_tree(
    problem: TreeProblem,
    *,
    decomposition: Callable[[TreeNetwork], TreeDecomposition] = ideal_decomposition,
    instance_filter: Callable[..., bool] | None = None,
) -> EngineInput:
    """Build the engine input for a tree problem.

    Parameters
    ----------
    problem:
        The tree-network instance.
    decomposition:
        Tree-decomposition constructor applied to every network
        (default: the ideal decomposition — ``∆ = 6``).  Swapping in
        :func:`~repro.decomposition.rooted.root_fixing_decomposition`
        (``∆ = 4``, depth up to ``n``) or
        :func:`~repro.decomposition.balanced.balancing_decomposition`
        (``∆ = O(log n)``) is the E13 ablation.
    instance_filter:
        Optional predicate over instances; only matching instances are
        compiled (ids are re-densified).
    """
    all_instances = problem.instances()
    if instance_filter is not None:
        all_instances = [d for d in all_instances if instance_filter(d)]
    # Re-densify instance ids (frozen dataclass: replace).
    instances = [
        dataclasses.replace(d, instance_id=i) for i, d in enumerate(all_instances)
    ]

    by_network: dict[int, list] = {}
    for d in instances:
        by_network.setdefault(d.network_id, []).append(d)

    groups_per_net: list[list[list[int]]] = []
    critical: dict[int, tuple] = {}
    delta = 0
    for q, net_instances in sorted(by_network.items()):
        td = decomposition(problem.networks[q])
        ld = tree_layers(td, net_instances)
        groups_per_net.append(ld.groups)
        for iid, crit in ld.critical.items():
            critical[iid] = tuple((q, ek) for ek in crit)
        # The analytical ∆ for this decomposition is 2(θ+1); the measured
        # per-instance sets may be smaller.  Use the guarantee so the
        # stage schedule matches the theorems.
        delta = max(delta, 2 * (td.pivot_size + 1), ld.delta)

    ell_max = max((len(g) for g in groups_per_net), default=0)
    groups: list[list[int]] = [[] for _ in range(ell_max)]
    for net_groups in groups_per_net:
        for k, grp in enumerate(net_groups):
            groups[k].extend(grp)

    edges_of = [
        frozenset((d.network_id, ek) for ek in d.path_edges) for d in instances
    ]
    return EngineInput(
        instances=instances,
        edges_of=edges_of,
        critical=critical,
        groups=groups,
        delta=delta if delta else TREE_DELTA,
        networks=problem.networks,
    )


def compile_line(
    problem: LineProblem,
    *,
    instance_filter: Callable[..., bool] | None = None,
) -> EngineInput:
    """Build the engine input for a line problem (Section 7 layering).

    The length buckets are global (length does not depend on the
    resource), so one layering covers all resources; critical timeslots
    become global ``(resource, slot)`` edges.
    """
    all_instances = problem.instances()
    if instance_filter is not None:
        all_instances = [d for d in all_instances if instance_filter(d)]
    instances = [
        dataclasses.replace(d, instance_id=i) for i, d in enumerate(all_instances)
    ]
    ld = line_layers(instances)
    critical = {
        iid: tuple((instances[iid].network_id, t) for t in crit)
        for iid, crit in ld.critical.items()
    }
    edges_of = [
        frozenset((d.network_id, t) for t in range(d.start, d.end + 1))
        for d in instances
    ]
    return EngineInput(
        instances=instances,
        edges_of=edges_of,
        critical=critical,
        groups=ld.groups,
        delta=max(LINE_DELTA, ld.delta),
    )
