"""Solutions and feasibility verification.

A feasible solution (Section 2 / Section 6) is a set of demand instances
such that (i) at most one instance per demand is selected, and (ii) on
every edge of every network the selected instances' heights sum to at most
one unit (edge-disjointness in the unit-height case).

:class:`Solution` is algorithm-output; :func:`verify_tree_solution` and
:func:`verify_line_solution` re-check feasibility from scratch against the
problem definition — every algorithm's output is validated by these in the
test suite, independently of the algorithm's own bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from .demand import LineDemandInstance, TreeDemandInstance
from .instance import LineProblem, TreeProblem

__all__ = [
    "Solution",
    "FeasibilityError",
    "verify_tree_solution",
    "verify_line_solution",
]

#: Tolerance for floating-point capacity sums.
_CAP_EPS = 1e-9


class FeasibilityError(AssertionError):
    """Raised when a claimed solution violates the problem constraints."""


@dataclass
class Solution:
    """A selected set of demand instances plus bookkeeping.

    Attributes
    ----------
    selected:
        The chosen demand instances.
    stats:
        Free-form metrics recorded by the producing algorithm (rounds,
        steps, dual objective, measured slackness, ...).
    """

    selected: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def profit(self) -> float:
        """Total profit of the selected instances.

        ``fsum`` so the reported total is identical for any selection
        order — snapshots built from hash-ordered admitted maps must
        price the same as ones built in admission order.
        """
        return math.fsum(inst.profit for inst in self.selected)

    @property
    def size(self) -> int:
        """Number of selected instances."""
        return len(self.selected)

    def demand_ids(self) -> set[int]:
        """Demand ids covered by the solution."""
        return {inst.demand_id for inst in self.selected}

    def by_network(self) -> dict[int, list]:
        """Selected instances grouped by network id."""
        out: dict[int, list] = {}
        for inst in self.selected:
            out.setdefault(inst.network_id, []).append(inst)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Solution(size={self.size}, profit={self.profit:.4g})"


def _check_one_instance_per_demand(selected: Sequence) -> None:
    seen: set[int] = set()
    for inst in selected:
        if inst.demand_id in seen:
            raise FeasibilityError(
                f"demand {inst.demand_id} has more than one selected instance"
            )
        seen.add(inst.demand_id)


def verify_tree_solution(
    problem: TreeProblem, solution: Solution, *, unit_height: bool | None = None
) -> None:
    """Validate ``solution`` against ``problem`` from first principles.

    Checks accessibility, the one-instance-per-demand rule, that each
    cached route equals the tree path recomputed from the network, and the
    per-edge bandwidth constraint (edge-disjointness when
    ``unit_height``).

    Raises
    ------
    FeasibilityError
        On any violation.
    """
    if unit_height is None:
        unit_height = problem.unit_height
    _check_one_instance_per_demand(solution.selected)
    load: dict[tuple[int, tuple[int, int]], float] = {}
    for inst in solution.selected:
        if not isinstance(inst, TreeDemandInstance):
            raise FeasibilityError(f"not a tree demand instance: {inst!r}")
        if inst.network_id not in problem.access[inst.demand_id]:
            raise FeasibilityError(
                f"demand {inst.demand_id} scheduled on inaccessible network "
                f"{inst.network_id}"
            )
        demand = problem.demands[inst.demand_id]
        if (inst.u, inst.v) != (demand.u, demand.v):
            raise FeasibilityError(
                f"instance endpoints {(inst.u, inst.v)} disagree with demand "
                f"{inst.demand_id} endpoints {(demand.u, demand.v)}"
            )
        net = problem.networks[inst.network_id]
        true_path = tuple(net.path_edges(inst.u, inst.v))
        if tuple(inst.path_edges) != true_path:
            raise FeasibilityError(
                f"instance {inst.instance_id} cached route disagrees with the "
                f"tree path on network {inst.network_id}"
            )
        for ek in true_path:
            key = (inst.network_id, ek)
            load[key] = load.get(key, 0.0) + inst.height
    for key, total in load.items():
        limit = 1.0 + (_CAP_EPS if not unit_height else 0.0)
        if unit_height:
            # Edge-disjointness: at most one unit-height instance per edge.
            if total > 1.0:
                raise FeasibilityError(
                    f"edge {key} carries height {total} > 1 (unit case: paths "
                    "must be edge-disjoint)"
                )
        elif total > limit:
            raise FeasibilityError(f"edge {key} carries height {total} > 1")


def verify_line_solution(
    problem: LineProblem, solution: Solution, *, unit_height: bool | None = None
) -> None:
    """Validate a line-network solution (windows semantics, Section 7).

    Checks accessibility, one instance per demand, that each instance's
    interval is a legal placement of the demand's window, and the
    per-(resource, timeslot) bandwidth constraint.

    Raises
    ------
    FeasibilityError
        On any violation.
    """
    if unit_height is None:
        unit_height = problem.unit_height
    _check_one_instance_per_demand(solution.selected)
    load: dict[tuple[int, int], float] = {}
    for inst in solution.selected:
        if not isinstance(inst, LineDemandInstance):
            raise FeasibilityError(f"not a line demand instance: {inst!r}")
        if inst.network_id not in problem.access[inst.demand_id]:
            raise FeasibilityError(
                f"demand {inst.demand_id} scheduled on inaccessible resource "
                f"{inst.network_id}"
            )
        demand = problem.demands[inst.demand_id]
        if inst.length != demand.proc_time:
            raise FeasibilityError(
                f"instance {inst.instance_id} runs {inst.length} slots; demand "
                f"{inst.demand_id} needs {demand.proc_time}"
            )
        if inst.start < demand.release or inst.end > demand.deadline:
            raise FeasibilityError(
                f"instance {inst.instance_id} interval {inst.interval} escapes "
                f"window [{demand.release}, {demand.deadline}]"
            )
        for t in range(inst.start, inst.end + 1):
            key = (inst.network_id, t)
            load[key] = load.get(key, 0.0) + inst.height
    for key, total in load.items():
        if unit_height:
            if total > 1.0:
                raise FeasibilityError(
                    f"timeslot {key} carries height {total} > 1 (unit case)"
                )
        elif total > 1.0 + _CAP_EPS:
            raise FeasibilityError(f"timeslot {key} carries height {total} > 1")
