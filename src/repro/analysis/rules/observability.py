"""Span lifecycle discipline for the flight recorder.

:func:`repro.obs.tracing.span` records on ``__exit__`` — a span only
reaches the ring if its context manager exits.  Calling ``span(...)``
anywhere except a ``with`` item (or an ``ExitStack.enter_context``)
creates an enter that exceptions can separate from its exit: the span
silently vanishes from the trace, or worse, a hand-rolled
``__enter__``/``__exit__`` pair leaks the enter on the error path the
recorder exists to document.  The ``with`` statement is the only
construct the language guarantees balances the pair.
"""

from __future__ import annotations

import ast

from ..base import Fixture, ParsedFile, Rule, call_name, register
from ..findings import Finding

__all__ = ["SpanLifecycleRule"]


def _is_span_call(node: ast.Call) -> bool:
    name = call_name(node)
    return name is not None and (name == "span" or name.endswith(".span"))


def _allowed_span_calls(tree: ast.Module):
    """ids of span calls whose exit is structurally guaranteed."""
    allowed: set = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                allowed.add(id(item.context_expr))
        elif isinstance(node, ast.Call):
            # stack.enter_context(span(...)) — the ExitStack owns the
            # exit, same guarantee as a with item.
            target = call_name(node)
            if target and target.rsplit(".", 1)[-1] == "enter_context":
                for arg in node.args:
                    allowed.add(id(arg))
    return allowed


@register
class SpanLifecycleRule(Rule):
    id = "OBS001"
    name = "span-enter-without-guaranteed-exit"
    rationale = (
        "span() records on __exit__: only a with statement (or an "
        "ExitStack.enter_context) guarantees the exit runs on every "
        "path, exceptions included.  A bare call, a stored span with "
        "manual __enter__/__exit__, or a span passed around as a value "
        "can leak its enter on the error path — the trace then lies by "
        "omission exactly when it matters most."
    )
    scope = "file"
    default_path = "obs/usage.py"
    fixtures = [
        Fixture(
            bad=(
                "from repro.obs import span\n"
                "def decide(self, event):\n"
                "    s = span('session.decide', demand=event.demand)\n"
                "    s.__enter__()\n"
                "    outcome = self.policy.decide(event)\n"
                "    s.__exit__(None, None, None)\n"
                "    return outcome\n"
            ),
            good=(
                "from repro.obs import span\n"
                "def decide(self, event):\n"
                "    with span('session.decide', demand=event.demand):\n"
                "        return self.policy.decide(event)\n"
            ),
            note="an exception between the manual enter and exit drops "
                 "the span from the ring; with-blocks record it with "
                 "the error attached",
        ),
        Fixture(
            bad=(
                "from repro.obs import tracing\n"
                "def flush(self):\n"
                "    tracing.span('journal.commit', records=len(self._q))\n"
                "    self._fh.flush()\n"
            ),
            good=(
                "from repro.obs import tracing\n"
                "def flush(self):\n"
                "    with tracing.span('journal.commit',\n"
                "                      records=len(self._q)):\n"
                "        self._fh.flush()\n"
            ),
            note="a bare span(...) call never enters at all — nothing "
                 "is recorded and the timing silently disappears",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        allowed = _allowed_span_calls(parsed.tree)
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call) or not _is_span_call(node):
                continue
            if id(node) in allowed:
                continue
            yield Finding(
                path=str(parsed.path), line=node.lineno,
                col=node.col_offset, rule=self.id,
                message="span(...) outside a with item has no guaranteed "
                        "__exit__; use `with span(...):` (or "
                        "ExitStack.enter_context) so the span is recorded "
                        "on every path",
            )
