"""The async multi-client front door: one event loop, many connections.

:class:`AsyncLineServer` multiplexes any number of concurrent TCP
clients over the service's JSON-line protocol with a single-threaded
:mod:`selectors` loop — no thread per connection, no async framework,
just non-blocking sockets and explicit buffers:

* **Per-connection buffers** — bytes are read into a per-connection
  receive buffer and split on newlines; responses queue in a
  per-connection write buffer flushed as the socket drains.
* **Bounded backpressure** — a connection whose write buffer passes the
  high-water mark stops being *read* (and stops having its pipelined
  requests dispatched) until the buffer drains below the low-water
  mark, so one slow reader cannot balloon server memory; a request
  line longer than ``max_line_bytes`` is discarded (the overflow is
  drained to the next newline) and answered with a friendly
  ``{"ok": false}`` over-limit response.
* **Request ids** — a client may attach an ``id`` to any request; the
  service echoes it in the response, so pipelined clients can match
  responses to requests without counting lines.
* **Fair dispatch** — buffered requests are served round-robin, one
  request per connection per pass, into the *shared*
  :class:`~repro.service.AdmissionService` (one session, one journal:
  group-commit windows amortize across clients).
* **Graceful drain** — a successful ``close`` request, SIGTERM/SIGINT,
  or :meth:`request_shutdown` stops accepting, commits the journal's
  group-commit window, notifies every other client with a final
  ``shutdown`` watermark line, flushes what the sockets will take, and
  returns.  A killed server is still exactly resumable from its
  journal — the drain just upgrades "crash-consistent" to "polite".

The ``stats`` op's ``server`` section carries live transport counters
here — connected clients, per-client request counts, the dispatch
queue depth, backpressured clients, and the journal commit watermark
lag (``seq - commit_seq``); other transports return the same keys as
nulls, so dashboards never special-case the front door.
"""

from __future__ import annotations

import json
import selectors
import signal
import socket
import threading
import time

from ..obs import tracing as _tracing
from .service import AdmissionService

__all__ = ["AsyncLineServer", "serve_async"]

_RECV_CHUNK = 65536
#: Stop reading a connection whose pending responses exceed this.
_HIGH_WATER = 256 * 1024
_LOW_WATER = 64 * 1024


class _Conn:
    """One client connection's buffers and counters."""

    __slots__ = ("sock", "client", "rbuf", "wbuf", "pending", "requests",
                 "overflow", "closing", "reading")

    def __init__(self, sock: socket.socket, client: int):
        self.sock = sock
        self.client = client          # stable id for stats/logs
        self.rbuf = bytearray()       # bytes read, no newline yet
        self.wbuf = bytearray()       # responses waiting for the socket
        self.pending: list[bytes] = []  # complete request lines, FIFO
        self.requests = 0             # requests served on this conn
        self.overflow = False         # discarding an oversized line
        self.closing = False          # close after wbuf drains
        self.reading = True           # read-interest currently registered


class AsyncLineServer:
    """Serve many concurrent line-protocol clients on one thread.

    Parameters
    ----------
    service:
        The shared :class:`~repro.service.AdmissionService` (one
        session + journal for every client).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port.
    max_clients:
        Accepted-connection cap; a client beyond it receives one
        ``{"ok": false}`` line and is closed.
    max_line_bytes:
        Request-line byte cap (see the module docstring).
    announce:
        Callable given the bound ``(host, port)`` before serving.
    log:
        Callable given human-readable progress lines (connects,
        disconnects, drain); ``None`` disables logging.
    """

    def __init__(self, service: AdmissionService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_clients: int = 128,
                 max_line_bytes: int = 1 << 20,
                 high_water: int = _HIGH_WATER,
                 announce=None, log=None):
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        if max_line_bytes < 2:
            raise ValueError(
                f"max_line_bytes must be >= 2, got {max_line_bytes}")
        self.service = service
        self.host = host
        self.port = port
        self.max_clients = max_clients
        self.max_line_bytes = max_line_bytes
        self.high_water = high_water
        self.low_water = max(1, min(_LOW_WATER, high_water // 4))
        self.announce = announce
        self.log = log or (lambda msg: None)
        self._sel: selectors.BaseSelector | None = None
        self._conns: dict[int, _Conn] = {}  # fd -> conn
        self._next_client = 0
        self._total_requests = 0
        self._overlimit_rejects = 0
        self._shutdown = threading.Event()
        self._wake_w: socket.socket | None = None
        self.close_response: dict | None = None
        # Surface this transport's counters through the service's own
        # stats op, so every client sees the same `server` section.
        service.server_stats_provider = self.server_stats

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the loop to drain and stop (signal- and thread-safe)."""
        self._shutdown.set()
        wake = self._wake_w
        if wake is not None:
            try:
                wake.send(b"x")
            except OSError:
                pass

    def server_stats(self) -> dict:
        """The transport-level observability block (``stats`` op)."""
        doc = {
            "clients": len(self._conns),
            "max_clients": self.max_clients,
            "requests_total": self._total_requests,
            "requests_per_client": {
                str(c.client): c.requests for c in self._conns.values()
            },
            "dispatch_queue_depth": sum(
                len(c.pending) for c in self._conns.values()
            ),
            "backpressured_clients": sum(
                1 for c in self._conns.values() if not c.reading
            ),
            "overlimit_rejects": self._overlimit_rejects,
        }
        journal = self.service.journal
        doc["commit_lag"] = (journal.seq - journal.commit_seq
                             if journal is not None else None)
        return doc

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def serve_forever(self) -> dict | None:
        """Accept and serve until a ``close`` request or shutdown.

        Returns the ``close`` response when one was served, else
        ``None`` (drained by signal / :meth:`request_shutdown` — the
        journal then carries everything applied, ready for ``repro
        resume``).
        """
        sel = self._sel = selectors.DefaultSelector()
        wake_r, wake_w = socket.socketpair()
        wake_r.setblocking(False)
        wake_w.setblocking(False)
        self._wake_w = wake_w
        restore: list[tuple[int, object]] = []
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    restore.append((sig, signal.signal(
                        sig, lambda *_: self.request_shutdown())))
                except (ValueError, OSError):
                    pass
        try:
            with socket.create_server(
                    (self.host, self.port), backlog=self.max_clients) as ls:
                ls.setblocking(False)
                if self.announce is not None:
                    self.announce(ls.getsockname()[:2])
                sel.register(ls, selectors.EVENT_READ, "listen")
                sel.register(wake_r, selectors.EVENT_READ, "wake")
                return self._loop(ls, wake_r)
        finally:
            for sig, old in restore:
                signal.signal(sig, old)
            for conn in list(self._conns.values()):
                self._drop(conn)
            self._wake_w = None
            wake_w.close()
            wake_r.close()
            sel.close()
            self._sel = None

    def _loop(self, listener, wake_r) -> dict | None:
        sel = self._sel
        while True:
            if self._shutdown.is_set():
                self._drain_and_notify()
                return None
            for key, _mask in sel.select():
                tag = key.data
                if tag == "listen":
                    self._accept(listener)
                elif tag == "wake":
                    try:
                        wake_r.recv(4096)
                    except OSError:
                        pass
                else:
                    conn = tag
                    if _mask_readable(key, _mask):
                        self._read(conn)
                    if conn.sock.fileno() != -1 and _mask_writable(key,
                                                                   _mask):
                        self._flush(conn)
            self._dispatch_round_robin()
            if self.close_response is not None:
                self._drain_and_notify(notify=False)
                return self.close_response

    # ------------------------------------------------------------------
    # Accept / read / write
    # ------------------------------------------------------------------

    def _accept(self, listener) -> None:
        while True:
            try:
                sock, addr = listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            if len(self._conns) >= self.max_clients or self._shutdown.is_set():
                reason = ("server draining" if self._shutdown.is_set()
                          else f"server at max-clients capacity "
                               f"({self.max_clients})")
                # Best-effort notice on a non-blocking socket: a freshly
                # accepted connection has an empty send buffer, so one
                # small send() takes it whole; a sendall() here could
                # stall the loop behind a zero-window client.
                sock.setblocking(False)
                try:
                    sock.send((json.dumps(
                        {"ok": False, "error": reason}) + "\n").encode())
                except OSError:
                    pass
                sock.close()
                continue
            sock.setblocking(False)
            conn = _Conn(sock, self._next_client)
            self._next_client += 1
            self._conns[sock.fileno()] = conn
            self._sel.register(sock, selectors.EVENT_READ, conn)
            self.log(f"client {conn.client} connected from {addr} "
                     f"({len(self._conns)} online)")

    def _read(self, conn: _Conn) -> None:
        budget = 4 * _RECV_CHUNK  # bounded per select cycle — fairness
        while budget > 0:
            try:
                chunk = conn.sock.recv(_RECV_CHUNK)
            except BlockingIOError:
                break
            except OSError:
                self._drop(conn)
                return
            if not chunk:  # EOF
                if not conn.wbuf and not conn.pending:
                    self._drop(conn)
                else:
                    conn.closing = True
                    self._stop_reading(conn)
                return
            budget -= len(chunk)
            self._ingest(conn, chunk)
        if len(conn.wbuf) > self.high_water:
            self._stop_reading(conn)

    def _ingest(self, conn: _Conn, chunk: bytes) -> None:
        """Split ``chunk`` into request lines, enforcing the byte cap."""
        conn.rbuf += chunk
        while True:
            nl = conn.rbuf.find(b"\n")
            if nl < 0:
                if conn.overflow:
                    conn.rbuf.clear()
                elif len(conn.rbuf) > self.max_line_bytes:
                    conn.overflow = True
                    conn.rbuf.clear()
                    self._reject_overlimit(conn)
                return
            line = bytes(conn.rbuf[:nl])
            del conn.rbuf[:nl + 1]
            if conn.overflow:
                # The newline ends the oversized line; drop it and
                # resume normal parsing.
                conn.overflow = False
                continue
            if len(line) > self.max_line_bytes:
                self._reject_overlimit(conn)
                continue
            if line.strip():
                conn.pending.append(line)

    def _reject_overlimit(self, conn: _Conn) -> None:
        self._overlimit_rejects += 1
        self._emit(conn, {
            "ok": False,
            "error": (f"request line exceeds {self.max_line_bytes} bytes; "
                      "split the batch or raise --max-line-bytes"),
        })

    def _emit(self, conn: _Conn, doc: dict) -> None:
        conn.wbuf += json.dumps(doc).encode() + b"\n"
        self._flush(conn)

    def _flush(self, conn: _Conn) -> None:
        sock = conn.sock
        while conn.wbuf:
            try:
                sent = sock.send(conn.wbuf)
            except BlockingIOError:
                break
            except OSError:
                self._drop(conn)
                return
            if sent <= 0:
                break
            del conn.wbuf[:sent]
        self._update_interest(conn)
        if conn.closing and not conn.wbuf and not conn.pending:
            self._drop(conn)

    def _update_interest(self, conn: _Conn) -> None:
        fd = conn.sock.fileno()
        if fd == -1 or fd not in self._conns:
            return
        want = selectors.EVENT_WRITE if conn.wbuf else 0
        resume = (not conn.reading and not conn.closing
                  and len(conn.wbuf) < self.low_water)
        if resume:
            conn.reading = True
            self.log(f"client {conn.client} resumed (write queue drained)")
        if conn.reading:
            want |= selectors.EVENT_READ
        try:
            self._sel.modify(conn.sock, want or selectors.EVENT_READ, conn)
        except (KeyError, ValueError):
            pass

    def _stop_reading(self, conn: _Conn) -> None:
        if conn.reading:
            conn.reading = False
            self.log(f"client {conn.client} backpressured "
                     f"({len(conn.wbuf)} bytes queued)")
        self._update_interest(conn)

    def _drop(self, conn: _Conn) -> None:
        fd = conn.sock.fileno()
        self._conns.pop(fd, None)
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self.log(f"client {conn.client} disconnected "
                 f"({conn.requests} requests, {len(self._conns)} online)")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch_round_robin(self) -> None:
        """Serve buffered requests one-per-connection per pass.

        Interleaving passes (instead of draining one connection fully)
        is what makes N pipelined clients fair; a backpressured
        connection is skipped until its responses drain.
        """
        while self.close_response is None:
            progressed = False
            for conn in list(self._conns.values()):
                if not conn.pending or len(conn.wbuf) > self.high_water:
                    continue
                line = conn.pending.pop(0)
                self._serve_line(conn, line)
                progressed = True
                if self.close_response is not None:
                    break
            if not progressed:
                return

    def _serve_line(self, conn: _Conn, line: bytes) -> None:
        conn.requests += 1
        self._total_requests += 1
        try:
            req = json.loads(line)
        except ValueError as exc:
            self._emit(conn, {"ok": False,
                              "error": f"bad request JSON: {exc}"})
            return
        if not isinstance(req, dict):
            self._emit(conn, {"ok": False,
                              "error": "request must be a JSON object"})
            return
        rec = _tracing.RECORDER
        if rec.enabled:
            t0 = time.perf_counter_ns()
            resp = self.service.handle(req)
            rec.record("server.dispatch", t0, time.perf_counter_ns() - t0,
                       {"client": conn.client, "op": req.get("op")})
        else:
            resp = self.service.handle(req)
        self._emit(conn, resp)
        if resp.get("op") == "close" and resp.get("ok"):
            self.close_response = resp
            conn.closing = True

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def _drain_and_notify(self, notify: bool = True) -> None:
        """Flush the journal's commit window, tell every client the
        final watermarks, and push out what the sockets will take."""
        journal = self.service.journal
        watermarks = {}
        if journal is not None and not self.service.session.closed:
            journal.commit()
            watermarks = {"seq": journal.seq,
                          "commit_seq": journal.commit_seq}
        self.log(f"draining: {len(self._conns)} client(s), "
                 f"position {self.service.position}"
                 + (f", committed seq {watermarks['commit_seq']}"
                    if watermarks else ""))
        for conn in list(self._conns.values()):
            if notify and not conn.closing:
                self._emit(conn, {"ok": True, "op": "shutdown",
                                  "position": self.service.position,
                                  **watermarks})
            conn.closing = True
            self._flush(conn)


def _mask_readable(key, mask) -> bool:
    return bool(mask & selectors.EVENT_READ)


def _mask_writable(key, mask) -> bool:
    return bool(mask & selectors.EVENT_WRITE)


def serve_async(service: AdmissionService, host: str = "127.0.0.1",
                port: int = 0, *, max_clients: int = 128,
                max_line_bytes: int = 1 << 20,
                announce=None, log=None) -> dict | None:
    """Run an :class:`AsyncLineServer` to completion (the ``repro serve
    --async`` entry point).  Returns the ``close`` response, if any."""
    server = AsyncLineServer(service, host, port,
                             max_clients=max_clients,
                             max_line_bytes=max_line_bytes,
                             announce=announce, log=log)
    return server.serve_forever()
