"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_tree, random_line_problem, random_tree_problem
from repro.workloads import TREE_TOPOLOGIES


class TestMakeTree:
    @pytest.mark.parametrize("topology", TREE_TOPOLOGIES)
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50])
    def test_valid_tree(self, topology, n):
        t = make_tree(n, topology, seed=0)
        assert t.n == n
        assert len(t.edges) == n - 1  # TreeNetwork validated connectivity

    def test_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_tree(5, "hypercube")

    def test_path_is_path(self):
        t = make_tree(6, "path")
        degrees = sorted(t.degree(v) for v in range(6))
        assert degrees == [1, 1, 2, 2, 2, 2]

    def test_star_is_star(self):
        t = make_tree(6, "star")
        assert t.degree(0) == 5

    def test_random_trees_vary_with_seed(self):
        a = make_tree(20, "random", seed=1)
        b = make_tree(20, "random", seed=2)
        assert a.edges != b.edges

    def test_seeded_reproducibility(self):
        a = make_tree(20, "random", seed=42)
        b = make_tree(20, "random", seed=42)
        assert a.edges == b.edges

    def test_generator_object_advances(self):
        rng = np.random.default_rng(0)
        a = make_tree(15, "random", seed=rng)
        b = make_tree(15, "random", seed=rng)
        assert a.edges != b.edges  # same Generator, consumed sequentially


class TestRandomTreeProblem:
    def test_shapes(self):
        p = random_tree_problem(n=20, m=15, r=3, seed=0)
        assert p.num_demands == 15
        assert p.num_networks == 3

    @pytest.mark.parametrize("regime,lo,hi", [
        ("unit", 1.0, 1.0),
        ("narrow", 0.0, 0.5),
        ("wide", 0.5, 1.0),
        ("mixed", 0.0, 1.0),
        ("bimodal", 0.0, 1.0),
    ])
    def test_height_regimes(self, regime, lo, hi):
        p = random_tree_problem(n=16, m=30, r=1, seed=1,
                                height_regime=regime, hmin=0.05)
        for a in p.demands:
            assert lo <= a.height <= hi + 1e-12

    def test_unknown_regime(self):
        with pytest.raises(ValueError, match="regime"):
            random_tree_problem(n=10, m=5, seed=0, height_regime="gaussian")

    def test_profit_ratio_respected(self):
        p = random_tree_problem(n=16, m=50, r=1, seed=2, profit_ratio=5.0)
        pmin, pmax = p.profit_range()
        assert pmax / pmin <= 5.0 + 1e-9

    def test_access_prob_zero_keeps_one(self):
        p = random_tree_problem(n=10, m=8, r=3, seed=3, access_prob=0.0)
        assert all(len(acc) == 1 for acc in p.access)

    def test_locality_shortens_paths(self):
        far = random_tree_problem(n=64, m=40, r=1, seed=4, topology="path")
        near = random_tree_problem(n=64, m=40, r=1, seed=4, topology="path",
                                   locality=0.1)
        mean_len = lambda p: np.mean([len(d.path_edges) for d in p.instances()])
        assert mean_len(near) < mean_len(far)


class TestBoundaryFractionKnob:
    """The shard-aware generator targets the plan's boundary fraction
    directly — the variable the sharding scaling experiments vary."""

    def _realized(self, problem, parts):
        from repro.sharding import ShardPlanner

        plan = ShardPlanner("subtree").plan(problem, parts)
        return plan.boundary_count / problem.num_demands

    def test_zero_target_is_fully_local(self):
        p = random_tree_problem(n=200, m=300, r=1, seed=0,
                                boundary_fraction=0.0, parts=4)
        assert self._realized(p, 4) == 0.0

    @pytest.mark.parametrize("target", [0.05, 0.15])
    def test_target_tracked(self, target):
        p = random_tree_problem(n=300, m=400, r=1, seed=1,
                                boundary_fraction=target, parts=4)
        realized = self._realized(p, 4)
        # Confined demands are local by construction, so the realized
        # fraction tracks the binomial draw of crossing demands.
        assert abs(realized - target) < 0.05
        assert realized > 0.0

    def test_monotone_in_target(self):
        lo = random_tree_problem(n=300, m=400, r=1, seed=2,
                                 boundary_fraction=0.05, parts=4)
        hi = random_tree_problem(n=300, m=400, r=1, seed=2,
                                 boundary_fraction=0.5, parts=4)
        assert self._realized(lo, 4) < self._realized(hi, 4)

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            random_tree_problem(n=20, m=5, seed=0, locality=0.1,
                                boundary_fraction=0.1)
        with pytest.raises(ValueError, match="boundary_fraction"):
            random_tree_problem(n=20, m=5, seed=0, boundary_fraction=1.5)
        with pytest.raises(ValueError, match="parts"):
            random_tree_problem(n=20, m=5, seed=0, boundary_fraction=0.1,
                                parts=0)

    def test_tiny_tree_degenerates_gracefully(self):
        # More parts than vertices: singleton groups everywhere.
        p = random_tree_problem(n=3, m=10, r=1, seed=3,
                                boundary_fraction=0.2, parts=8)
        assert p.num_demands == 10
        for d in p.demands:
            assert d.u != d.v

    def test_trace_generator_passthrough(self):
        from repro.online import generate_trace

        tr = generate_trace("tree", events=120, seed=4,
                            departure_prob=0.2,
                            workload={"n": 96, "boundary_fraction": 0.1,
                                      "parts": 2})
        assert tr.num_arrivals == tr.problem.num_demands


class TestRandomLineProblem:
    def test_lengths_in_range(self):
        p = random_line_problem(n_slots=40, m=30, r=1, seed=0, min_len=3,
                                max_len=9)
        for a in p.demands:
            assert 3 <= a.proc_time <= 9

    def test_windows_inside_timeline(self):
        p = random_line_problem(n_slots=25, m=40, r=2, seed=1, window_slack=2.0)
        for a in p.demands:
            assert 0 <= a.release <= a.deadline < 25

    def test_zero_slack_pins(self):
        p = random_line_problem(n_slots=30, m=20, r=1, seed=2, window_slack=0.0)
        assert all(a.window_length == a.proc_time for a in p.demands)

    def test_max_len_clamped_to_timeline(self):
        p = random_line_problem(n_slots=6, m=10, r=1, seed=3, min_len=1,
                                max_len=100)
        assert all(a.proc_time <= 6 for a in p.demands)


@given(
    n=st.integers(min_value=1, max_value=60),
    topology=st.sampled_from(list(TREE_TOPOLOGIES)),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_make_tree_always_valid(n, topology, seed):
    t = make_tree(n, topology, seed=seed)
    # TreeNetwork's constructor re-validates spanning-tree-ness.
    assert t.n == n
