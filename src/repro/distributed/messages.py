"""Message types for the synchronous message-passing substrate.

The paper's model (Section 1): processors communicate in synchronous
rounds with the processors they share a resource with; each message
carries ``O(M)`` bits, where ``M`` encodes one demand (endpoints, profit,
height, network).  Every message below fits that budget — the payloads
are single demand-instance descriptors or single dual increments.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["Kind", "Message", "InstanceInfo"]


class Kind(Enum):
    """Message kinds of the two-phase protocol."""

    #: MIS subprotocol: advertise a candidate instance (with priority).
    CANDIDATE = auto()
    #: MIS subprotocol: the sender's candidate joined the MIS.
    JOINED = auto()
    #: MIS subprotocol: the sender's candidate retired (dominated).
    RETIRED = auto()
    #: Dual broadcast: β(e) was raised by the attached amount.
    BETA_RAISE = auto()
    #: Second phase: the sender added this instance to the solution.
    SELECTED = auto()


@dataclass(frozen=True, slots=True)
class InstanceInfo:
    """O(M)-bit descriptor of a demand instance, as sent on the wire."""

    instance_id: int
    demand_id: int
    network_id: int
    u: int
    v: int
    profit: float
    height: float = 1.0


@dataclass(frozen=True, slots=True)
class Message:
    """One message: sender/recipient processor ids plus a typed payload."""

    sender: int
    recipient: int
    kind: Kind
    payload: object = None
