"""Workload generators for trees, lines, demands and windows.

The paper has no benchmark suite of its own, so every experiment needs
synthetic workloads.  The generators here are all seeded
(:class:`numpy.random.Generator`) and cover the topology extremes the
decomposition lemmas care about:

* ``path``       — worst case for the root-fixing decomposition (depth n);
* ``star``       — trivial depth, stresses high-degree splitting;
* ``caterpillar``— long spine with legs, a classic adversary for balancers;
* ``binary``     — complete binary tree, the friendly case;
* ``random``     — uniform random labelled tree via Prüfer sequences;
* ``broom``/``spider`` — asymmetric hybrids.

Demand generators control the knobs the theorems mention: profit spread
``pmax/pmin``, height regime (unit / narrow / wide / mixed), demand
locality (path length distribution), and window tightness for Section 7.
"""

from __future__ import annotations

import numpy as np

from ..core.demand import Demand, WindowDemand
from ..core.instance import LineProblem, TreeProblem
from ..network.line import LineNetwork
from ..network.tree import TreeNetwork

__all__ = [
    "make_tree",
    "random_tree_problem",
    "random_line_problem",
    "TREE_TOPOLOGIES",
]

TREE_TOPOLOGIES = ("path", "star", "caterpillar", "binary", "random", "broom", "spider")


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def make_tree(
    n: int, topology: str = "random", *, seed=None, network_id: int = 0
) -> TreeNetwork:
    """Build an ``n``-vertex tree of the requested topology.

    ``topology`` is one of :data:`TREE_TOPOLOGIES`.  Vertex labels are
    randomly permuted for the randomised topologies so vertex ids carry no
    structural hints.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = _rng(seed)
    edges: list[tuple[int, int]]
    if topology == "path":
        edges = [(i, i + 1) for i in range(n - 1)]
    elif topology == "star":
        edges = [(0, i) for i in range(1, n)]
    elif topology == "caterpillar":
        # Half the vertices form the spine; legs attach round-robin.
        spine = max(1, n // 2)
        edges = [(i, i + 1) for i in range(spine - 1)]
        for leg in range(spine, n):
            edges.append((int(rng.integers(0, spine)), leg))
    elif topology == "binary":
        edges = [((i - 1) // 2, i) for i in range(1, n)]
    elif topology == "random":
        edges = _random_tree_edges(n, rng)
    elif topology == "broom":
        # A path of length n/2 ending in a star of the remaining vertices.
        handle = max(1, n // 2)
        edges = [(i, i + 1) for i in range(handle - 1)]
        edges.extend((handle - 1, i) for i in range(handle, n))
    elif topology == "spider":
        # Three long legs meeting at vertex 0.
        edges = []
        legs = 3
        prev = [0] * legs
        for i in range(1, n):
            leg = (i - 1) % legs
            edges.append((prev[leg], i))
            prev[leg] = i
    else:
        raise ValueError(f"unknown topology {topology!r}; want one of {TREE_TOPOLOGIES}")
    return TreeNetwork(n, edges, network_id=network_id)


def _random_tree_edges(n: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Uniform random labelled tree from a random Prüfer sequence."""
    if n == 1:
        return []
    if n == 2:
        return [(0, 1)]
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    edges: list[tuple[int, int]] = []
    # Classic O(n log n) decode with a heap of current leaves.
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return edges


def _sample_heights(
    m: int, regime: str, rng: np.random.Generator, hmin: float
) -> np.ndarray:
    """Sample demand heights for the requested regime (Section 6 splits)."""
    if regime == "unit":
        return np.ones(m)
    if regime == "narrow":
        return rng.uniform(hmin, 0.5, size=m)
    if regime == "wide":
        return rng.uniform(max(hmin, 0.5 + 1e-9), 1.0, size=m)
    if regime == "mixed":
        h = rng.uniform(hmin, 1.0, size=m)
        return h
    if regime == "bimodal":
        small = rng.uniform(hmin, 0.2, size=m)
        big = rng.uniform(0.8, 1.0, size=m)
        pick = rng.random(m) < 0.5
        return np.where(pick, small, big)
    raise ValueError(f"unknown height regime {regime!r}")


def random_tree_problem(
    n: int,
    m: int,
    r: int = 1,
    *,
    topology: str = "random",
    seed=None,
    profit_ratio: float = 10.0,
    height_regime: str = "unit",
    hmin: float = 0.05,
    access_prob: float = 1.0,
    locality: float | None = None,
    boundary_fraction: float | None = None,
    parts: int = 4,
) -> TreeProblem:
    """A random tree-network scheduling instance.

    Parameters
    ----------
    n, m, r:
        Vertices, demands and tree-networks.
    topology:
        Topology for every network (each network is drawn independently
        for the randomised topologies, so the ``r`` trees differ).
    profit_ratio:
        Target ``pmax/pmin``; profits are log-uniform in
        ``[1, profit_ratio]``.
    height_regime:
        ``unit`` / ``narrow`` / ``wide`` / ``mixed`` / ``bimodal``.
    hmin:
        Minimum height for the non-unit regimes.
    access_prob:
        Each (processor, network) pair is accessible independently with
        this probability; every processor keeps at least one network.
    locality:
        If given, demand endpoints are biased to be near each other:
        the second endpoint is sampled from a ball of radius
        ``max(1, locality * n)`` hops in network 0.
    boundary_fraction:
        Shard-aware locality: target fraction of demands whose route
        *crosses* a shard-planner cut line, the rest being confined to
        one planner part.  Network 0 is partitioned exactly the way the
        ``subtree`` :class:`~repro.sharding.planner.ShardPlanner` would
        for ``parts`` shards (same balancer cuts, same bin packing), so
        a plan over ``parts`` shards realizes ≈ this boundary fraction —
        the knob the sharding scaling experiments actually vary.  A
        confined demand is local by construction; a crossing demand's
        endpoints land in parts packed to *different* shards (the rare
        adjacent-across-the-cut pair can still end up local, so the
        realized fraction is bounded above by the target's draw).
        Mutually exclusive with ``locality``; ``r = 1`` recommended
        (extra networks are partitioned independently and blur the
        classification).
    parts:
        The shard count the ``boundary_fraction`` partition mimics.
    """
    if boundary_fraction is not None:
        if locality is not None:
            raise ValueError(
                "locality and boundary_fraction are mutually exclusive"
            )
        if not (0.0 <= boundary_fraction <= 1.0):
            raise ValueError("boundary_fraction must lie in [0, 1]")
        if parts < 1:
            raise ValueError("parts must be >= 1")
    rng = _rng(seed)
    networks = [
        make_tree(n, topology, seed=rng, network_id=q) for q in range(r)
    ]
    heights = _sample_heights(m, height_regime, rng, hmin)
    profits = np.exp(rng.uniform(0.0, np.log(max(profit_ratio, 1.0 + 1e-9)), size=m))
    endpoint_of = None
    if boundary_fraction is not None:
        endpoint_of = _partition_endpoint_sampler(
            networks[0], parts, boundary_fraction
        )
    demands: list[Demand] = []
    for i in range(m):
        if endpoint_of is not None:
            u, v = endpoint_of(rng)
        else:
            u = int(rng.integers(0, n))
            if locality is not None:
                radius = max(1, int(locality * n))
                ball = _ball(networks[0], u, radius)
                ball.discard(u)
                v = int(rng.choice(sorted(ball))) if ball else (u + 1) % n
            else:
                v = int(rng.integers(0, n))
                while v == u:
                    v = int(rng.integers(0, n))
        demands.append(
            Demand(
                demand_id=i,
                u=u,
                v=v,
                profit=float(profits[i]),
                height=float(heights[i]),
            )
        )
    access = _random_access(m, r, access_prob, rng)
    return TreeProblem(n=n, networks=networks, demands=demands, access=access)


def _partition_endpoint_sampler(net: TreeNetwork, parts: int,
                                boundary_fraction: float):
    """Endpoint sampler targeting a shard-plan boundary fraction.

    Reuses the planner's own balancer-cut vertex groups and bin packing
    (lazy import — the planner pulls in the online event model), so the
    generator's notion of "one part" coincides exactly with what
    ``ShardPlanner("subtree").plan(problem, parts)`` will compute on the
    same tree.  Returns ``draw(rng) -> (u, v)``.
    """
    from ..sharding.planner import _pack_groups, _subtree_vertex_groups

    groups = [sorted(g) for g in _subtree_vertex_groups(net, parts)]
    shard_of_group = _pack_groups([set(g) for g in groups], parts)
    # Confined picks need two distinct vertices; crossing picks need two
    # groups packed to different shards.
    multi = [gi for gi, g in enumerate(groups) if len(g) >= 2]
    sizes = np.asarray([len(groups[gi]) for gi in multi], dtype=np.float64)
    weights = sizes / sizes.sum() if len(multi) else None
    cross_ok = len({shard_of_group[gi] for gi in range(len(groups))}) > 1

    def draw(rng: np.random.Generator) -> tuple[int, int]:
        if cross_ok and rng.random() < boundary_fraction:
            gi = int(rng.integers(0, len(groups)))
            others = [gj for gj in range(len(groups))
                      if shard_of_group[gj] != shard_of_group[gi]]
            gj = int(rng.choice(others))
            u = int(rng.choice(groups[gi]))
            v = int(rng.choice(groups[gj]))
            return u, v
        if not multi:  # degenerate: every part is a single vertex
            u = int(rng.integers(0, net.n))
            v = int(rng.integers(0, net.n))
            while v == u:
                v = int(rng.integers(0, net.n))
            return u, v
        gi = multi[int(rng.choice(len(multi), p=weights))]
        u, v = (int(x) for x in rng.choice(groups[gi], size=2,
                                           replace=False))
        return u, v

    return draw


def _ball(net: TreeNetwork, center: int, radius: int) -> set[int]:
    """Vertices within ``radius`` hops of ``center`` in ``net``."""
    from collections import deque

    seen = {center}
    q = deque([(center, 0)])
    while q:
        x, d = q.popleft()
        if d == radius:
            continue
        for y in net.adj[x]:
            if y not in seen:
                seen.add(y)
                q.append((y, d + 1))
    return seen


def _random_access(
    m: int, r: int, access_prob: float, rng: np.random.Generator
) -> list[frozenset[int]]:
    access: list[frozenset[int]] = []
    for _ in range(m):
        acc = {q for q in range(r) if rng.random() < access_prob}
        if not acc:
            acc = {int(rng.integers(0, r))}
        access.append(frozenset(acc))
    return access


def random_line_problem(
    n_slots: int,
    m: int,
    r: int = 1,
    *,
    seed=None,
    profit_ratio: float = 10.0,
    height_regime: str = "unit",
    hmin: float = 0.05,
    access_prob: float = 1.0,
    min_len: int = 1,
    max_len: int | None = None,
    window_slack: float = 0.5,
) -> LineProblem:
    """A random line-network (windows) scheduling instance (Section 7).

    Parameters
    ----------
    n_slots, m, r:
        Timeline length, demands and resources.
    min_len, max_len:
        Processing-time range (``max_len`` defaults to ``n_slots // 4``,
        at least ``min_len``).
    window_slack:
        Expected extra window length as a fraction of the processing
        time; 0 pins every job (window == processing interval).
    """
    rng = _rng(seed)
    if max_len is None:
        max_len = max(min_len, n_slots // 4)
    max_len = min(max_len, n_slots)
    resources = [LineNetwork(n_slots, network_id=q) for q in range(r)]
    heights = _sample_heights(m, height_regime, rng, hmin)
    profits = np.exp(rng.uniform(0.0, np.log(max(profit_ratio, 1.0 + 1e-9)), size=m))
    demands: list[WindowDemand] = []
    for i in range(m):
        rho = int(rng.integers(min_len, max_len + 1))
        slack = int(rng.integers(0, int(window_slack * rho) + 1))
        wlen = min(n_slots, rho + slack)
        release = int(rng.integers(0, n_slots - wlen + 1))
        demands.append(
            WindowDemand(
                demand_id=i,
                release=release,
                deadline=release + wlen - 1,
                proc_time=rho,
                profit=float(profits[i]),
                height=float(heights[i]),
            )
        )
    access = _random_access(m, r, access_prob, rng)
    return LineProblem(n_slots=n_slots, resources=resources, demands=demands, access=access)
