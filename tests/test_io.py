"""Round-trip tests for JSON serialization."""

from __future__ import annotations

import pytest

from repro import random_line_problem, random_tree_problem, solve_tree_unit
from repro.io import (
    load_problem,
    load_solution,
    load_trace,
    problem_from_dict,
    problem_to_dict,
    save_problem,
    save_solution,
    save_trace,
    solution_from_dict,
    solution_to_dict,
    trace_from_dict,
    trace_to_dict,
)


class TestProblemRoundTrip:
    @pytest.mark.parametrize("seed", range(3))
    def test_tree_round_trip(self, seed):
        p = random_tree_problem(n=12, m=8, r=2, seed=seed,
                                height_regime="mixed", access_prob=0.7)
        q = problem_from_dict(problem_to_dict(p))
        assert q.n == p.n
        assert q.access == p.access
        for a, b in zip(p.demands, q.demands):
            assert (a.u, a.v, a.profit, a.height) == (b.u, b.v, b.profit, b.height)
        for na, nb in zip(p.networks, q.networks):
            assert na.edges == nb.edges
        # Instance expansion is identical.
        assert [
            (d.demand_id, d.network_id, d.path_edges) for d in p.instances()
        ] == [(d.demand_id, d.network_id, d.path_edges) for d in q.instances()]

    @pytest.mark.parametrize("seed", range(3))
    def test_line_round_trip(self, seed):
        p = random_line_problem(n_slots=20, m=8, r=2, seed=seed,
                                height_regime="narrow", max_len=6)
        q = problem_from_dict(problem_to_dict(p))
        assert q.n_slots == p.n_slots
        assert len(q.instances()) == len(p.instances())
        for a, b in zip(p.demands, q.demands):
            assert (a.release, a.deadline, a.proc_time, a.profit, a.height) == (
                b.release, b.deadline, b.proc_time, b.profit, b.height
            )

    def test_file_round_trip(self, tmp_path):
        p = random_tree_problem(n=10, m=6, r=1, seed=5)
        path = tmp_path / "problem.json"
        save_problem(p, str(path))
        q = load_problem(str(path))
        assert q.n == p.n

    def test_bad_version_rejected(self):
        doc = problem_to_dict(random_tree_problem(n=6, m=2, r=1, seed=0))
        doc["format"] = 99
        with pytest.raises(ValueError, match="version"):
            problem_from_dict(doc)

    def test_bad_kind_rejected(self):
        doc = problem_to_dict(random_tree_problem(n=6, m=2, r=1, seed=0))
        doc["kind"] = "hypergraph"
        with pytest.raises(ValueError, match="kind"):
            problem_from_dict(doc)


class TestWindowDemandRoundTrip:
    @pytest.mark.parametrize("seed", range(3))
    def test_exact_field_equality(self, seed):
        p = random_line_problem(n_slots=30, m=10, r=2, seed=seed,
                                height_regime="bimodal", max_len=8,
                                access_prob=0.6)
        q = problem_from_dict(problem_to_dict(p))
        assert q.demands == p.demands  # WindowDemand is a frozen dataclass
        assert q.access == p.access
        # Placement expansion (the instance population) is identical.
        assert [
            (d.demand_id, d.network_id, d.start, d.end)
            for d in p.instances()
        ] == [
            (d.demand_id, d.network_id, d.start, d.end)
            for d in q.instances()
        ]


class TestAdversarialRoundTrip:
    def test_constructions_survive_json(self):
        from repro.workloads.adversarial import (
            long_vs_short,
            profit_ladder,
            sibling_stress,
            star_crossing,
        )

        for problem in [profit_ladder(5), long_vs_short(6),
                        star_crossing(8), sibling_stress(4, r=2)]:
            q = problem_from_dict(problem_to_dict(problem))
            assert q.demands == problem.demands
            assert [net.edges for net in q.networks] == [
                net.edges for net in problem.networks
            ]
            assert [
                (d.demand_id, d.network_id, d.path_edges)
                for d in q.instances()
            ] == [
                (d.demand_id, d.network_id, d.path_edges)
                for d in problem.instances()
            ]


class TestTraceRoundTrip:
    def _trace(self, **kw):
        from repro.online import bursty_trace

        kw.setdefault("events", 60)
        kw.setdefault("seed", 3)
        kw.setdefault("departure_prob", 0.4)
        kw.setdefault("tick_every", 4.0)
        return bursty_trace("line", **kw)

    def test_dict_round_trip_exact(self):
        tr = self._trace()
        back = trace_from_dict(trace_to_dict(tr))
        assert back.events == tr.events  # frozen dataclasses: exact
        assert back.meta == tr.meta
        assert back.problem.demands == tr.problem.demands

    def test_file_round_trip(self, tmp_path):
        tr = self._trace()
        path = tmp_path / "trace.json"
        save_trace(tr, str(path))
        back = load_trace(str(path))
        assert back.events == tr.events
        import json

        doc = json.load(open(path))
        assert doc["format"] == 1 and doc["kind"] == "trace"

    def test_unknown_version_rejected(self):
        doc = trace_to_dict(self._trace())
        doc["format"] = 99
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(doc)

    def test_wrong_kind_rejected(self):
        doc = trace_to_dict(self._trace())
        doc["kind"] = "problem"
        with pytest.raises(ValueError, match="not a trace"):
            trace_from_dict(doc)

    def test_unknown_event_type_rejected(self):
        doc = trace_to_dict(self._trace())
        doc["events"][0] = {"type": "teleport", "time": 0.0}
        with pytest.raises(ValueError, match="unknown event type"):
            trace_from_dict(doc)

    def test_corrupted_stream_rejected(self):
        # The embedded EventTrace validation re-runs on load.
        doc = trace_to_dict(self._trace())
        arrivals = [e for e in doc["events"] if e["type"] == "arrival"]
        doc["events"].remove(arrivals[0])
        with pytest.raises(ValueError):
            trace_from_dict(doc)


class TestAtomicSaves:
    """save_* must never leave a truncated artifact, even when killed
    (simulated by a serializer that blows up mid-write)."""

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        import json as _json

        p = random_tree_problem(n=10, m=6, r=1, seed=5)
        path = tmp_path / "problem.json"
        save_problem(p, str(path))
        original = path.read_text()

        def boom(*args, **kwargs):
            raise RuntimeError("killed mid-write")

        monkeypatch.setattr(_json, "dump", boom)
        with pytest.raises(RuntimeError):
            save_problem(random_tree_problem(n=12, m=4, r=1, seed=6),
                         str(path))
        # The original document survives intact and no temp litter stays.
        assert path.read_text() == original
        assert [f.name for f in tmp_path.iterdir()] == ["problem.json"]

    def test_save_into_missing_file_cleans_up_on_failure(
            self, tmp_path, monkeypatch):
        import json as _json

        monkeypatch.setattr(
            _json, "dump",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        path = tmp_path / "fresh.json"
        with pytest.raises(RuntimeError):
            save_problem(random_tree_problem(n=8, m=3, r=1, seed=1),
                         str(path))
        assert list(tmp_path.iterdir()) == []

    def test_all_savers_replace_atomically(self, tmp_path):
        """Every saver goes through the temp+replace path and yields a
        loadable document (trace and solution included)."""
        from repro import solve_tree_unit
        from repro.online import poisson_trace

        p = random_tree_problem(n=10, m=6, r=1, seed=3)
        sol = solve_tree_unit(p, epsilon=0.2, seed=1)
        tr = poisson_trace("line", events=30, seed=2)
        for saver, loader, obj in [
            (save_problem, load_problem, p),
            (save_solution, lambda q, pr=p: load_solution(q, pr), sol),
            (save_trace, load_trace, tr),
        ]:
            path = tmp_path / "artifact.json"
            saver(obj, str(path))
            saver(obj, str(path))  # overwrite goes through replace too
            loader(str(path))
            assert [f.name for f in tmp_path.iterdir()] == ["artifact.json"]
            path.unlink()


class TestSolutionRoundTrip:
    def test_tree_solution(self, tmp_path):
        p = random_tree_problem(n=14, m=10, r=2, seed=7)
        sol = solve_tree_unit(p, epsilon=0.2, seed=1)
        path = tmp_path / "solution.json"
        save_solution(sol, str(path))
        back = load_solution(str(path), p)
        assert back.profit == pytest.approx(sol.profit)
        assert sorted(d.demand_id for d in back.selected) == sorted(
            d.demand_id for d in sol.selected
        )
        # Routes are re-bound to the problem, so verification still works.
        from repro import verify_tree_solution

        verify_tree_solution(p, back)

    def test_unknown_selection_rejected(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=8)
        sol = solve_tree_unit(p, epsilon=0.2, seed=2)
        doc = solution_to_dict(sol)
        doc["selected"].append(
            {"kind": "tree", "demand_id": 999, "network_id": 0, "u": 0, "v": 1}
        )
        with pytest.raises(ValueError, match="does not exist"):
            solution_from_dict(doc, p)

    def test_stats_survive_json(self):
        p = random_tree_problem(n=10, m=6, r=1, seed=9)
        sol = solve_tree_unit(p, epsilon=0.2, seed=3)
        doc = solution_to_dict(sol)
        import json

        json.dumps(doc)  # everything JSON-safe
        back = solution_from_dict(doc, p)
        assert back.stats["algorithm"] == sol.stats["algorithm"]
