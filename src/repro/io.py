"""JSON serialization for problems, solutions, event traces and journals.

Lets workloads be pinned to disk (regression corpora, cross-machine
benchmark runs), solutions be archived next to the dual certificates
that justify them, and online event traces be replayed bit-identically
on other machines.  The formats are stable, versioned, human-readable
JSON documents; round-trips are exact (vertex ids, profits, heights,
access sets, selected instances, event times).

All ``save_*`` writers are **atomic**: the document is written to a
temporary file in the destination directory and moved into place with
:func:`os.replace`, so a process killed mid-write never leaves a
truncated JSON artifact behind.

The **admission journal** is the service layer's durability log: an
append-only file whose first record is a self-contained header (policy,
parameters, the full trace document) and whose every further record is
one submitted event in the trace event schema, optionally interleaved
with **checkpoint** records (serialized session state, so a resume can
seek past the prefix instead of replaying it).  Two on-disk codecs
share one record model:

* ``jsonl`` — one JSON document per line, human-readable (the PR-5
  format, still the default);
* ``binary`` — a magic+version preamble followed by length-prefixed
  records; events are struct-packed to 18 bytes instead of ~50 of
  JSON text.  The format is auto-detected on read, so readers never
  need to be told.

Because replay decisions are deterministic, re-submitting the
journaled events into a fresh :class:`~repro.session.AdmissionSession`
reconstructs the exact ledger and metrics state — the warm-restart
path.  Both codecs tolerate a torn *final* record (the one a ``kill
-9`` can leave behind) and report the byte offset of the last intact
record so the writer can resume appending cleanly; corruption anywhere
else is an error.

:class:`JournalWriter` supports **group commit**: records buffer in
memory and are written + (optionally) fsynced together every
``sync_window`` events or ``sync_interval_ms`` milliseconds, and
``commit_seq`` exposes the highest event sequence number that has
actually reached the file — the "durable" watermark the service layer
acknowledges to clients, as distinct from "accepted".
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import time
from typing import Any, Iterator

from .core.demand import Demand, LineDemandInstance, TreeDemandInstance, WindowDemand
from .core.instance import LineProblem, TreeProblem
from .core.solution import Solution
from .network.line import LineNetwork
from .network.tree import TreeNetwork
from .obs.tracing import RECORDER as _REC

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "event_to_dict",
    "event_from_dict",
    "save_problem",
    "load_problem",
    "save_solution",
    "load_solution",
    "save_trace",
    "load_trace",
    "JournalWriter",
    "read_journal",
    "iter_journal",
    "scan_journal",
    "JOURNAL_FORMATS",
]

FORMAT_VERSION = 1

#: Version of the event-trace document (independent of the problem format).
TRACE_FORMAT_VERSION = 1

#: Version of the admission-journal envelope.
JOURNAL_FORMAT_VERSION = 1


def problem_to_dict(problem) -> dict:
    """Serialize a :class:`TreeProblem` or :class:`LineProblem`."""
    if isinstance(problem, TreeProblem):
        return {
            "format": FORMAT_VERSION,
            "kind": "tree",
            "n": problem.n,
            "networks": [sorted(net.edges) for net in problem.networks],
            "demands": [
                {"u": a.u, "v": a.v, "profit": a.profit, "height": a.height}
                for a in problem.demands
            ],
            "access": [sorted(acc) for acc in problem.access],
        }
    if isinstance(problem, LineProblem):
        return {
            "format": FORMAT_VERSION,
            "kind": "line",
            "n_slots": problem.n_slots,
            "num_resources": problem.num_networks,
            "demands": [
                {
                    "release": a.release,
                    "deadline": a.deadline,
                    "proc_time": a.proc_time,
                    "profit": a.profit,
                    "height": a.height,
                }
                for a in problem.demands
            ],
            "access": [sorted(acc) for acc in problem.access],
        }
    raise TypeError(f"cannot serialize {type(problem).__name__}")


def problem_from_dict(doc: dict):
    """Inverse of :func:`problem_to_dict`."""
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version!r}")
    kind = doc.get("kind")
    access = [frozenset(acc) for acc in doc["access"]]
    if kind == "tree":
        networks = [
            TreeNetwork(doc["n"], [tuple(e) for e in edges], network_id=q)
            for q, edges in enumerate(doc["networks"])
        ]
        demands = [
            Demand(i, d["u"], d["v"], d["profit"], d.get("height", 1.0))
            for i, d in enumerate(doc["demands"])
        ]
        return TreeProblem(n=doc["n"], networks=networks, demands=demands,
                           access=access)
    if kind == "line":
        resources = [
            LineNetwork(doc["n_slots"], network_id=q)
            for q in range(doc["num_resources"])
        ]
        demands = [
            WindowDemand(i, d["release"], d["deadline"], d["proc_time"],
                         d["profit"], d.get("height", 1.0))
            for i, d in enumerate(doc["demands"])
        ]
        return LineProblem(n_slots=doc["n_slots"], resources=resources,
                           demands=demands, access=access)
    raise ValueError(f"unknown problem kind {kind!r}")


def _instance_to_dict(inst) -> dict:
    if isinstance(inst, TreeDemandInstance):
        return {
            "kind": "tree",
            "demand_id": inst.demand_id,
            "network_id": inst.network_id,
            "u": inst.u,
            "v": inst.v,
        }
    if isinstance(inst, LineDemandInstance):
        return {
            "kind": "line",
            "demand_id": inst.demand_id,
            "network_id": inst.network_id,
            "start": inst.start,
            "end": inst.end,
        }
    raise TypeError(f"cannot serialize instance {type(inst).__name__}")


def solution_to_dict(solution: Solution) -> dict:
    """Serialize a solution: selections plus (JSON-safe) stats."""
    stats: dict[str, Any] = {}
    for k, v in solution.stats.items():
        try:
            json.dumps(v)
        except TypeError:
            v = repr(v)
        stats[k] = v
    return {
        "format": FORMAT_VERSION,
        "profit": solution.profit,
        "selected": [_instance_to_dict(d) for d in solution.selected],
        "stats": stats,
    }


def solution_from_dict(doc: dict, problem) -> Solution:
    """Rehydrate a solution against its problem.

    Selections are re-bound to the problem's own instance objects (so
    routes come from the problem, never from the file) and re-verified
    implicitly by any later ``verify_*_solution`` call.
    """
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {doc.get('format')!r}")
    lookup: dict[tuple, Any] = {}
    for inst in problem.instances():
        if isinstance(inst, TreeDemandInstance):
            lookup[(inst.demand_id, inst.network_id)] = inst
        else:
            lookup[(inst.demand_id, inst.network_id, inst.start, inst.end)] = inst
    selected = []
    for rec in doc["selected"]:
        if rec["kind"] == "tree":
            key = (rec["demand_id"], rec["network_id"])
        else:
            key = (rec["demand_id"], rec["network_id"], rec["start"], rec["end"])
        if key not in lookup:
            raise ValueError(f"selection {rec} does not exist in the problem")
        selected.append(lookup[key])
    return Solution(selected=selected, stats=dict(doc.get("stats", {})))


_EVENT_TYPES: tuple | None = None


def _event_types() -> tuple:
    """``(Arrival, Departure, Tick)``, imported once on first use.

    Lazy because the ``online`` package imports this module back: a
    top-level import here would cycle through ``online/__init__`` while
    ``repro.io`` is still half-initialized.  The codec hot paths call
    this per event, so it must stay a cached-global lookup rather than
    a per-call ``import``.
    """
    global _EVENT_TYPES
    if _EVENT_TYPES is None:
        from .online.events import Arrival, Departure, Tick

        _EVENT_TYPES = (Arrival, Departure, Tick)
    return _EVENT_TYPES


def event_to_dict(ev) -> dict:
    """Serialize one Arrival/Departure/Tick (the trace event schema)."""
    Arrival, Departure, Tick = _event_types()

    if isinstance(ev, Arrival):
        return {"type": "arrival", "time": ev.time, "demand": ev.demand_id}
    if isinstance(ev, Departure):
        return {"type": "departure", "time": ev.time, "demand": ev.demand_id}
    if isinstance(ev, Tick):
        return {"type": "tick", "time": ev.time}
    raise TypeError(f"cannot serialize event {type(ev).__name__}")


def event_from_dict(rec: dict):
    """Inverse of :func:`event_to_dict`."""
    Arrival, Departure, Tick = _event_types()

    if not isinstance(rec, dict):
        raise ValueError(f"event record must be an object, got {rec!r}")
    etype = rec.get("type")
    if etype == "arrival":
        return Arrival(float(rec["time"]), int(rec["demand"]))
    if etype == "departure":
        return Departure(float(rec["time"]), int(rec["demand"]))
    if etype == "tick":
        return Tick(float(rec["time"]))
    raise ValueError(f"unknown event type {etype!r}")


def trace_to_dict(trace) -> dict:
    """Serialize an :class:`~repro.online.events.EventTrace`.

    The embedded problem uses the problem format (version
    :data:`FORMAT_VERSION`); the trace envelope carries its own
    :data:`TRACE_FORMAT_VERSION` so the two can evolve independently.
    """
    return {
        "format": TRACE_FORMAT_VERSION,
        "kind": "trace",
        "problem": problem_to_dict(trace.problem),
        "events": [event_to_dict(ev) for ev in trace.events],
        "meta": dict(trace.meta),
    }


def trace_from_dict(doc: dict):
    """Inverse of :func:`trace_to_dict` (re-validates the event stream)."""
    from .online.events import EventTrace

    version = doc.get("format")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    if doc.get("kind") != "trace":
        raise ValueError(f"not a trace document: kind={doc.get('kind')!r}")
    problem = problem_from_dict(doc["problem"])
    events = [event_from_dict(rec) for rec in doc["events"]]
    return EventTrace(problem=problem, events=events,
                      meta=dict(doc.get("meta", {})))


def _fsync_dir(directory: str) -> None:
    """``fsync`` a directory so a just-created or just-renamed entry
    survives a crash — without this an :func:`os.replace` is atomic but
    not yet durable (the rename can be lost with the directory's dirty
    metadata)."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_dump(doc: dict, path: str) -> None:
    """Write ``doc`` as JSON via temp-file + :func:`os.replace`.

    The temp file lives in the destination directory (same filesystem,
    so the replace is atomic) and is removed on any failure — a killed
    or crashing writer leaves either the old file or the new one, never
    a truncated hybrid.  The temp file is fsynced before the replace
    and the directory after it, so the rename itself cannot be lost to
    a power cut.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_problem(problem, path: str) -> None:
    """Write a problem as JSON (atomically)."""
    _atomic_dump(problem_to_dict(problem), path)


def load_problem(path: str):
    """Read a problem written by :func:`save_problem`."""
    with open(path) as fh:
        return problem_from_dict(json.load(fh))


def save_solution(solution: Solution, path: str) -> None:
    """Write a solution as JSON (atomically)."""
    _atomic_dump(solution_to_dict(solution), path)


def load_solution(path: str, problem) -> Solution:
    """Read a solution written by :func:`save_solution`."""
    with open(path) as fh:
        return solution_from_dict(json.load(fh), problem)


def save_trace(trace, path: str) -> None:
    """Write an event trace as JSON (atomically)."""
    _atomic_dump(trace_to_dict(trace), path)


def load_trace(path: str):
    """Read a trace written by :func:`save_trace`."""
    with open(path) as fh:
        return trace_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# The admission journal (append-only; JSON-lines or binary codec)
# ----------------------------------------------------------------------

#: Supported journal codecs, as accepted by ``JournalWriter(fmt=...)``
#: and the CLI's ``--format``.
JOURNAL_FORMATS = ("jsonl", "binary")

#: Binary-journal preamble: magic (first byte deliberately non-ASCII so
#: it can never collide with a JSON line) + one format-version byte.
_BINARY_MAGIC = b"\x89RPJ"
_BINARY_PREAMBLE = _BINARY_MAGIC + bytes([JOURNAL_FORMAT_VERSION])

#: Record-type bytes of the binary codec.
_REC_HEADER, _REC_EVENT, _REC_CHECKPOINT = 0x48, 0x45, 0x43  # 'H','E','C'

#: Struct-packed event payload: event-type byte, f64 time, u32 demand.
_EVENT_STRUCT = struct.Struct("<BdI")
_ETYPE_CODE = {"arrival": 1, "departure": 2, "tick": 3}
_ETYPE_NAME = {v: k for k, v in _ETYPE_CODE.items()}
_NO_DEMAND = 0xFFFFFFFF  # ticks carry no demand id

#: Sanity bound on one framed record (the header embeds a whole trace
#: document, so this is generous; anything larger is corruption).
_MAX_RECORD_BYTES = 1 << 30

_LEN_STRUCT = struct.Struct("<I")


def _pack_event_binary(ev) -> bytes:
    Arrival, Departure, Tick = _event_types()

    if isinstance(ev, Arrival):
        payload = _EVENT_STRUCT.pack(1, ev.time, ev.demand_id)
    elif isinstance(ev, Departure):
        payload = _EVENT_STRUCT.pack(2, ev.time, ev.demand_id)
    elif isinstance(ev, Tick):
        payload = _EVENT_STRUCT.pack(3, ev.time, _NO_DEMAND)
    else:
        raise TypeError(f"cannot serialize event {type(ev).__name__}")
    return _frame_binary(_REC_EVENT, payload)


def _unpack_event_binary(payload: bytes):
    Arrival, Departure, Tick = _event_types()

    code, time_, demand = _EVENT_STRUCT.unpack(payload)
    if code == 1:
        return Arrival(time_, demand)
    if code == 2:
        return Departure(time_, demand)
    if code == 3:
        return Tick(time_)
    raise ValueError(f"unknown binary event code {code}")


def _frame_binary(rtype: int, payload: bytes) -> bytes:
    body = bytes([rtype]) + payload
    return _LEN_STRUCT.pack(len(body)) + body


def _json_record(doc: dict) -> bytes:
    return json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"


class JournalWriter:
    """Append-only admission journal with group commit.

    The first record of a fresh journal is the header: a self-contained
    record of the policy name, its constructor parameters, the backend
    shape (shards / strategy) and the **full trace document**, so a
    journal alone rebuilds the session that wrote it.  Every further
    record is one event in the trace event schema, or a checkpoint (see
    :meth:`checkpoint`).

    Appended records **buffer in memory** and reach the file at the
    next *commit* — every ``sync_window`` events, whenever
    ``sync_interval_ms`` has elapsed since the oldest buffered record,
    on a checkpoint, and at :meth:`close`.  A commit is one batched
    write + flush (plus one ``fsync`` when ``sync=True``), so the
    per-event durability cost is amortized across the window.  The
    default window of 1 commits per record, the PR-5 behaviour: the
    journal then survives a ``kill -9`` of the writer with no event
    loss (``sync=True`` additionally survives power loss).  With a
    wider window, up to ``sync_window - 1`` *accepted* events can be
    lost to a kill — the service layer exposes :attr:`commit_seq` so
    clients can tell which events are durable.

    Parameters
    ----------
    path:
        Journal file path; created (with the header) when missing or
        empty, else opened for appending at ``start_at`` bytes.
    header:
        The header dict (required for a fresh journal).  The envelope
        fields (``kind`` / ``format``) are stamped here.
    sync:
        ``fsync`` at every commit (power-loss durability).
    fmt:
        ``"jsonl"`` (default) or ``"binary"``; resumed journals ignore
        this and keep the existing file's codec (auto-detected).
    sync_window:
        Commit after this many buffered events (default 1).
    sync_interval_ms:
        Also commit when the oldest buffered event is older than this
        many milliseconds (checked on append; no background timer).
    start_at:
        Truncate the file to this many bytes before appending — the
        resume path drops a torn final record this way (see
        :func:`read_journal`).
    seq0:
        Event sequence number already in the file at ``start_at`` —
        lets a resumed writer report absolute ``seq`` / ``commit_seq``.
    """

    def __init__(self, path: str, header: dict | None = None, *,
                 sync: bool = False, fmt: str = "jsonl",
                 sync_window: int = 1, sync_interval_ms: float | None = None,
                 start_at: int | None = None, seq0: int = 0):
        if fmt not in JOURNAL_FORMATS:
            raise ValueError(
                f"unknown journal format {fmt!r}; want one of "
                f"{'/'.join(JOURNAL_FORMATS)}"
            )
        if sync_window < 1:
            raise ValueError(f"sync_window must be >= 1, got {sync_window}")
        if sync_interval_ms is not None and sync_interval_ms <= 0:
            raise ValueError("sync_interval_ms must be positive")
        self.path = path
        self.sync = bool(sync)
        self.sync_window = int(sync_window)
        self.sync_interval_ms = sync_interval_ms
        #: Sequence number of the last *appended* event (possibly still
        #: buffered).
        self.seq = int(seq0)
        #: Sequence number of the last event written (+fsynced when
        #: ``sync``) to the file — the durable watermark.
        self.commit_seq = int(seq0)
        self._pending: list[bytes] = []
        self._pending_events = 0
        self._oldest_pending: float | None = None
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if start_at is not None:
            if not exists:
                raise ValueError(f"cannot resume missing journal {path!r}")
            with open(path, "rb") as fh:
                self.fmt = ("binary"
                            if fh.read(len(_BINARY_MAGIC)) == _BINARY_MAGIC
                            else "jsonl")
            with open(path, "r+b") as fh:
                fh.truncate(start_at)
            self._fh = open(path, "ab")
        elif exists:
            raise ValueError(
                f"journal {path!r} already exists; pass start_at= (resume) "
                "or choose a fresh path"
            )
        else:
            if header is None:
                raise ValueError("a fresh journal needs a header")
            self.fmt = fmt
            self._fh = open(path, "wb")
            doc = dict(header)
            doc["kind"] = "admission-journal"
            doc["format"] = JOURNAL_FORMAT_VERSION
            if self.fmt == "binary":
                self._fh.write(_BINARY_PREAMBLE)
                self._fh.write(_frame_binary(_REC_HEADER, _json_record(doc)))
            else:
                self._fh.write(_json_record(doc))
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
            # Make the file's *existence* crash-durable too: the entry
            # in the containing directory is metadata the data fsync
            # above does not cover.
            _fsync_dir(os.path.dirname(os.path.abspath(path)))

    # ------------------------------------------------------------------

    def append(self, event) -> int:
        """Buffer one event (write-ahead: call *before* applying it).

        Returns the event's sequence number; the record reaches the
        file at the next commit (see :attr:`commit_seq`).
        """
        if self.fmt == "binary":
            self._pending.append(_pack_event_binary(event))
        else:
            self._pending.append(_json_record(event_to_dict(event)))
        self.seq += 1
        self._pending_events += 1
        if self._oldest_pending is None and self.sync_interval_ms is not None:
            self._oldest_pending = time.monotonic()
        if self._pending_events >= self.sync_window or (
            self.sync_interval_ms is not None
            and (time.monotonic() - self._oldest_pending) * 1e3
            >= self.sync_interval_ms
        ):
            self.commit()
        return self.seq

    def checkpoint(self, state: dict) -> None:
        """Append a checkpoint record and commit it immediately.

        ``state`` is the serialized session state a resume restores
        instead of replaying the event prefix (see
        :meth:`~repro.service.AdmissionService.checkpoint`); it must be
        JSON-safe.  Checkpoints always force a commit so the journal
        prefix they summarize is on disk alongside them.
        """
        if self.fmt == "binary":
            rec = _frame_binary(_REC_CHECKPOINT, _json_record(state))
        else:
            rec = _json_record({"kind": "checkpoint", "state": state})
        self._pending.append(rec)
        self.commit()

    def commit(self) -> int:
        """Write (and with ``sync``, fsync) everything buffered.

        Returns :attr:`commit_seq`, the durable event watermark.
        """
        if self._pending:
            t0 = time.perf_counter_ns() if _REC.enabled else 0
            records = self._pending_events
            self._fh.write(b"".join(self._pending))
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
            self._pending.clear()
            self._pending_events = 0
            self._oldest_pending = None
            if t0:
                # The group-commit flush window: how long the write (+
                # fsync under --sync) held the intake path.
                _REC.record("journal.commit", t0,
                            time.perf_counter_ns() - t0,
                            {"records": records, "sync": self.sync})
        self.commit_seq = self.seq
        return self.commit_seq

    def close(self) -> None:
        if not self._fh.closed:
            self.commit()
            self._fh.close()

    def abandon(self) -> None:
        """Drop buffered records and close without committing them.

        Simulates a ``kill -9`` landing between buffer and commit —
        the group-commit crash tests use this; production code wants
        :meth:`close`.
        """
        self._pending.clear()
        self._pending_events = 0
        self.seq = self.commit_seq
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _iter_jsonl_journal(path: str, fh) -> Iterator[tuple]:
    offset = 0
    saw_header = False
    lineno = 0
    for line in fh:
        lineno += 1
        if not line.endswith(b"\n"):
            # The writer terminates every record with '\n', so a
            # newline-less tail is a torn write — dropped even when its
            # JSON happens to parse (a kill can land exactly between
            # the bytes and the newline), because resuming must append
            # at a clean record start and good_bytes and the yielded
            # records must describe the same prefix.
            return
        offset += len(line)
        if not line.strip():
            continue
        try:
            rec = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            # Every terminated line was fully written — a bad one is
            # corruption, not a torn tail.
            raise ValueError(
                f"corrupt journal {path!r}: bad record on line {lineno}"
            )
        if not saw_header:
            _check_journal_header(path, rec)
            saw_header = True
            yield "header", rec, offset
        elif isinstance(rec, dict) and rec.get("kind") == "checkpoint":
            yield "checkpoint", rec.get("state") or {}, offset
        else:
            yield "event", event_from_dict(rec), offset


def _iter_binary_journal(path: str, fh) -> Iterator[tuple]:
    offset = len(_BINARY_PREAMBLE)
    version = fh.read(len(_BINARY_PREAMBLE))[len(_BINARY_MAGIC):]
    if version != bytes([JOURNAL_FORMAT_VERSION]):
        raise ValueError(
            f"unsupported journal format version {version[0] if version else None!r}"
        )
    saw_header = False
    recno = 0
    while True:
        head = fh.read(_LEN_STRUCT.size)
        if len(head) < _LEN_STRUCT.size:
            return  # torn tail (or clean EOF)
        (length,) = _LEN_STRUCT.unpack(head)
        if not 0 < length <= _MAX_RECORD_BYTES:
            raise ValueError(
                f"corrupt journal {path!r}: bad record length at byte "
                f"{offset}"
            )
        body = fh.read(length)
        if len(body) < length:
            return  # torn tail: the record never finished writing
        recno += 1
        rtype, payload = body[0], body[1:]
        try:
            if rtype == _REC_HEADER:
                rec = ("header", json.loads(payload.decode("utf-8")))
            elif rtype == _REC_CHECKPOINT:
                rec = ("checkpoint", json.loads(payload.decode("utf-8")))
            elif rtype == _REC_EVENT:
                rec = ("event", _unpack_event_binary(payload))
            else:
                raise ValueError(f"unknown record type {rtype:#x}")
        except (ValueError, UnicodeDecodeError, struct.error):
            # A complete record that fails to decode is corruption —
            # torn tails were already handled by the short reads above.
            raise ValueError(
                f"corrupt journal {path!r}: bad record {recno} at byte "
                f"{offset}"
            )
        offset += _LEN_STRUCT.size + length
        if not saw_header:
            if rec[0] != "header":
                raise ValueError(f"{path!r} is not an admission journal")
            _check_journal_header(path, rec[1])
            saw_header = True
        yield rec[0], rec[1], offset


def _check_journal_header(path: str, header) -> None:
    if not isinstance(header, dict) or \
            header.get("kind") != "admission-journal":
        raise ValueError(f"{path!r} is not an admission journal")
    if header.get("format") != JOURNAL_FORMAT_VERSION:
        raise ValueError(
            f"unsupported journal format version {header.get('format')!r}"
        )


def iter_journal(path: str) -> Iterator[tuple]:
    """Stream an admission journal's records without materializing it.

    Yields ``(kind, payload, good_bytes)`` tuples in file order, where
    ``kind`` is ``"header"`` (payload: the header dict — always the
    first record), ``"event"`` (payload: a rehydrated
    Arrival/Departure/Tick) or ``"checkpoint"`` (payload: the state
    dict), and ``good_bytes`` is the file offset right after the
    record — the ``start_at`` a resuming :class:`JournalWriter` should
    use if this turns out to be the last intact record.

    The codec (JSON-lines or binary) is auto-detected from the first
    bytes.  A torn *final* record — what a killed writer leaves
    behind — is silently dropped (the generator just ends);
    corruption anywhere else raises :class:`ValueError`.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(_BINARY_MAGIC))
        fh.seek(0)
        if magic == _BINARY_MAGIC:
            yield from _iter_binary_journal(path, fh)
        else:
            yield from _iter_jsonl_journal(path, fh)


def read_journal(path: str) -> tuple[dict, list, int]:
    """Read a whole admission journal into memory.

    Returns ``(header, events, good_bytes)`` — the thin list-building
    wrapper over :func:`iter_journal` for callers that want the full
    event list; checkpoint records are skipped.  ``good_bytes`` is the
    offset right after the last intact record.
    """
    header: dict | None = None
    events: list = []
    good = 0
    for kind, payload, offset in iter_journal(path):
        good = offset
        if kind == "header":
            header = payload
        elif kind == "event":
            events.append(payload)
    if header is None:
        raise ValueError(f"journal {path!r} has no header")
    return header, events, good


def scan_journal(path: str) -> tuple[dict, dict | None, list, int, str]:
    """One streaming pass prepared for a warm restart.

    Returns ``(header, checkpoint, tail_events, good_bytes, fmt)``:
    ``checkpoint`` is the *last* checkpoint state in the journal (or
    ``None``), ``tail_events`` are only the events recorded **after**
    it (the whole event list when there is no checkpoint), and ``fmt``
    is the detected codec.  Memory stays proportional to the
    post-checkpoint tail, not the journal length — the point of
    snapshot compaction.
    """
    with open(path, "rb") as fh:
        fmt = ("binary" if fh.read(len(_BINARY_MAGIC)) == _BINARY_MAGIC
               else "jsonl")
    header: dict | None = None
    checkpoint: dict | None = None
    tail: list = []
    good = 0
    for kind, payload, offset in iter_journal(path):
        good = offset
        if kind == "header":
            header = payload
        elif kind == "checkpoint":
            checkpoint = payload
            tail = []
        else:
            tail.append(payload)
    if header is None:
        raise ValueError(f"journal {path!r} has no header")
    return header, checkpoint, tail, good, fmt
