"""Tests for ledger eviction and the preemptive admission policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online import (
    CapacityLedger,
    bursty_trace,
    make_policy,
    poisson_trace,
    replay,
)
from repro.workloads import random_line_problem, random_tree_problem


class TestLedgerEviction:
    def test_evict_releases_capacity_and_forfeits_profit(self):
        p = random_line_problem(n_slots=20, m=6, r=1, seed=1, max_len=5)
        ledger = CapacityLedger(p)
        iid = ledger.try_admit(0)
        assert iid is not None
        profit = p.demands[0].profit
        assert ledger.realized_profit == pytest.approx(profit)
        assert ledger.evict(0, penalty=0.5) == iid
        assert not ledger.is_admitted(0)
        assert ledger.was_evicted(0)
        assert ledger.num_admitted == 0
        assert ledger.utilization() == 0.0
        # The admission is still logged, but the profit is forfeited.
        assert ledger.admission_log == [(0, iid)]
        assert ledger.eviction_log == [(0, iid)]
        assert ledger.realized_profit == pytest.approx(0.0)
        assert ledger.forfeited_profit == pytest.approx(profit)
        assert ledger.penalty_paid == pytest.approx(0.5)
        assert ledger.penalty_adjusted_profit == pytest.approx(-0.5)

    def test_eviction_differs_from_departure(self):
        p = random_line_problem(n_slots=30, m=6, r=1, seed=2, max_len=5)
        ledger = CapacityLedger(p)
        ledger.try_admit(0)
        ledger.try_admit(1)
        ledger.release(0)   # natural departure: keeps its profit
        ledger.evict(1)     # eviction: forfeits it
        assert ledger.realized_profit == pytest.approx(p.demands[0].profit)
        assert ledger.eviction_log == [(1, ledger.admission_log[1][1])]
        assert not ledger.was_evicted(0)
        assert ledger.was_evicted(1)

    def test_evicted_demand_never_readmitted(self):
        p = random_line_problem(n_slots=20, m=4, r=1, seed=3)
        ledger = CapacityLedger(p)
        assert ledger.try_admit(1) is not None
        ledger.evict(1)
        assert ledger.try_admit(1) is None
        with pytest.raises(ValueError, match="already admitted"):
            ledger.admit(int(ledger.candidates(1)[0]))

    def test_evict_requires_admission(self):
        p = random_line_problem(n_slots=10, m=2, r=1, seed=4)
        ledger = CapacityLedger(p)
        with pytest.raises(KeyError, match="not admitted"):
            ledger.evict(0)
        with pytest.raises(ValueError, match="penalty"):
            ledger.try_admit(0)
            ledger.evict(0, penalty=-1.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_verify_after_evict_admit_interleavings(self, seed):
        p = random_line_problem(n_slots=24, m=14, r=2, seed=seed,
                                height_regime="mixed", max_len=6)
        ledger = CapacityLedger(p)
        rng = np.random.default_rng(seed)
        admitted: list[int] = []
        penalties = 0.0
        for _ in range(60):
            roll = rng.random()
            if admitted and roll < 0.25:
                d = admitted.pop(int(rng.integers(len(admitted))))
                ledger.evict(d, penalty=0.1)
                penalties += 0.1
            elif admitted and roll < 0.4:
                d = admitted.pop(int(rng.integers(len(admitted))))
                ledger.release(d)
            else:
                d = int(rng.integers(p.num_demands))
                if ledger.try_admit(d) is not None:
                    admitted.append(d)
            # Feasible from first principles, counters consistent with
            # the logs, after every single mutation.
            ledger.verify()
        admitted_sum = sum(p.instances()[i].profit
                           for _, i in ledger.admission_log)
        forfeited_sum = sum(p.instances()[i].profit
                            for _, i in ledger.eviction_log)
        assert ledger.admitted_profit == pytest.approx(admitted_sum)
        assert ledger.forfeited_profit == pytest.approx(forfeited_sum)
        assert ledger.realized_profit == pytest.approx(
            admitted_sum - forfeited_sum
        )
        assert ledger.penalty_adjusted_profit == pytest.approx(
            admitted_sum - forfeited_sum - penalties
        )

    def test_holders_on_route_tracks_mutations(self):
        from repro import Demand, TreeNetwork, TreeProblem

        net = TreeNetwork(3, [(0, 1), (1, 2)], network_id=0)
        p = TreeProblem(
            n=3, networks=[net],
            demands=[Demand(0, 0, 2, 1.0, height=0.4),
                     Demand(1, 0, 1, 1.0, height=0.4),
                     Demand(2, 1, 2, 5.0, height=0.4)],
        )
        ledger = CapacityLedger(p)
        iid2 = int(ledger.candidates(2)[0])
        assert ledger.holders_on_route(iid2) == set()
        ledger.try_admit(0)   # spans both edges
        ledger.try_admit(1)   # edge (0,1) only
        assert ledger.holders_on_route(iid2) == {0}
        ledger.evict(0)
        assert ledger.holders_on_route(iid2) == set()

    def test_preemption_plan_picks_cheapest_density(self):
        from repro import Demand, TreeNetwork, TreeProblem

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        # Three demands on one unit-capacity edge, heights 0.5 each: two
        # fit, the third needs one eviction — the cheaper holder.
        p = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(0, 0, 1, 1.0, height=0.5),
                     Demand(1, 0, 1, 3.0, height=0.5),
                     Demand(2, 0, 1, 10.0, height=0.5)],
        )
        ledger = CapacityLedger(p)
        ledger.try_admit(0)
        ledger.try_admit(1)
        iid2 = int(ledger.candidates(2)[0])
        assert ledger.preemption_plan(iid2) == [0]
        ledger.evict(0)
        # Now the route is feasible: the plan is the empty eviction set.
        assert ledger.preemption_plan(iid2) == []

    def test_preemption_plan_reports_impossible(self):
        from repro import Demand, TreeNetwork, TreeProblem

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        p = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(0, 0, 1, 1.0, height=0.9),
                     Demand(1, 0, 1, 9.0, height=0.9)],
        )
        ledger = CapacityLedger(p)
        ledger.try_admit(0)
        iid1 = int(ledger.candidates(1)[0])
        # With validated heights (≤ 1) evicting every holder always
        # frees a route, so force the defensive branch by inflating the
        # newcomer's height past the edge capacity in the shared index.
        ledger.index._heights[iid1] = 1.5
        assert ledger.preemption_plan(iid1) is None


class TestPreemptDensity:
    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="factor"):
            make_policy("preempt-density", factor=0.0)
        with pytest.raises(ValueError, match="penalty"):
            make_policy("preempt-density", penalty=-0.1)
        with pytest.raises(ValueError, match="threshold"):
            make_policy("preempt-density", threshold=-1.0)

    def test_evicts_cheap_holder_for_profitable_arrival(self):
        from repro import Demand, TreeNetwork, TreeProblem
        from repro.online import EventTrace, Arrival

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        p = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(0, 0, 1, 1.0), Demand(1, 0, 1, 5.0)],
        )
        trace = EventTrace(problem=p,
                           events=[Arrival(0.0, 0), Arrival(1.0, 1)])
        res = replay(trace, make_policy("preempt-density", factor=1.2))
        assert res.eviction_log == [(0, 0)]
        assert {d.demand_id for d in res.final_solution.selected} == {1}
        assert res.metrics.realized_profit == pytest.approx(5.0)
        assert res.metrics.forfeited_profit == pytest.approx(1.0)

    def test_factor_gates_marginal_swaps(self):
        from repro import Demand, TreeNetwork, TreeProblem
        from repro.online import EventTrace, Arrival

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        p = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(0, 0, 1, 4.0), Demand(1, 0, 1, 5.0)],
        )
        trace = EventTrace(problem=p,
                           events=[Arrival(0.0, 0), Arrival(1.0, 1)])
        # 5.0 <= 2.0 * 4.0: the swap is not worth it at factor 2.
        res = replay(trace, make_policy("preempt-density", factor=2.0))
        assert res.eviction_log == []
        assert res.metrics.realized_profit == pytest.approx(4.0)
        assert res.policy_stats["preempt_rejected"] == 1

    def test_threshold_gates_evictions_too(self):
        from repro import Demand, TreeNetwork, TreeProblem
        from repro.online import EventTrace, Arrival

        net = TreeNetwork(3, [(0, 1), (1, 2)], network_id=0)
        # Holder: 1 edge, profit 10 → density 10, clears threshold 9.
        # Newcomer: 2 edges, profit 16 → density 8.  Its profit beats
        # factor × holder (16 > 12) but its density misses the floor —
        # it must not buy with evictions what it could not have for
        # free.
        p = TreeProblem(
            n=3, networks=[net],
            demands=[Demand(0, 0, 1, 10.0), Demand(1, 0, 2, 16.0)],
        )
        trace = EventTrace(problem=p,
                           events=[Arrival(0.0, 0), Arrival(1.0, 1)])
        res = replay(trace, make_policy("preempt-density", factor=1.2,
                                        threshold=9.0))
        assert res.eviction_log == []
        assert res.metrics.realized_profit == pytest.approx(10.0)
        # Sanity: without the density floor the same arrival does evict.
        res2 = replay(trace, make_policy("preempt-density", factor=1.2))
        assert res2.eviction_log == [(0, 0)]
        assert res2.metrics.realized_profit == pytest.approx(16.0)

    def test_gate_accounts_for_its_own_penalty(self):
        from repro import Demand, TreeNetwork, TreeProblem
        from repro.online import EventTrace, Arrival

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        # 5 > 1.0 × 4 but 5 ≤ (1.0 + 0.5) × 4: once the compensation is
        # counted the swap loses money, so it must not happen.
        p = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(0, 0, 1, 4.0), Demand(1, 0, 1, 5.0)],
        )
        trace = EventTrace(problem=p,
                           events=[Arrival(0.0, 0), Arrival(1.0, 1)])
        free = replay(trace, make_policy("preempt-density", factor=1.0))
        assert free.eviction_log == [(0, 0)]
        paid = replay(trace, make_policy("preempt-density", factor=1.0,
                                         penalty=0.5))
        assert paid.eviction_log == []
        assert paid.metrics.realized_profit == pytest.approx(4.0)
        # Same economics for the dual-gated variant: on the empty route
        # the price is 0, so the penalty term alone must block the swap.
        dg_free = replay(trace, make_policy("preempt-dual-gated"))
        assert dg_free.eviction_log == [(0, 0)]
        dg_paid = replay(trace, make_policy("preempt-dual-gated",
                                            penalty=0.5))
        assert dg_paid.eviction_log == []

    def test_penalty_flows_into_adjusted_profit(self):
        tr = bursty_trace("line", events=300, seed=3, departure_prob=0.3)
        res = replay(tr, make_policy("preempt-density", penalty=0.5))
        m = res.metrics
        assert m.evictions > 0
        assert m.penalty_paid == pytest.approx(0.5 * m.forfeited_profit)
        assert m.penalty_adjusted_profit == pytest.approx(
            m.realized_profit - m.penalty_paid
        )

    def test_profit_identity_on_stream(self):
        tr = bursty_trace("line", events=400, seed=7, departure_prob=0.4)
        res = replay(tr, make_policy("preempt-density", penalty=0.25))
        m = res.metrics
        admitted = sum(tr.problem.demands[d].profit
                       for d, _ in res.admission_log)
        forfeited = sum(tr.problem.demands[d].profit
                        for d, _ in res.eviction_log)
        assert m.realized_profit == pytest.approx(admitted - forfeited)
        assert m.penalty_adjusted_profit == pytest.approx(
            admitted - forfeited - m.penalty_paid
        )

    def test_evicted_never_readmitted_on_stream(self):
        tr = bursty_trace("line", events=400, seed=9, departure_prob=0.3)
        res = replay(tr, make_policy("preempt-density"))
        evicted = [d for d, _ in res.eviction_log]
        assert res.metrics.evictions > 0
        # Each demand appears at most once in the admission log even
        # though its capacity was freed again by the eviction.
        admitted = [d for d, _ in res.admission_log]
        assert len(admitted) == len(set(admitted))
        assert not (set(evicted)
                    & {d.demand_id for d in res.final_solution.selected})


class TestPreemptDualGated:
    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="penalty"):
            make_policy("preempt-dual-gated", penalty=-0.5)
        with pytest.raises(ValueError, match="eta"):
            make_policy("preempt-dual-gated", eta=0.0)

    def test_behaves_like_dual_gated_until_blocked(self):
        # On an uncongested trace with no capacity blocks, the preemptive
        # variant must make exactly the parent's decisions.
        tr = poisson_trace("line", events=60, seed=11, departure_prob=0.0,
                           rate=0.2)
        plain = replay(tr, make_policy("dual-gated"))
        pre = replay(tr, make_policy("preempt-dual-gated"))
        if pre.metrics.evictions == 0:
            assert pre.admission_log == plain.admission_log

    def test_preempts_only_when_profit_beats_price_plus_victims(self):
        from repro import Demand, TreeNetwork, TreeProblem
        from repro.online import EventTrace, Arrival

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        p = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(0, 0, 1, 1.0), Demand(1, 0, 1, 50.0)],
        )
        trace = EventTrace(problem=p,
                           events=[Arrival(0.0, 0), Arrival(1.0, 1)])
        res = replay(trace, make_policy("preempt-dual-gated"))
        # 50 > 1 (victim) + price of the emptied route (= 0): preempt.
        assert res.eviction_log == [(0, 0)]
        assert res.metrics.realized_profit == pytest.approx(50.0)

    def test_gates_on_stream_and_verifies(self):
        tr = bursty_trace("line", events=400, seed=3, departure_prob=0.3)
        res = replay(tr, make_policy("preempt-dual-gated", penalty=0.1))
        stats = res.policy_stats
        assert stats["evictions"] == res.metrics.evictions > 0
        assert stats["preempt_admits"] > 0
        m = res.metrics
        assert m.penalty_paid == pytest.approx(0.1 * m.forfeited_profit)

    def test_reproducible(self):
        tr = bursty_trace("line", events=250, seed=13, departure_prob=0.4)
        a = replay(tr, make_policy("preempt-dual-gated", penalty=0.2))
        b = replay(tr, make_policy("preempt-dual-gated", penalty=0.2))
        assert a.admission_log == b.admission_log
        assert a.eviction_log == b.eviction_log
        assert a.metrics.penalty_adjusted_profit == \
            b.metrics.penalty_adjusted_profit
