"""The admission-session kernel: one event loop to rule them all.

:class:`AdmissionSession` owns the state every replay needs — the
:class:`~repro.online.state.CapacityLedger`, the bound policy, and the
metrics accumulators (event counts, per-event latency samples, the
baseline offsets for delta accounting) — and exposes the three-verb
lifecycle the service layer and both replay drivers consume:

* :meth:`submit` — apply one :class:`~repro.online.events.Arrival` /
  :class:`~repro.online.events.Departure` /
  :class:`~repro.online.events.Tick` and return the :class:`Decision` it
  produced.  The timing semantics are exactly the historical replay
  loop's: every event's *policy* work is timed individually, while the
  ledger bookkeeping on a departure (``ledger.release``) happens outside
  the timed window, so latency percentiles measure decision latency, not
  the kernel's own accounting.  (:meth:`feed` is the same application
  without the Decision record — the replay drivers' hot path.)
* :meth:`snapshot` — the live counters as a JSON-safe dict (plus
  :meth:`solution` for the admitted set), readable mid-stream.
* :meth:`close` — time the policy's final ``finish()`` flush (one extra
  latency sample, often the single most expensive operation for batching
  policies), optionally re-verify the admitted set from first
  principles, collect the price certificate, and assemble the
  :class:`ReplayResult`.

Two construction modes:

* ``AdmissionSession(problem, policy)`` builds a fresh ledger — the
  ordinary replay (:func:`~repro.online.driver.replay` is now a thin
  loop over this) and the sharded driver's per-shard workers;
* :meth:`AdmissionSession.over_ledger` attaches to an *existing* ledger
  and captures a baseline of its counters, so the result reports
  **deltas** — the :class:`~repro.sharding.ledger.BoundaryBroker` runs
  its serialized boundary phase this way over the coordinator's absorbed
  state.

Admission decisions are deterministic given (event sequence, policy
configuration): the only nondeterminism in the result is wall-clock
timing.  That determinism is what makes the service layer's journaled
warm restart exact — re-submitting a journal into a fresh session
reconstructs the ledger and metrics bit-for-bit (timing aside).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.instance import LineProblem, TreeProblem

from ..core.solution import Solution
from ..obs import tracing as _tracing
from ..online.events import Arrival, Departure, Tick
from ..online.metrics import ReplayMetrics, latency_percentiles
from ..online.policies import AdmissionPolicy
from ..online.state import CapacityLedger

__all__ = ["AdmissionSession", "Decision", "ReplayResult",
           "assemble_result", "certificate_of"]


@dataclass
class ReplayResult:
    """Everything one replay (or service session) produced.

    Attributes
    ----------
    metrics:
        The flat :class:`~repro.online.metrics.ReplayMetrics` record.
    admission_log:
        ``(demand_id, instance_id)`` in admission order (never shrinks;
        includes demands that later departed or were evicted).
    eviction_log:
        ``(demand_id, instance_id)`` in eviction order — the demands a
        preemptive policy displaced (empty for non-preemptive policies).
    final_solution:
        The instances still admitted when the stream ended, as a
        verified-feasible :class:`~repro.core.solution.Solution`
        (``None`` for delta-mode sessions, whose ledger outlives them).
    policy_stats:
        The policy's own counters (gates, flushes, ...).
    trace_meta:
        The trace's provenance dict, echoed for reports.
    """

    metrics: ReplayMetrics
    admission_log: list = field(default_factory=list)
    eviction_log: list = field(default_factory=list)
    final_solution: Solution | None = None
    policy_stats: dict = field(default_factory=dict)
    trace_meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Decision:
    """What one submitted event did to the session.

    ``admitted`` / ``evicted`` are the ``(demand_id, instance_id)``
    pairs this event appended to the ledger's logs — for an arrival
    that's the arrival itself (possibly plus its preemption victims),
    for a tick it's whatever a batch flush let in.  ``accepted`` is the
    arrival-centric summary: the arriving demand itself got admitted
    during its own event.
    """

    kind: str
    time: float
    demand_id: int | None
    accepted: bool
    admitted: tuple = ()
    evicted: tuple = ()
    latency_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-safe form (the service layer's response payload)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "demand": self.demand_id,
            "accepted": self.accepted,
            "admitted": [list(p) for p in self.admitted],
            "evicted": [list(p) for p in self.evicted],
            "latency_us": self.latency_s * 1e6,
        }


def certificate_of(policy: AdmissionPolicy) -> dict | None:
    """A price-carrying policy's upper-bound certificate, else ``None``.

    Called after the replay clock stops, so the certificate never
    pollutes the latency percentiles.
    """
    certify = getattr(policy, "price_certificate", None)
    return certify() if callable(certify) else None


def assemble_result(ledger: CapacityLedger, policy: AdmissionPolicy, *,
                    events: int, arrivals: int, departures: int, ticks: int,
                    latencies: list, elapsed: float, trace_meta: dict,
                    certificate: dict | None,
                    baseline: dict | None = None,
                    final_solution: Solution | None = None) -> ReplayResult:
    """Build the metrics/logs/stats record every session shares.

    ``baseline`` holds counter and log offsets captured before the loop
    ran (``accepted`` / ``evicted`` log lengths, ``realized`` /
    ``forfeited`` / ``penalty`` counters) — a delta-mode session (the
    sharded :class:`~repro.sharding.ledger.BoundaryBroker`) reports
    *deltas* over absorbed state; ``None`` means a fresh ledger.
    """
    base = baseline or {}
    base_accepted = base.get("accepted", 0)
    base_evicted = base.get("evicted", 0)
    realized = ledger.realized_profit - base.get("realized", 0.0)
    penalty = ledger.penalty_paid - base.get("penalty", 0.0)
    accepted = len(ledger.admission_log) - base_accepted
    pct = latency_percentiles(latencies)
    metrics = ReplayMetrics(
        policy=policy.name,
        events=events,
        arrivals=arrivals,
        departures=departures,
        ticks=ticks,
        accepted=accepted,
        rejected=arrivals - accepted,
        acceptance_ratio=accepted / arrivals if arrivals else 0.0,
        realized_profit=realized,
        evictions=len(ledger.eviction_log) - base_evicted,
        forfeited_profit=ledger.forfeited_profit - base.get("forfeited", 0.0),
        penalty_paid=penalty,
        penalty_adjusted_profit=realized - penalty,
        elapsed_s=elapsed,
        events_per_sec=events / elapsed if elapsed > 0 else 0.0,
        latency_p50_us=pct["p50_us"],
        latency_p90_us=pct["p90_us"],
        latency_p99_us=pct["p99_us"],
        latency_mean_us=pct["mean_us"],
        dual_upper_bound=(certificate["upper_bound"]
                          if certificate else None),
        dual_upper_bound_peak=(certificate.get("peak_upper_bound")
                               if certificate else None),
    )
    policy_stats = dict(policy.stats)
    if certificate:
        policy_stats["dual_certificate"] = certificate
    return ReplayResult(
        metrics=metrics,
        admission_log=list(ledger.admission_log[base_accepted:]),
        eviction_log=list(ledger.eviction_log[base_evicted:]),
        final_solution=final_solution,
        policy_stats=policy_stats,
        trace_meta=dict(trace_meta),
    )


class AdmissionSession:
    """Ledger + policy + metrics accumulation behind submit/snapshot/close.

    Parameters
    ----------
    problem:
        The frozen demand population (a
        :class:`~repro.core.instance.TreeProblem` or
        :class:`~repro.core.instance.LineProblem`).
    policy:
        An :class:`~repro.online.policies.AdmissionPolicy`; it is bound
        here (to the fresh ledger, or to ``ledger`` when given), so one
        policy object can be reused across sessions.
    ledger:
        Attach to an existing ledger instead of building one.  Use
        :meth:`over_ledger` for the delta-reporting variant.
    trace_meta:
        Provenance echoed into the final :class:`ReplayResult`.
    delta_baseline:
        Capture the ledger's current counters and report the close-time
        result as deltas over them (and omit ``final_solution``, since
        the attached ledger outlives the session).
    fastpath:
        Allow :meth:`feed_many` to engage the columnar batch-decision
        fast path (:mod:`repro.online.fastpath`) when the policy
        advertises a batch kernel.  Decisions are byte-identical either
        way; ``False`` pins the scalar loop (the benchmark baseline).

    Notes
    -----
    The throughput clock starts when the session is constructed (after
    the ledger build and policy bind, matching the historical replay
    loop) and stops at :meth:`close`; for a long-lived service session
    ``elapsed_s`` therefore includes idle time between requests — the
    latency percentiles are the per-decision numbers either way.
    """

    def __init__(self, problem: TreeProblem | LineProblem,
                 policy: AdmissionPolicy, *,
                 ledger: CapacityLedger | None = None,
                 trace_meta: dict | None = None,
                 delta_baseline: bool = False,
                 fastpath: bool = True) -> None:
        self.problem = problem
        self.ledger = ledger if ledger is not None else CapacityLedger(problem)
        self.policy = policy
        policy.bind(self.ledger)
        self.trace_meta = dict(trace_meta or {})
        self._baseline: dict | None = None
        if delta_baseline:
            self._baseline = {
                "accepted": len(self.ledger.admission_log),
                "evicted": len(self.ledger.eviction_log),
                "realized": self.ledger.realized_profit,
                "forfeited": self.ledger.forfeited_profit,
                "penalty": self.ledger.penalty_paid,
            }
        self.events = 0
        self.arrivals = 0
        self.departures = 0
        self.ticks = 0
        self.latencies: list[float] = []
        #: The policy's price certificate, populated at :meth:`close`.
        self.certificate: dict | None = None
        self.closed = False
        #: Columnar fast-path telemetry (never checkpointed: the scalar
        #: and batched paths are byte-identical, so a warm restart may
        #: legitimately disagree on *how* events were executed).
        self.fastpath_stats = {"enabled": False, "runs": 0,
                               "batched_events": 0, "scalar_fallbacks": 0,
                               "max_run_len": 0}
        self._fast = None
        kern = policy.batch_kernel() if hasattr(policy, "batch_kernel") \
            else None
        if (fastpath and kern is not None
                and type(policy).on_departure is AdmissionPolicy.on_departure
                and type(policy).on_tick is AdmissionPolicy.on_tick):
            # Engage only when departures and ticks are provably no-ops
            # for the policy (the base hooks), so batching them inside
            # a run cannot change any decision.  The geometry build is
            # part of session construction, before the throughput clock
            # starts — same convention as the ledger build.
            from ..online.fastpath import FastFeeder
            self._fast = FastFeeder(self, kern)
            self.fastpath_stats["enabled"] = True
        self._t0 = time.perf_counter()

    @classmethod
    def over_ledger(cls, ledger: CapacityLedger, policy: AdmissionPolicy,
                    trace_meta: dict | None = None) -> "AdmissionSession":
        """A delta-mode session over an existing (possibly pre-admitted)
        ledger — the boundary broker's construction."""
        return cls(ledger.problem, policy, ledger=ledger,
                   trace_meta=trace_meta, delta_baseline=True)

    # ------------------------------------------------------------------
    # The event loop, one event at a time
    # ------------------------------------------------------------------

    def submit(self, event: Arrival | Departure | Tick) -> Decision:
        """Apply one event; returns the :class:`Decision` it produced.

        Raises
        ------
        RuntimeError
            If the session is already closed.
        TypeError
            For anything that is not an Arrival / Departure / Tick.
        """
        ledger = self.ledger
        adm0 = len(ledger.admission_log)
        ev0 = len(ledger.eviction_log)
        kind, demand_id, accepted, latency = self._dispatch(event)
        return Decision(
            kind=kind,
            time=event.time,
            demand_id=demand_id,
            accepted=accepted,
            admitted=tuple(ledger.admission_log[adm0:]),
            evicted=tuple(ledger.eviction_log[ev0:]),
            latency_s=latency,
        )

    def feed(self, event: Arrival | Departure | Tick) -> None:
        """:meth:`submit` without assembling a :class:`Decision` — the
        hot path for drivers that replay a whole trace and only read
        the close-time result (the Decision's log slices and dataclass
        construction are measurable at benchmark event rates)."""
        self._dispatch(event)

    def feed_many(self, events: Iterable[Arrival | Departure | Tick], *,
                  progress_hook: Callable[[int], None] | None = None,
                  progress_every: int = 1) -> None:
        """:meth:`feed` a whole batch in one call.

        The batched hot path the replay drivers and the service's
        ``feed`` op use: one method call (and, upstream, one request
        decode and one journal commit) amortized over the batch.

        ``progress_hook(done)`` — when given — is called after every
        ``progress_every`` events (and once more at the end if the batch
        size is not a multiple) with the number of events applied so
        far.  The streamed sharded driver uses it as its watermark
        feed: a shard worker reports how far its stream has advanced so
        the boundary broker can decide cut-crossing demands whose
        arrival time every shard has passed.  The hook runs outside the
        per-event latency window but inside the batch, so it must be
        cheap; ``None`` keeps the historical zero-overhead loop.
        """
        dispatch = self._dispatch
        if progress_hook is None:
            if self._fast is not None:
                # The columnar fast path: conflict-free runs decided by
                # the policy's batch kernel, byte-identical to the
                # scalar loop below.  Per-event progress hooks are
                # incompatible with batching, so the hooked path stays
                # scalar.
                self._fast.feed(events)
                return
            for event in events:
                dispatch(event)
            return
        if progress_every < 1:
            raise ValueError(
                f"progress_every must be >= 1, got {progress_every}")
        done = 0
        for event in events:
            dispatch(event)
            done += 1
            if done % progress_every == 0:
                progress_hook(done)
        if done % progress_every:
            progress_hook(done)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def export_counters(self) -> dict:
        """The event counters a checkpoint must carry (JSON-safe).

        Latency samples are deliberately *not* exported: they are
        wall-clock noise excluded from
        :func:`~repro.online.metrics.deterministic_metrics`, the
        equality the warm-restart guarantee is stated over.
        """
        return {
            "events": self.events,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "ticks": self.ticks,
        }

    def restore_counters(self, state: dict) -> None:
        """Reset the event counters to an exported snapshot."""
        self.events = int(state["events"])
        self.arrivals = int(state["arrivals"])
        self.departures = int(state["departures"])
        self.ticks = int(state["ticks"])

    def _dispatch(
        self, event: Arrival | Departure | Tick
    ) -> tuple[str, int | None, bool, float]:
        """Apply one event; returns ``(kind, demand_id, accepted,
        latency_s)`` and updates every accumulator."""
        if self.closed:
            raise RuntimeError("session is closed")
        ledger = self.ledger
        if isinstance(event, Arrival):
            self.arrivals += 1
            t0 = time.perf_counter()
            iid = self.policy.on_arrival(event.demand_id)
            latency = time.perf_counter() - t0
            kind, demand_id, accepted = "arrival", event.demand_id, iid is not None
        elif isinstance(event, Departure):
            self.departures += 1
            # The ledger's own bookkeeping is not policy work: release
            # before starting the clock, so the latency sample measures
            # only the policy's decision path.
            if ledger.is_admitted(event.demand_id):
                ledger.release(event.demand_id)
            t0 = time.perf_counter()
            self.policy.on_departure(event.demand_id)
            latency = time.perf_counter() - t0
            kind, demand_id, accepted = "departure", event.demand_id, False
        elif isinstance(event, Tick):
            self.ticks += 1
            t0 = time.perf_counter()
            self.policy.on_tick(event.time)
            latency = time.perf_counter() - t0
            kind, demand_id, accepted = "tick", None, False
        else:
            raise TypeError(f"unknown event type {type(event).__name__}")
        self.events += 1
        self.latencies.append(latency)
        if _tracing.RECORDER.enabled:
            # Reuse the latency clock the kernel already ran — no extra
            # timing calls on the decision path.
            _tracing.record_complete(
                "session.decide", t0, latency,
                {"kind": kind, "demand": demand_id, "accepted": accepted},
            )
        return kind, demand_id, accepted, latency

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The live counters as a JSON-safe dict (readable mid-stream)."""
        base = self._baseline or {}
        ledger = self.ledger
        realized = ledger.realized_profit - base.get("realized", 0.0)
        penalty = ledger.penalty_paid - base.get("penalty", 0.0)
        return {
            "events": self.events,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "ticks": self.ticks,
            "accepted": len(ledger.admission_log) - base.get("accepted", 0),
            "evictions": len(ledger.eviction_log) - base.get("evicted", 0),
            "num_admitted": ledger.num_admitted,
            "realized_profit": realized,
            "forfeited_profit": (ledger.forfeited_profit
                                 - base.get("forfeited", 0.0)),
            "penalty_paid": penalty,
            "penalty_adjusted_profit": realized - penalty,
            "utilization": ledger.utilization(),
            "closed": self.closed,
        }

    def solution(self) -> Solution:
        """The currently-admitted set as a (live) solution."""
        return self.ledger.snapshot()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self, *, verify: bool = True) -> ReplayResult:
        """Flush, verify, and assemble the final :class:`ReplayResult`.

        The policy's ``finish()`` is timed as one extra latency sample;
        ``verify`` re-checks the admitted set against the problem
        definition from first principles (cheap; disable only in
        throughput benchmarks).  Idempotent calls are an error — the
        result is a one-shot hand-off.
        """
        if self.closed:
            raise RuntimeError("session is already closed")
        t0 = time.perf_counter()
        self.policy.finish()
        self.latencies.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - self._t0
        self.closed = True
        if verify:
            self.ledger.verify()
        self.certificate = certificate_of(self.policy)
        return assemble_result(
            self.ledger, self.policy,
            events=self.events, arrivals=self.arrivals,
            departures=self.departures, ticks=self.ticks,
            latencies=self.latencies, elapsed=elapsed,
            trace_meta=self.trace_meta,
            certificate=self.certificate,
            baseline=self._baseline,
            final_solution=(None if self._baseline is not None
                            else self.ledger.snapshot()),
        )
