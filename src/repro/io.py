"""JSON serialization for problems, solutions, event traces and journals.

Lets workloads be pinned to disk (regression corpora, cross-machine
benchmark runs), solutions be archived next to the dual certificates
that justify them, and online event traces be replayed bit-identically
on other machines.  The formats are stable, versioned, human-readable
JSON documents; round-trips are exact (vertex ids, profits, heights,
access sets, selected instances, event times).

All ``save_*`` writers are **atomic**: the document is written to a
temporary file in the destination directory and moved into place with
:func:`os.replace`, so a process killed mid-write never leaves a
truncated JSON artifact behind.

The **admission journal** is the service layer's durability log: an
append-only JSON-lines file whose first line is a self-contained header
(policy, parameters, the full trace document) and whose every further
line is one submitted event in the trace event schema.  Because replay
decisions are deterministic, re-submitting the journaled events into a
fresh :class:`~repro.session.AdmissionSession` reconstructs the exact
ledger and metrics state — the warm-restart path.  :func:`read_journal`
tolerates a truncated final line (the one a ``kill -9`` can leave
behind) and reports the byte offset of the last intact record so the
writer can resume appending cleanly.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from .core.demand import Demand, LineDemandInstance, TreeDemandInstance, WindowDemand
from .core.instance import LineProblem, TreeProblem
from .core.solution import Solution
from .network.line import LineNetwork
from .network.tree import TreeNetwork

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "event_to_dict",
    "event_from_dict",
    "save_problem",
    "load_problem",
    "save_solution",
    "load_solution",
    "save_trace",
    "load_trace",
    "JournalWriter",
    "read_journal",
]

FORMAT_VERSION = 1

#: Version of the event-trace document (independent of the problem format).
TRACE_FORMAT_VERSION = 1

#: Version of the admission-journal envelope.
JOURNAL_FORMAT_VERSION = 1


def problem_to_dict(problem) -> dict:
    """Serialize a :class:`TreeProblem` or :class:`LineProblem`."""
    if isinstance(problem, TreeProblem):
        return {
            "format": FORMAT_VERSION,
            "kind": "tree",
            "n": problem.n,
            "networks": [sorted(net.edges) for net in problem.networks],
            "demands": [
                {"u": a.u, "v": a.v, "profit": a.profit, "height": a.height}
                for a in problem.demands
            ],
            "access": [sorted(acc) for acc in problem.access],
        }
    if isinstance(problem, LineProblem):
        return {
            "format": FORMAT_VERSION,
            "kind": "line",
            "n_slots": problem.n_slots,
            "num_resources": problem.num_networks,
            "demands": [
                {
                    "release": a.release,
                    "deadline": a.deadline,
                    "proc_time": a.proc_time,
                    "profit": a.profit,
                    "height": a.height,
                }
                for a in problem.demands
            ],
            "access": [sorted(acc) for acc in problem.access],
        }
    raise TypeError(f"cannot serialize {type(problem).__name__}")


def problem_from_dict(doc: dict):
    """Inverse of :func:`problem_to_dict`."""
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version!r}")
    kind = doc.get("kind")
    access = [frozenset(acc) for acc in doc["access"]]
    if kind == "tree":
        networks = [
            TreeNetwork(doc["n"], [tuple(e) for e in edges], network_id=q)
            for q, edges in enumerate(doc["networks"])
        ]
        demands = [
            Demand(i, d["u"], d["v"], d["profit"], d.get("height", 1.0))
            for i, d in enumerate(doc["demands"])
        ]
        return TreeProblem(n=doc["n"], networks=networks, demands=demands,
                           access=access)
    if kind == "line":
        resources = [
            LineNetwork(doc["n_slots"], network_id=q)
            for q in range(doc["num_resources"])
        ]
        demands = [
            WindowDemand(i, d["release"], d["deadline"], d["proc_time"],
                         d["profit"], d.get("height", 1.0))
            for i, d in enumerate(doc["demands"])
        ]
        return LineProblem(n_slots=doc["n_slots"], resources=resources,
                           demands=demands, access=access)
    raise ValueError(f"unknown problem kind {kind!r}")


def _instance_to_dict(inst) -> dict:
    if isinstance(inst, TreeDemandInstance):
        return {
            "kind": "tree",
            "demand_id": inst.demand_id,
            "network_id": inst.network_id,
            "u": inst.u,
            "v": inst.v,
        }
    if isinstance(inst, LineDemandInstance):
        return {
            "kind": "line",
            "demand_id": inst.demand_id,
            "network_id": inst.network_id,
            "start": inst.start,
            "end": inst.end,
        }
    raise TypeError(f"cannot serialize instance {type(inst).__name__}")


def solution_to_dict(solution: Solution) -> dict:
    """Serialize a solution: selections plus (JSON-safe) stats."""
    stats: dict[str, Any] = {}
    for k, v in solution.stats.items():
        try:
            json.dumps(v)
        except TypeError:
            v = repr(v)
        stats[k] = v
    return {
        "format": FORMAT_VERSION,
        "profit": solution.profit,
        "selected": [_instance_to_dict(d) for d in solution.selected],
        "stats": stats,
    }


def solution_from_dict(doc: dict, problem) -> Solution:
    """Rehydrate a solution against its problem.

    Selections are re-bound to the problem's own instance objects (so
    routes come from the problem, never from the file) and re-verified
    implicitly by any later ``verify_*_solution`` call.
    """
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {doc.get('format')!r}")
    lookup: dict[tuple, Any] = {}
    for inst in problem.instances():
        if isinstance(inst, TreeDemandInstance):
            lookup[(inst.demand_id, inst.network_id)] = inst
        else:
            lookup[(inst.demand_id, inst.network_id, inst.start, inst.end)] = inst
    selected = []
    for rec in doc["selected"]:
        if rec["kind"] == "tree":
            key = (rec["demand_id"], rec["network_id"])
        else:
            key = (rec["demand_id"], rec["network_id"], rec["start"], rec["end"])
        if key not in lookup:
            raise ValueError(f"selection {rec} does not exist in the problem")
        selected.append(lookup[key])
    return Solution(selected=selected, stats=dict(doc.get("stats", {})))


def event_to_dict(ev) -> dict:
    """Serialize one Arrival/Departure/Tick (the trace event schema)."""
    from .online.events import Arrival, Departure, Tick

    if isinstance(ev, Arrival):
        return {"type": "arrival", "time": ev.time, "demand": ev.demand_id}
    if isinstance(ev, Departure):
        return {"type": "departure", "time": ev.time, "demand": ev.demand_id}
    if isinstance(ev, Tick):
        return {"type": "tick", "time": ev.time}
    raise TypeError(f"cannot serialize event {type(ev).__name__}")


def event_from_dict(rec: dict):
    """Inverse of :func:`event_to_dict`."""
    from .online.events import Arrival, Departure, Tick

    if not isinstance(rec, dict):
        raise ValueError(f"event record must be an object, got {rec!r}")
    etype = rec.get("type")
    if etype == "arrival":
        return Arrival(float(rec["time"]), int(rec["demand"]))
    if etype == "departure":
        return Departure(float(rec["time"]), int(rec["demand"]))
    if etype == "tick":
        return Tick(float(rec["time"]))
    raise ValueError(f"unknown event type {etype!r}")


def trace_to_dict(trace) -> dict:
    """Serialize an :class:`~repro.online.events.EventTrace`.

    The embedded problem uses the problem format (version
    :data:`FORMAT_VERSION`); the trace envelope carries its own
    :data:`TRACE_FORMAT_VERSION` so the two can evolve independently.
    """
    return {
        "format": TRACE_FORMAT_VERSION,
        "kind": "trace",
        "problem": problem_to_dict(trace.problem),
        "events": [event_to_dict(ev) for ev in trace.events],
        "meta": dict(trace.meta),
    }


def trace_from_dict(doc: dict):
    """Inverse of :func:`trace_to_dict` (re-validates the event stream)."""
    from .online.events import EventTrace

    version = doc.get("format")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    if doc.get("kind") != "trace":
        raise ValueError(f"not a trace document: kind={doc.get('kind')!r}")
    problem = problem_from_dict(doc["problem"])
    events = [event_from_dict(rec) for rec in doc["events"]]
    return EventTrace(problem=problem, events=events,
                      meta=dict(doc.get("meta", {})))


def _atomic_dump(doc: dict, path: str) -> None:
    """Write ``doc`` as JSON via temp-file + :func:`os.replace`.

    The temp file lives in the destination directory (same filesystem,
    so the replace is atomic) and is removed on any failure — a killed
    or crashing writer leaves either the old file or the new one, never
    a truncated hybrid.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_problem(problem, path: str) -> None:
    """Write a problem as JSON (atomically)."""
    _atomic_dump(problem_to_dict(problem), path)


def load_problem(path: str):
    """Read a problem written by :func:`save_problem`."""
    with open(path) as fh:
        return problem_from_dict(json.load(fh))


def save_solution(solution: Solution, path: str) -> None:
    """Write a solution as JSON (atomically)."""
    _atomic_dump(solution_to_dict(solution), path)


def load_solution(path: str, problem) -> Solution:
    """Read a solution written by :func:`save_solution`."""
    with open(path) as fh:
        return solution_from_dict(json.load(fh), problem)


def save_trace(trace, path: str) -> None:
    """Write an event trace as JSON (atomically)."""
    _atomic_dump(trace_to_dict(trace), path)


def load_trace(path: str):
    """Read a trace written by :func:`save_trace`."""
    with open(path) as fh:
        return trace_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# The admission journal (append-only JSON lines)
# ----------------------------------------------------------------------


class JournalWriter:
    """Append-only JSON-lines admission journal.

    The first line of a fresh journal is the header: a self-contained
    record of the policy name, its constructor parameters, the backend
    shape (shards / strategy) and the **full trace document**, so a
    journal alone rebuilds the session that wrote it.  Every further
    line is one event in the trace event schema, flushed per record —
    an OS-level write, so the journal survives a ``kill -9`` of the
    writer (set ``sync=True`` to also ``fsync`` per record and survive
    power loss, at a large throughput cost).

    Parameters
    ----------
    path:
        Journal file path; created (with the header) when missing or
        empty, else opened for appending at ``start_at`` bytes.
    header:
        The header dict (required for a fresh journal).  The envelope
        fields (``kind`` / ``format``) are stamped here.
    sync:
        ``fsync`` after every record.
    start_at:
        Truncate the file to this many bytes before appending — the
        resume path drops a torn final line this way (see
        :func:`read_journal`).
    """

    def __init__(self, path: str, header: dict | None = None, *,
                 sync: bool = False, start_at: int | None = None):
        self.path = path
        self.sync = bool(sync)
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if start_at is not None:
            if not exists:
                raise ValueError(f"cannot resume missing journal {path!r}")
            with open(path, "r+") as fh:
                fh.truncate(start_at)
            self._fh = open(path, "a")
        elif exists:
            raise ValueError(
                f"journal {path!r} already exists; pass start_at= (resume) "
                "or choose a fresh path"
            )
        else:
            if header is None:
                raise ValueError("a fresh journal needs a header")
            self._fh = open(path, "w")
            doc = dict(header)
            doc["kind"] = "admission-journal"
            doc["format"] = JOURNAL_FORMAT_VERSION
            self._write_line(doc)

    def _write_line(self, doc: dict) -> None:
        self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def append(self, event) -> None:
        """Journal one event (write-ahead: call *before* applying it)."""
        self._write_line(event_to_dict(event))

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str) -> tuple[dict, list, int]:
    """Read an admission journal; returns ``(header, events, good_bytes)``.

    ``events`` are rehydrated Arrival/Departure/Tick records in journal
    order.  A torn *final* line — what a killed writer leaves behind —
    is tolerated and dropped; corruption anywhere else is an error.
    ``good_bytes`` is the file offset right after the last intact line,
    the ``start_at`` a resuming :class:`JournalWriter` should use.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    lines = raw.split(b"\n")
    # The writer terminates every record with '\n', so a newline-less
    # tail is a torn write — dropped even when its JSON happens to
    # parse (a kill can land exactly between the bytes and the
    # newline), because resuming must append at a clean line start and
    # good_bytes/events must describe the same prefix.
    body = lines[:-1]  # lines[-1] is b"" iff the file ends with '\n'
    offset = 0
    records: list[dict] = []
    for i, line in enumerate(body):
        if not line.strip():
            offset += len(line) + 1
            continue
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (ValueError, UnicodeDecodeError):
            # Every body line was newline-terminated, i.e. fully
            # written — a bad one is corruption, not a torn tail.
            raise ValueError(
                f"corrupt journal {path!r}: bad record on line {i + 1}"
            )
        offset += len(line) + 1
    if not records:
        raise ValueError(f"journal {path!r} has no header")
    header = records[0]
    if header.get("kind") != "admission-journal":
        raise ValueError(f"{path!r} is not an admission journal")
    if header.get("format") != JOURNAL_FORMAT_VERSION:
        raise ValueError(
            f"unsupported journal format version {header.get('format')!r}"
        )
    events = [event_from_dict(rec) for rec in records[1:]]
    return header, events, offset
