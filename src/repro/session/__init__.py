"""The reusable admission-session kernel.

:class:`AdmissionSession` extracts the replay event loop — ledger +
policy + metrics accumulation — behind ``submit(event) -> Decision``,
``snapshot()`` and ``close() -> ReplayResult``, so the in-process replay
drivers (:func:`~repro.online.driver.replay`, the sharded per-shard
workers, the boundary broker) and the long-lived
:class:`~repro.service.AdmissionService` all run the *same* loop with
byte-identical decisions.
"""

from .kernel import (
    AdmissionSession,
    Decision,
    ReplayResult,
    assemble_result,
    certificate_of,
)

__all__ = [
    "AdmissionSession",
    "Decision",
    "ReplayResult",
    "assemble_result",
    "certificate_of",
]
