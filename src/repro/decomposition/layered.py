"""Layered decompositions (Section 4.4) and the line variant (Section 7).

A *layered decomposition* of the demand instances of one network is a pair
``(σ, π)``: an ordered partition ``σ = G_1, …, G_ℓ`` of the instances and a
map ``π`` assigning each instance a set of *critical edges* on its route,
such that for any ``i ≤ j`` and overlapping ``d1 ∈ G_i``, ``d2 ∈ G_j``,
``path(d2)`` contains a critical edge of ``d1``.  The framework processes
groups in order, so this is exactly the *interference property* the
approximation guarantee needs (Lemma 3.1).

Two constructions:

* :func:`tree_layers` (Lemma 4.2): from a tree decomposition with pivot
  size ``θ`` and depth ``ℓ`` — groups by capture-node depth (deepest
  first); ``π(d)`` = wings of the capture node plus wings of the bending
  points towards each pivot, giving ``∆ ≤ 2(θ + 1)``.  With the ideal
  decomposition: ``∆ = 6``, ``ℓ = O(log n)`` (Lemma 4.3).
* :func:`line_layers` (Section 7, implicit in Panconesi–Sozio): groups by
  length (shortest first, doubling buckets); ``π(d)`` = the start, middle
  and end timeslots, giving ``∆ = 3``, ``ℓ = ⌈log(Lmax/Lmin)⌉ + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.demand import LineDemandInstance, TreeDemandInstance
from .base import TreeDecomposition

__all__ = ["LayeredDecomposition", "tree_layers", "line_layers"]


@dataclass
class LayeredDecomposition:
    """``(σ, π)`` for the demand instances of one network.

    Attributes
    ----------
    groups:
        ``groups[k]`` lists the instance ids of ``G_{k+1}`` (processed
        first).
    critical:
        ``critical[iid]`` = the critical edge set ``π(d)``, as *local*
        edge keys (tree edge keys or timeslot ints).
    name:
        Label of the construction.
    """

    groups: list[list[int]]
    critical: dict[int, tuple]
    name: str = "layered"
    meta: dict = field(default_factory=dict)

    @property
    def length(self) -> int:
        """``ℓ``: number of groups."""
        return len(self.groups)

    @property
    def delta(self) -> int:
        """``∆``: largest critical-set cardinality."""
        return max((len(c) for c in self.critical.values()), default=0)

    def group_of(self) -> dict[int, int]:
        """Map instance id → 0-based group index."""
        out: dict[int, int] = {}
        for k, grp in enumerate(self.groups):
            for iid in grp:
                out[iid] = k
        return out


def tree_layers(
    td: TreeDecomposition, instances: Sequence[TreeDemandInstance]
) -> LayeredDecomposition:
    """Lemma 4.2: layer the instances of ``td.tree``'s network.

    ``instances`` must all belong to the network ``td`` decomposes.
    Groups: instances captured at the deepest ``H``-nodes first (group
    ``G_i`` holds captures at depth ``ℓ - i + 1``).  Critical edges of
    ``d``: wings of ``µ(d)`` on ``path(d)``, plus for every pivot
    ``u ∈ χ(µ(d))`` the wings of the bending point of ``path(d)`` w.r.t.
    ``u`` — at most ``2(θ + 1)`` edges.
    """
    tree = td.tree
    ell = td.max_depth
    groups: list[list[int]] = [[] for _ in range(ell)]
    critical: dict[int, tuple] = {}
    for inst in instances:
        if inst.network_id != tree.network_id:
            raise ValueError(
                f"instance {inst.instance_id} is on network {inst.network_id}, "
                f"decomposition is for network {tree.network_id}"
            )
        ends = (inst.u, inst.v)
        z = td.capture(inst.u, inst.v)
        # Group G_i holds captures at depth ell - i + 1; 0-based index
        # ell - depth.  Deepest captures land in groups[0].
        groups[ell - td.depth[z]].append(inst.instance_id)
        pi: list = []
        seen: set = set()
        for ek in tree.wings(z, ends):
            if ek not in seen:
                seen.add(ek)
                pi.append(ek)
        for u in td.chi(z):
            y = tree.bending_point(u, ends)
            for ek in tree.wings(y, ends):
                if ek not in seen:
                    seen.add(ek)
                    pi.append(ek)
        critical[inst.instance_id] = tuple(pi)
    return LayeredDecomposition(
        groups=groups,
        critical=critical,
        name=f"tree-layers[{td.name}]",
        meta={"theta": td.pivot_size, "depth": ell},
    )


def line_layers(
    instances: Sequence[LineDemandInstance],
    l_min: int | None = None,
    l_max: int | None = None,
) -> LayeredDecomposition:
    """Section 7's length-bucket layering for line instances: ``∆ = 3``.

    Bucket ``G_i`` holds the instances with
    ``2^{i-1}·Lmin ≤ len(d) < 2^i·Lmin`` (shortest first); critical
    timeslots are ``{s(d), mid(d), e(d)}``.  ``l_min``/``l_max`` default
    to the observed extremes; passing them fixes the bucket grid when
    several populations must share one layering.
    """
    if not instances:
        return LayeredDecomposition(groups=[], critical={}, name="line-layers")
    lengths = [inst.length for inst in instances]
    lmin = l_min if l_min is not None else min(lengths)
    lmax = l_max if l_max is not None else max(lengths)
    if lmin < 1:
        raise ValueError("Lmin must be at least 1")
    # Number of doubling buckets covering [lmin, lmax].
    ell = 1
    top = lmin * 2
    while top <= lmax:
        top *= 2
        ell += 1
    groups: list[list[int]] = [[] for _ in range(ell)]
    critical: dict[int, tuple] = {}
    for inst in instances:
        ln = inst.length
        if ln < lmin or ln > lmax:
            raise ValueError(
                f"instance {inst.instance_id} length {ln} outside declared "
                f"[{lmin}, {lmax}]"
            )
        k = 0
        bound = lmin * 2
        while ln >= bound:
            bound *= 2
            k += 1
        groups[k].append(inst.instance_id)
        mid = (inst.start + inst.end) // 2
        pi = tuple(dict.fromkeys((inst.start, mid, inst.end)))
        critical[inst.instance_id] = pi
    return LayeredDecomposition(
        groups=groups,
        critical=critical,
        name="line-layers",
        meta={"l_min": lmin, "l_max": lmax},
    )
