"""The fixed distributed schedule (Section 5, "Distributed Implementation").

When every processor knows ``n``, ``ε``, ``pmax``, ``pmin`` (and ``hmin``
in the narrow case), the epoch/stage/iteration counts can be computed
exactly in advance, so all processors stay synchronized without any
global coordination: epochs = the decomposition-depth bound, stages =
``⌈log_ξ ε⌉``, iterations per stage = the kill-chain bound
``1 + ⌈log₂(pmax/pmin)⌉``.

:func:`scheduled_rounds` evaluates that worst-case budget — the concrete
form of the theorems' ``O(Time(MIS)·log n·log(1/ε)·log(pmax/pmin))`` —
and the tests/benchmarks confirm the engine's *adaptive* run (which exits
a stage as soon as the group is satisfied) never exceeds it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .framework import narrow_xi, stage_count, unit_xi

__all__ = ["RoundSchedule", "tree_unit_schedule", "line_unit_schedule",
           "narrow_schedule", "scheduled_rounds"]


@dataclass(frozen=True)
class RoundSchedule:
    """The fixed (worst-case) schedule all processors agree on."""

    epochs: int
    stages_per_epoch: int
    steps_per_stage: int
    time_mis: int

    @property
    def total_steps(self) -> int:
        """Worst-case primal-dual steps of the first phase."""
        return self.epochs * self.stages_per_epoch * self.steps_per_stage

    @property
    def phase1_rounds(self) -> int:
        """Each step costs Time(MIS) + 1 (dual broadcast) rounds."""
        return self.total_steps * (self.time_mis + 1)

    @property
    def phase2_rounds(self) -> int:
        """One pop round per scheduled step tuple."""
        return self.total_steps

    @property
    def total_rounds(self) -> int:
        """The full two-phase worst-case round budget."""
        return self.phase1_rounds + self.phase2_rounds


def _steps_per_stage(pmax: float, pmin: float) -> int:
    if pmin <= 0 or pmax < pmin:
        raise ValueError("need 0 < pmin <= pmax")
    return 1 + math.ceil(math.log2(pmax / pmin)) if pmax > pmin else 1


def tree_unit_schedule(
    n: int, epsilon: float, pmax: float, pmin: float,
    *, delta: int = 6, time_mis: int | None = None, num_instances: int = 0,
) -> RoundSchedule:
    """Theorem 5.3's schedule: epochs = 2⌈log n⌉+1 (ideal-TD depth)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    epochs = 2 * math.ceil(math.log2(max(n, 2))) + 1
    b = stage_count(unit_xi(delta), epsilon)
    tm = time_mis if time_mis is not None else _default_time_mis(num_instances)
    return RoundSchedule(epochs, b, _steps_per_stage(pmax, pmin), tm)


def line_unit_schedule(
    l_min: int, l_max: int, epsilon: float, pmax: float, pmin: float,
    *, delta: int = 3, time_mis: int | None = None, num_instances: int = 0,
) -> RoundSchedule:
    """Theorem 7.1's schedule: epochs = ⌈log(Lmax/Lmin)⌉+1 length buckets."""
    if l_min < 1 or l_max < l_min:
        raise ValueError("need 1 <= Lmin <= Lmax")
    epochs = 1
    top = l_min * 2
    while top <= l_max:
        top *= 2
        epochs += 1
    b = stage_count(unit_xi(delta), epsilon)
    tm = time_mis if time_mis is not None else _default_time_mis(num_instances)
    return RoundSchedule(epochs, b, _steps_per_stage(pmax, pmin), tm)


def narrow_schedule(
    epochs: int, epsilon: float, hmin: float, pmax: float, pmin: float,
    *, delta: int, time_mis: int | None = None, num_instances: int = 0,
) -> RoundSchedule:
    """Lemma 6.2's schedule: ξ = c/(c+hmin) multiplies the stage count
    by O(1/hmin)."""
    b = stage_count(narrow_xi(delta, hmin), epsilon)
    tm = time_mis if time_mis is not None else _default_time_mis(num_instances)
    return RoundSchedule(epochs, b, _steps_per_stage(pmax, pmin), tm)


def _default_time_mis(num_instances: int) -> int:
    """Luby's w.h.p. bound: ``c·log N`` rounds with a civilised constant."""
    if num_instances <= 1:
        return 1
    return 4 * math.ceil(math.log2(num_instances))


def scheduled_rounds(problem, epsilon: float, *, delta: int | None = None) -> int:
    """Worst-case round budget for the unit-height algorithm on ``problem``.

    Dispatches on the problem type; uses its actual ``pmax/pmin`` (and
    length range for lines).
    """
    pmin, pmax = problem.profit_range()
    num = len(problem.instances())
    if hasattr(problem, "networks"):
        return tree_unit_schedule(
            problem.n, epsilon, pmax, pmin,
            delta=delta if delta is not None else 6, num_instances=num,
        ).total_rounds
    l_min, l_max = problem.length_range()
    return line_unit_schedule(
        l_min, l_max, epsilon, pmax, pmin,
        delta=delta if delta is not None else 3, num_instances=num,
    ).total_rounds
