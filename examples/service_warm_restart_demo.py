"""The admission service: request/response, kill, journaled warm restart.

A tour of the service layer on one bursty line trace:

1. stand up an :class:`~repro.service.AdmissionService` with a
   write-ahead journal and push the first half of the trace through its
   request/response API (``admit`` / ``release`` / ``tick`` requests in,
   decision documents out), peeking at ``query`` and ``stats`` along the
   way;
2. "kill" the service — drop it without any shutdown, exactly what a
   SIGKILL leaves behind: a journal whose last line may even be torn;
3. warm-restart from the journal (``AdmissionService.resume``), finish
   the trace, and diff the final metrics against an uninterrupted
   in-process replay of the same stream — they match field for field,
   timing aside, because replay decisions are deterministic and the
   journal captures exactly the applied event sequence.

The same flow works across real processes via the CLI::

    python -m repro serve  --trace trace.json --policy dual-gated --journal j.log
    python -m repro resume --journal j.log

Run from the repo root::

    PYTHONPATH=src python examples/service_warm_restart_demo.py
"""

import os
import tempfile

from repro.online import (
    bursty_trace,
    deterministic_metrics,
    make_policy,
    replay,
)
from repro.report import render_replay
from repro.service import AdmissionService


def main() -> None:
    trace = bursty_trace("line", events=400, seed=21, departure_prob=0.4)
    half = len(trace.events) // 2
    print(f"bursty line trace: {len(trace.events)} events, "
          f"{trace.num_arrivals} arrivals, {trace.num_departures} "
          "departures\n")

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "admissions.journal")
        service = AdmissionService(trace, "dual-gated",
                                   journal_path=journal)
        sample = None
        for ev in trace.events[:half]:
            decision = service.submit_event(ev)
            if sample is None and decision.accepted:
                sample = decision
        print(f"served {half} events through the request API; first "
              f"admission: demand {sample.demand_id} via instance "
              f"{sample.admitted[0][1]}")
        print("query :", service.handle({"op": "query",
                                         "demand": sample.demand_id}))
        stats = service.stats()
        print(f"stats : {stats['accepted']} accepted, profit "
              f"{stats['realized_profit']:.2f}, utilization "
              f"{stats['utilization']:.2f}, journaled="
              f"{stats['journaled']}\n")

        # The kill: no close(), no flush call — the journal already has
        # every applied event on disk (write-ahead, flushed per record).
        del service

        resumed = AdmissionService.resume(journal)
        print(f"warm restart recovered {resumed.position} events from "
              f"{os.path.basename(journal)}")
        result = resumed.run_remaining()

        uninterrupted = replay(trace, make_policy("dual-gated"))
        match = deterministic_metrics(result.metrics) == \
            deterministic_metrics(uninterrupted.metrics)
        print(f"resumed run equals uninterrupted replay: {match}\n")
        print(render_replay([uninterrupted.metrics, result.metrics]))


if __name__ == "__main__":
    main()
