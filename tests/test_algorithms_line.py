"""End-to-end tests of the Section 7 line-network solvers and the
Panconesi–Sozio baseline, against exact optima."""

from __future__ import annotations

import pytest

from repro import (
    lp_upper_bound,
    random_line_problem,
    solve_line_arbitrary,
    solve_line_narrow,
    solve_line_unit,
    solve_optimal,
    solve_ps_line_arbitrary,
    solve_ps_line_unit,
    verify_line_solution,
)

from tests.helpers import assert_bound


class TestLineUnit:
    @pytest.mark.parametrize("seed", range(6))
    def test_theorem71_bound(self, seed):
        """(4+ε): profit ≥ OPT/(4+ε) with windows."""
        p = random_line_problem(n_slots=30, m=12, r=2, seed=seed, max_len=8)
        eps = 0.1
        sol = solve_line_unit(p, epsilon=eps, seed=seed)
        verify_line_solution(p, sol, unit_height=True)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 4 / (1 - eps), f"seed {seed}")

    def test_bound_vs_lp(self):
        p = random_line_problem(n_slots=60, m=30, r=2, seed=9, max_len=12)
        sol = solve_line_unit(p, epsilon=0.1, seed=1)
        assert_bound(sol.profit, lp_upper_bound(p), 4 / 0.9)

    def test_windows_respected(self):
        p = random_line_problem(n_slots=40, m=20, r=1, seed=10,
                                window_slack=2.0, max_len=6)
        sol = solve_line_unit(p, epsilon=0.2, seed=2)
        verify_line_solution(p, sol, unit_height=True)
        for inst in sol.selected:
            a = p.demands[inst.demand_id]
            assert a.release <= inst.start and inst.end <= a.deadline

    def test_pinned_windows(self):
        # window_slack=0 pins every job to a single placement.
        p = random_line_problem(n_slots=30, m=15, r=1, seed=11, window_slack=0.0)
        assert all(len(a.placements()) == 1 for a in p.demands)
        sol = solve_line_unit(p, epsilon=0.2, seed=3)
        verify_line_solution(p, sol, unit_height=True)

    def test_delta_is_three(self):
        p = random_line_problem(n_slots=40, m=15, r=1, seed=12, max_len=10)
        sol = solve_line_unit(p, epsilon=0.2, seed=4)
        assert sol.stats["delta"] == 3

    def test_empty_filter(self):
        p = random_line_problem(n_slots=20, m=6, r=1, seed=13)
        sol = solve_line_unit(p, instance_filter=lambda d: False)
        assert sol.size == 0 and sol.stats.get("empty")


class TestLineArbitrary:
    @pytest.mark.parametrize("regime", ["mixed", "narrow", "wide", "bimodal"])
    def test_theorem72_bound(self, regime):
        p = random_line_problem(n_slots=30, m=12, r=2, seed=20,
                                height_regime=regime, hmin=0.1, max_len=8)
        eps = 0.1
        sol = solve_line_arbitrary(p, epsilon=eps, seed=1)
        verify_line_solution(p, sol, unit_height=False)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 23 / (1 - eps), regime)

    def test_narrow_only_bound(self):
        p = random_line_problem(n_slots=30, m=12, r=1, seed=21,
                                height_regime="narrow", hmin=0.15, max_len=8)
        eps = 0.15
        sol = solve_line_narrow(p, epsilon=eps, seed=2)
        verify_line_solution(p, sol, unit_height=False)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 19 / (1 - eps))

    def test_capacity_packing_not_disjoint(self):
        """Narrow instances share timeslots up to capacity 1 — the
        second phase must pack by height, not edge-disjointly."""
        p = random_line_problem(n_slots=10, m=20, r=1, seed=22,
                                height_regime="narrow", hmin=0.1,
                                min_len=4, max_len=8)
        sol = solve_line_narrow(p, epsilon=0.2, seed=3)
        verify_line_solution(p, sol, unit_height=False)
        load: dict[int, float] = {}
        shared = False
        for inst in sol.selected:
            for t in range(inst.start, inst.end + 1):
                load[t] = load.get(t, 0.0) + inst.height
                if load[t] > inst.height:
                    shared = True
        assert shared or sol.size <= 1


class TestPanconesiSozio:
    @pytest.mark.parametrize("seed", range(4))
    def test_ps_unit_bound(self, seed):
        """(20+ε): the PS baseline honours its own (weaker) guarantee."""
        p = random_line_problem(n_slots=30, m=12, r=2, seed=seed, max_len=8)
        eps = 0.1
        sol = solve_ps_line_unit(p, epsilon=eps, seed=seed)
        verify_line_solution(p, sol, unit_height=True)
        opt = solve_optimal(p)
        assert_bound(sol.profit, opt.profit, 4 * (5 + eps), f"seed {seed}")

    def test_ps_lambda_is_one_fifth(self):
        p = random_line_problem(n_slots=30, m=15, r=1, seed=30, max_len=8)
        eps = 0.1
        sol = solve_ps_line_unit(p, epsilon=eps, seed=1)
        assert sol.stats["realized_lambda"] >= 1 / (5 + eps) - 1e-9

    def test_ps_single_stage(self):
        p = random_line_problem(n_slots=30, m=15, r=1, seed=31, max_len=8)
        sol = solve_ps_line_unit(p, epsilon=0.1, seed=2)
        # One stage per (non-empty) epoch.
        assert sol.stats["stages"] <= sol.stats["epochs"]

    def test_ps_arbitrary_feasible(self):
        p = random_line_problem(n_slots=30, m=12, r=2, seed=32,
                                height_regime="mixed", hmin=0.1, max_len=8)
        sol = solve_ps_line_arbitrary(p, epsilon=0.1, seed=3)
        verify_line_solution(p, sol, unit_height=False)

    def test_ours_uses_fewer_dual_raises_is_not_required_but_profit_bounded(self):
        """Head-to-head sanity: both are within their bounds on shared
        workloads (the systematic comparison is benchmark E10)."""
        p = random_line_problem(n_slots=40, m=20, r=2, seed=33, max_len=10)
        ours = solve_line_unit(p, epsilon=0.1, seed=4)
        ps = solve_ps_line_unit(p, epsilon=0.1, seed=4)
        opt = solve_optimal(p)
        assert_bound(ours.profit, opt.profit, 4 / 0.9, "ours")
        assert_bound(ps.profit, opt.profit, 20.4, "ps")
