"""Problem model: demands, instances, conflicts, duals, solutions."""

from .conflict import ConflictIndex
from .demand import (
    Demand,
    LineDemandInstance,
    TreeDemandInstance,
    WindowDemand,
    is_narrow,
    is_wide,
)
from .duals import DualState
from .instance import GlobalEdge, LineProblem, TreeProblem
from .solution import (
    FeasibilityError,
    Solution,
    verify_line_solution,
    verify_tree_solution,
)

__all__ = [
    "ConflictIndex",
    "Demand",
    "DualState",
    "FeasibilityError",
    "GlobalEdge",
    "LineDemandInstance",
    "LineProblem",
    "Solution",
    "TreeDemandInstance",
    "TreeProblem",
    "WindowDemand",
    "is_narrow",
    "is_wide",
    "verify_line_solution",
    "verify_tree_solution",
]
